//! Hermetic stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer with zero-copy subslicing. Implements exactly the surface
//! this workspace uses.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, Range, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1), and
/// [`Bytes::slice`] / [`Bytes::slice_ref`] produce views that share the
/// same allocation — the wire path hands out payload sub-slices of one
/// received buffer without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    inner: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (copied; the shim does not track 'static).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes)
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Zero-copy subslice: the returned `Bytes` shares this buffer's
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let Range { start, end } = resolve(range, self.len());
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len(), "slice end {end} > len {}", self.len());
        Self {
            inner: Arc::clone(&self.inner),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Zero-copy subslice located by pointer identity: `sub` must be a
    /// slice *into this buffer* (e.g. one returned by a borrowed decoder
    /// over `&self[..]`); the returned `Bytes` covers exactly that span and
    /// shares the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `sub` does not lie within this buffer.
    #[must_use]
    pub fn slice_ref(&self, sub: &[u8]) -> Self {
        if sub.is_empty() {
            return Self::new();
        }
        let base = self.as_slice().as_ptr() as usize;
        let ptr = sub.as_ptr() as usize;
        assert!(
            ptr >= base && ptr + sub.len() <= base + self.len(),
            "slice_ref: sub-slice is not within the buffer"
        );
        let offset = ptr - base;
        self.slice(offset..offset + sub.len())
    }

    fn as_slice(&self) -> &[u8] {
        &self.inner[self.start..self.end]
    }
}

/// Resolves any range-bound form against `len` (without clamping).
fn resolve(range: impl RangeBounds<usize>, len: usize) -> Range<usize> {
    use std::ops::Bound;
    let start = match range.start_bound() {
        Bound::Included(&s) => s,
        Bound::Excluded(&s) => s + 1,
        Bound::Unbounded => 0,
    };
    let end = match range.end_bound() {
        Bound::Included(&e) => e + 1,
        Bound::Excluded(&e) => e,
        Bound::Unbounded => len,
    };
    start..end
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            inner: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self {
            inner: Arc::from(v),
            start: 0,
            end: v.len(),
        }
    }
}

// Views over different allocations with equal contents must compare equal,
// so all comparisons go through the visible byte span, never the fields.

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert!(!c.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        // Same backing allocation: the sub-slice's pointer lies inside b's.
        let base = b.as_ref().as_ptr() as usize;
        let sp = s.as_ref().as_ptr() as usize;
        assert_eq!(sp, base + 2);
        // Nested slicing composes.
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s.slice(..).len(), 3);
        assert!(s.slice(1..1).is_empty());
    }

    #[test]
    #[should_panic(expected = "slice end")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn slice_ref_locates_borrowed_subslice() {
        let b = Bytes::from(vec![9u8, 8, 7, 6, 5]);
        let view: &[u8] = &b[1..4];
        let s = b.slice_ref(view);
        assert_eq!(&s[..], &[8, 7, 6]);
        let base = b.as_ref().as_ptr() as usize;
        assert_eq!(s.as_ref().as_ptr() as usize, base + 1);
        // Empty sub-slices are fine regardless of provenance.
        assert!(b.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not within the buffer")]
    fn slice_ref_foreign_slice_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let other = [1u8, 2, 3];
        let _ = b.slice_ref(&other);
    }

    #[test]
    fn equality_ignores_view_offsets() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]).slice(1..3);
        let b = Bytes::from(vec![2u8, 3]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
