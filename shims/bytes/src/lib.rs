//! Hermetic stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer. Implements exactly the surface this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (copied; the shim does not track 'static).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            inner: Arc::from(bytes),
        }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            inner: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self {
            inner: Arc::from(v),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.inner.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert!(!c.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
