//! Hermetic stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` attribute, `prop_assert!` /
//! `prop_assert_eq!`, [`arbitrary::any`], integer range strategies,
//! [`collection::vec`], and [`test_runner::Config`] (re-exported from the
//! prelude as `ProptestConfig`).
//!
//! Unlike real proptest there is no shrinking: a failing case prints its
//! inputs (which are reproducible — seeds derive from the test name) and
//! re-raises the panic.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Integers drawable uniformly from a half-open range.
    pub trait UniformInt: Copy {
        /// Draws uniformly from `[start, end)`.
        fn draw(rng: &mut TestRng, start: Self, end: Self) -> Self;
        /// Largest representable value (used for `start..`).
        const MAX_VALUE: Self;
    }

    macro_rules! impl_uniform_unsigned {
        ($($ty:ty),*) => {$(
            impl UniformInt for $ty {
                fn draw(rng: &mut TestRng, start: Self, end: Self) -> Self {
                    assert!(start < end, "empty range strategy");
                    let span = (end - start) as u128;
                    let word = rng.next_u128();
                    start + (word % span) as $ty
                }
                const MAX_VALUE: Self = <$ty>::MAX;
            }
        )*};
    }

    impl_uniform_unsigned!(u8, u16, u32, u64, usize, u128);

    macro_rules! impl_uniform_signed {
        ($($ty:ty => $uty:ty),*) => {$(
            impl UniformInt for $ty {
                fn draw(rng: &mut TestRng, start: Self, end: Self) -> Self {
                    assert!(start < end, "empty range strategy");
                    let span = (end as $uty).wrapping_sub(start as $uty) as u128;
                    let word = rng.next_u128();
                    start.wrapping_add((word % span) as $ty)
                }
                const MAX_VALUE: Self = <$ty>::MAX;
            }
        )*};
    }

    impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128);

    /// Floats draw uniformly by scaling a 53-bit mantissa into `[0, 1)`.
    impl UniformInt for f64 {
        fn draw(rng: &mut TestRng, start: Self, end: Self) -> Self {
            assert!(start < end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            start + unit * (end - start)
        }
        const MAX_VALUE: Self = f64::MAX;
    }

    impl UniformInt for f32 {
        fn draw(rng: &mut TestRng, start: Self, end: Self) -> Self {
            f64::draw(rng, f64::from(start), f64::from(end)) as f32
        }
        const MAX_VALUE: Self = f32::MAX;
    }

    impl<T: UniformInt> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::draw(rng, self.start, self.end)
        }
    }

    /// `start..` draws from `[start, MAX]`.
    impl<T: UniformInt> Strategy for RangeFrom<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::draw(rng, self.start, T::MAX_VALUE)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`: full-domain strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u128() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u128() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + (rng.next_u128() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic RNG.

    /// Mirror of `proptest::test_runner::Config` (prelude name:
    /// `ProptestConfig`). Only `cases` is honored; `max_shrink_iters`
    /// exists so `..Config::default()` updates stay meaningful.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Deterministic xoshiro256++ RNG, seeded from the test's name so
    /// every run of a test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for the named test (FNV-1a of the name, SplitMix64-expanded).
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Next 128-bit word.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Mirrors `proptest::proptest!` for the syntax
/// used in this workspace: an optional `#![proptest_config(expr)]` header
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __desc = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(panic) = __outcome {
                    ::std::eprintln!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __desc
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// `prop_assert!`: asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// `prop_assert_eq!`: equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// `prop_assert_ne!`: inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(a in 5usize..9, b in -3i64..3, c in 1u16..) {
            prop_assert!((5..9).contains(&a));
            prop_assert!((-3..3).contains(&b));
            prop_assert!(c >= 1);
        }

        #[test]
        fn vec_lengths_respect_size(
            fixed in crate::collection::vec(any::<u8>(), 4),
            ranged in crate::collection::vec(any::<bool>(), 0..7),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(ranged.len() < 7);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = 0u64..1000;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn with_cases_sets_cases() {
        assert_eq!(crate::test_runner::Config::with_cases(7).cases, 7);
    }
}
