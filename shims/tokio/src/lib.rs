//! Hermetic stand-in for the `tokio` crate.
//!
//! Executes each spawned task on its own OS thread and completes I/O
//! futures by performing the blocking operation eagerly, so `.await`
//! always resolves immediately. For this workspace's usage — one socket
//! pump task per peer connection — that is semantically equivalent to a
//! real reactor, at the cost of `O(peers)` threads per party.

/// Task executors, mirroring `tokio::runtime`.
pub mod runtime {
    use std::future::Future;
    use std::io;
    use std::marker::PhantomData;
    use std::task::{Context, Poll, Waker};

    /// Polls `fut` to completion on the current thread.
    ///
    /// Leaf futures in this shim block inside `poll`, so the loop almost
    /// always finishes on the first iteration.
    fn block_on_current<F: Future>(fut: F) -> F::Output {
        let mut fut = std::pin::pin!(fut);
        let mut cx = Context::from_waker(Waker::noop());
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::yield_now(),
            }
        }
    }

    /// Handle to a spawned task. The workspace never joins tasks, so this
    /// carries no result channel.
    #[derive(Debug)]
    pub struct JoinHandle<T>(PhantomData<fn() -> T>);

    /// Builder mirroring `tokio::runtime::Builder`.
    #[derive(Debug, Default)]
    pub struct Builder {}

    impl Builder {
        /// Multi-thread flavor (the shim is thread-per-task regardless).
        #[must_use]
        pub fn new_multi_thread() -> Self {
            Self::default()
        }

        /// Accepted for compatibility; the shim sizes itself per task.
        pub fn worker_threads(&mut self, _n: usize) -> &mut Self {
            self
        }

        /// Accepted for compatibility; all drivers are always "enabled".
        pub fn enable_all(&mut self) -> &mut Self {
            self
        }

        /// Builds the runtime.
        ///
        /// # Errors
        ///
        /// Never fails in the shim; the signature matches real tokio.
        pub fn build(&mut self) -> io::Result<Runtime> {
            Ok(Runtime {})
        }
    }

    /// Runtime mirroring `tokio::runtime::Runtime`. Tasks are detached OS
    /// threads; they exit when their sockets or channels close, so there
    /// is no shutdown protocol on drop.
    #[derive(Debug)]
    pub struct Runtime {}

    impl Runtime {
        /// Runs `fut` to completion on the calling thread.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            block_on_current(fut)
        }

        /// Runs `fut` on a fresh OS thread.
        pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            std::thread::Builder::new()
                .name("tokio-shim-task".into())
                .spawn(move || {
                    let _ = block_on_current(fut);
                })
                .expect("spawn shim task thread");
            JoinHandle(PhantomData)
        }
    }
}

/// TCP primitives, mirroring `tokio::net`.
pub mod net {
    use std::io::{Read, Write};
    use std::net::{Shutdown, SocketAddr};

    /// Connected TCP stream (blocking under the hood).
    #[derive(Debug)]
    pub struct TcpStream {
        pub(crate) inner: std::net::TcpStream,
    }

    /// Read half from [`TcpStream::into_split`].
    #[derive(Debug)]
    pub struct OwnedReadHalf {
        pub(crate) inner: std::net::TcpStream,
    }

    /// Write half from [`TcpStream::into_split`].
    #[derive(Debug)]
    pub struct OwnedWriteHalf {
        pub(crate) inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub async fn connect(addr: SocketAddr) -> std::io::Result<Self> {
            std::net::TcpStream::connect(addr).map(|inner| Self { inner })
        }

        /// Sets `TCP_NODELAY`.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn set_nodelay(&self, nodelay: bool) -> std::io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        /// Splits into independently owned read/write halves.
        ///
        /// # Panics
        ///
        /// Panics if the OS refuses to duplicate the socket handle.
        #[must_use]
        pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
            let read = self.inner.try_clone().expect("duplicate socket handle");
            (
                OwnedReadHalf { inner: read },
                OwnedWriteHalf { inner: self.inner },
            )
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    impl Read for OwnedReadHalf {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for OwnedWriteHalf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    impl OwnedWriteHalf {
        pub(crate) fn shutdown_write(&mut self) -> std::io::Result<()> {
            self.inner.shutdown(Shutdown::Write)
        }
    }

    impl TcpStream {
        pub(crate) fn shutdown_write(&mut self) -> std::io::Result<()> {
            self.inner.shutdown(Shutdown::Write)
        }
    }

    /// Listening TCP socket.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to `addr`.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub async fn bind(addr: SocketAddr) -> std::io::Result<Self> {
            std::net::TcpListener::bind(addr).map(|inner| Self { inner })
        }

        /// Local address the listener is bound to.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Accepts one inbound connection (blocking).
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub async fn accept(&self) -> std::io::Result<(TcpStream, SocketAddr)> {
            self.inner
                .accept()
                .map(|(stream, addr)| (TcpStream { inner: stream }, addr))
        }
    }
}

/// Async read/write extension traits, mirroring `tokio::io`.
///
/// The methods perform the blocking operation eagerly and return an
/// already-completed future, which is equivalent under the shim's
/// thread-per-task execution model.
pub mod io {
    use std::future::{ready, Ready};
    use std::io::{Read, Write};

    /// Mirror of `tokio::io::AsyncReadExt` for the shim's socket types.
    pub trait AsyncReadExt {
        /// Reads exactly `buf.len()` bytes.
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>>;
    }

    /// Mirror of `tokio::io::AsyncWriteExt` for the shim's socket types.
    pub trait AsyncWriteExt {
        /// Writes the entire buffer.
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>>;
        /// Shuts down the write side of the socket.
        fn shutdown(&mut self) -> Ready<std::io::Result<()>>;
    }

    impl AsyncReadExt for crate::net::TcpStream {
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>> {
            ready(Read::read_exact(self, buf).map(|()| buf.len()))
        }
    }

    impl AsyncReadExt for crate::net::OwnedReadHalf {
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>> {
            ready(Read::read_exact(self, buf).map(|()| buf.len()))
        }
    }

    impl AsyncWriteExt for crate::net::TcpStream {
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>> {
            ready(Write::write_all(self, buf))
        }
        fn shutdown(&mut self) -> Ready<std::io::Result<()>> {
            ready(self.shutdown_write())
        }
    }

    impl AsyncWriteExt for crate::net::OwnedWriteHalf {
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>> {
            ready(Write::write_all(self, buf))
        }
        fn shutdown(&mut self) -> Ready<std::io::Result<()>> {
            ready(self.shutdown_write())
        }
    }
}

/// Channel primitives, mirroring `tokio::sync`.
pub mod sync {
    /// Unbounded MPSC channel with an async receiver.
    pub mod mpsc {
        use std::sync::mpsc as std_mpsc;

        /// Error types, mirroring `tokio::sync::mpsc::error`.
        pub mod error {
            /// The receiving half was dropped.
            #[derive(Debug, PartialEq, Eq)]
            pub struct SendError<T>(pub T);
        }

        /// Sending half; cloneable, non-blocking.
        #[derive(Debug)]
        pub struct UnboundedSender<T>(std_mpsc::Sender<T>);

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                UnboundedSender(self.0.clone())
            }
        }

        impl<T> UnboundedSender<T> {
            /// Sends `value` without blocking.
            ///
            /// # Errors
            ///
            /// Returns the value if the receiver is gone.
            pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
                self.0
                    .send(value)
                    .map_err(|std_mpsc::SendError(v)| error::SendError(v))
            }
        }

        /// Receiving half; `recv().await` blocks the task's thread.
        #[derive(Debug)]
        pub struct UnboundedReceiver<T>(std_mpsc::Receiver<T>);

        impl<T> UnboundedReceiver<T> {
            /// Awaits the next value; `None` once all senders are dropped.
            pub async fn recv(&mut self) -> Option<T> {
                self.0.recv().ok()
            }
        }

        /// Creates an unbounded channel.
        #[must_use]
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let (tx, rx) = std_mpsc::channel();
            (UnboundedSender(tx), UnboundedReceiver(rx))
        }
    }
}

/// Timers, mirroring `tokio::time`.
pub mod time {
    use std::time::Duration;

    /// Sleeps for `duration` (blocks the task's thread).
    pub async fn sleep(duration: Duration) {
        std::thread::sleep(duration);
    }
}

#[cfg(test)]
mod tests {
    use crate::io::{AsyncReadExt, AsyncWriteExt};

    #[test]
    fn echo_round_trip_over_shim_tcp() {
        let rt = crate::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()
            .unwrap();
        let out = rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
            let local = listener.local_addr().unwrap();
            // Accept on a spawned task while we dial from this one.
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
            rt.spawn(async move {
                let (stream, _) = listener.accept().await.unwrap();
                let (mut read, _write) = stream.into_split();
                let mut buf = [0u8; 4];
                read.read_exact(&mut buf).await.unwrap();
                tx.send(buf.to_vec()).unwrap();
            });
            let mut client = crate::net::TcpStream::connect(local).await.unwrap();
            client.set_nodelay(true).unwrap();
            client.write_all(b"ping").await.unwrap();
            client.shutdown().await.unwrap();
            rx.recv().await.unwrap()
        });
        assert_eq!(out, b"ping".to_vec());
    }

    #[test]
    fn mpsc_close_semantics() {
        let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
        tx.send(5).unwrap();
        drop(tx);
        let rt = crate::runtime::Builder::new_multi_thread().build().unwrap();
        assert_eq!(rt.block_on(rx.recv()), Some(5));
        assert_eq!(rt.block_on(rx.recv()), None);
    }
}
