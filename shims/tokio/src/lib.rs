//! Hermetic stand-in for the `tokio` crate.
//!
//! Executes each spawned task on its own OS thread and completes I/O
//! futures by performing the blocking operation eagerly, so `.await`
//! always resolves immediately. For this workspace's usage — one socket
//! pump task per peer connection — that is semantically equivalent to a
//! real reactor, at the cost of `O(peers)` threads per party.

/// Task executors, mirroring `tokio::runtime`.
pub mod runtime {
    use std::future::Future;
    use std::io;
    use std::marker::PhantomData;
    use std::task::{Context, Poll, Waker};

    /// Polls `fut` to completion on the current thread.
    ///
    /// Leaf futures in this shim block inside `poll`, so the loop almost
    /// always finishes on the first iteration.
    fn block_on_current<F: Future>(fut: F) -> F::Output {
        let mut fut = std::pin::pin!(fut);
        let mut cx = Context::from_waker(Waker::noop());
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::yield_now(),
            }
        }
    }

    /// Handle to a spawned task. The workspace never joins tasks, so this
    /// carries no result channel.
    #[derive(Debug)]
    pub struct JoinHandle<T>(PhantomData<fn() -> T>);

    /// Builder mirroring `tokio::runtime::Builder`.
    #[derive(Debug, Default)]
    pub struct Builder {}

    impl Builder {
        /// Multi-thread flavor (the shim is thread-per-task regardless).
        #[must_use]
        pub fn new_multi_thread() -> Self {
            Self::default()
        }

        /// Accepted for compatibility; the shim sizes itself per task.
        pub fn worker_threads(&mut self, _n: usize) -> &mut Self {
            self
        }

        /// Accepted for compatibility; all drivers are always "enabled".
        pub fn enable_all(&mut self) -> &mut Self {
            self
        }

        /// Builds the runtime.
        ///
        /// # Errors
        ///
        /// Never fails in the shim; the signature matches real tokio.
        pub fn build(&mut self) -> io::Result<Runtime> {
            Ok(Runtime {})
        }
    }

    /// Runtime mirroring `tokio::runtime::Runtime`. Tasks are detached OS
    /// threads; they exit when their sockets or channels close, so there
    /// is no shutdown protocol on drop.
    #[derive(Debug)]
    pub struct Runtime {}

    impl Runtime {
        /// Runs `fut` to completion on the calling thread.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            block_on_current(fut)
        }

        /// Runs `fut` on a fresh OS thread.
        pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            std::thread::Builder::new()
                .name("tokio-shim-task".into())
                .spawn(move || {
                    let _ = block_on_current(fut);
                })
                .expect("spawn shim task thread");
            JoinHandle(PhantomData)
        }
    }
}

/// TCP primitives, mirroring `tokio::net`.
pub mod net {
    use std::io::{Read, Write};
    use std::net::{Shutdown, SocketAddr};

    /// Connected TCP stream (blocking under the hood).
    #[derive(Debug)]
    pub struct TcpStream {
        pub(crate) inner: std::net::TcpStream,
    }

    /// Read half from [`TcpStream::into_split`].
    #[derive(Debug)]
    pub struct OwnedReadHalf {
        pub(crate) inner: std::net::TcpStream,
    }

    /// Write half from [`TcpStream::into_split`].
    #[derive(Debug)]
    pub struct OwnedWriteHalf {
        pub(crate) inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub async fn connect(addr: SocketAddr) -> std::io::Result<Self> {
            std::net::TcpStream::connect(addr).map(|inner| Self { inner })
        }

        /// Connects to `addr`, failing with `TimedOut` if the connection
        /// is not established within `timeout` (shim extension backed by
        /// `std::net::TcpStream::connect_timeout`; real tokio reaches the
        /// same behavior with `tokio::time::timeout`, which the blocking
        /// shim cannot express).
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub async fn connect_timeout(
            addr: SocketAddr,
            timeout: std::time::Duration,
        ) -> std::io::Result<Self> {
            std::net::TcpStream::connect_timeout(&addr, timeout).map(|inner| Self { inner })
        }

        /// Sets `TCP_NODELAY`.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn set_nodelay(&self, nodelay: bool) -> std::io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        /// Bounds every subsequent blocking read on this stream (shim
        /// extension backed by `std::net::TcpStream::set_read_timeout`);
        /// `None` restores unbounded reads. A timed-out read surfaces as
        /// a `WouldBlock`/`TimedOut` I/O error.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> std::io::Result<()> {
            self.inner.set_read_timeout(dur)
        }

        /// Splits into independently owned read/write halves.
        ///
        /// # Panics
        ///
        /// Panics if the OS refuses to duplicate the socket handle.
        #[must_use]
        pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
            let read = self.inner.try_clone().expect("duplicate socket handle");
            (
                OwnedReadHalf { inner: read },
                OwnedWriteHalf { inner: self.inner },
            )
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    impl Read for OwnedReadHalf {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for OwnedWriteHalf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    impl OwnedWriteHalf {
        pub(crate) fn shutdown_write(&mut self) -> std::io::Result<()> {
            self.inner.shutdown(Shutdown::Write)
        }
    }

    impl TcpStream {
        pub(crate) fn shutdown_write(&mut self) -> std::io::Result<()> {
            self.inner.shutdown(Shutdown::Write)
        }
    }

    /// Listening TCP socket.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to `addr`.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub async fn bind(addr: SocketAddr) -> std::io::Result<Self> {
            std::net::TcpListener::bind(addr).map(|inner| Self { inner })
        }

        /// Local address the listener is bound to.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Accepts one inbound connection (blocking).
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub async fn accept(&self) -> std::io::Result<(TcpStream, SocketAddr)> {
            self.inner
                .accept()
                .map(|(stream, addr)| (TcpStream { inner: stream }, addr))
        }

        /// Accepts one inbound connection, failing with `TimedOut` when
        /// nothing arrives within `timeout` (shim extension: the listener
        /// is polled in nonblocking mode; real tokio reaches the same
        /// behavior with `tokio::time::timeout(listener.accept())`).
        ///
        /// # Errors
        ///
        /// `TimedOut` on expiry; otherwise the underlying socket error.
        pub async fn accept_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> std::io::Result<(TcpStream, SocketAddr)> {
            self.inner.set_nonblocking(true)?;
            let deadline = std::time::Instant::now() + timeout;
            let result = loop {
                match self.inner.accept() {
                    Ok(pair) => break Ok(pair),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if std::time::Instant::now() >= deadline {
                            break Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "accept timed out",
                            ));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(e) => break Err(e),
                }
            };
            // Restore blocking mode on the listener AND the accepted
            // socket (accepted sockets can inherit O_NONBLOCK on some
            // platforms).
            self.inner.set_nonblocking(false)?;
            let (stream, addr) = result?;
            stream.set_nonblocking(false)?;
            Ok((TcpStream { inner: stream }, addr))
        }
    }
}

/// Async read/write extension traits, mirroring `tokio::io`.
///
/// The methods perform the blocking operation eagerly and return an
/// already-completed future, which is equivalent under the shim's
/// thread-per-task execution model.
pub mod io {
    use std::future::{ready, Ready};
    use std::io::{Read, Write};

    /// Mirror of `tokio::io::AsyncReadExt` for the shim's socket types.
    pub trait AsyncReadExt {
        /// Reads exactly `buf.len()` bytes.
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>>;
    }

    /// Mirror of `tokio::io::AsyncWriteExt` for the shim's socket types.
    pub trait AsyncWriteExt {
        /// Writes the entire buffer.
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>>;
        /// Shuts down the write side of the socket.
        fn shutdown(&mut self) -> Ready<std::io::Result<()>>;
    }

    impl AsyncReadExt for crate::net::TcpStream {
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>> {
            ready(Read::read_exact(self, buf).map(|()| buf.len()))
        }
    }

    impl AsyncReadExt for crate::net::OwnedReadHalf {
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>> {
            ready(Read::read_exact(self, buf).map(|()| buf.len()))
        }
    }

    impl AsyncWriteExt for crate::net::TcpStream {
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>> {
            ready(Write::write_all(self, buf))
        }
        fn shutdown(&mut self) -> Ready<std::io::Result<()>> {
            ready(self.shutdown_write())
        }
    }

    impl AsyncWriteExt for crate::net::OwnedWriteHalf {
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>> {
            ready(Write::write_all(self, buf))
        }
        fn shutdown(&mut self) -> Ready<std::io::Result<()>> {
            ready(self.shutdown_write())
        }
    }
}

/// Channel primitives, mirroring `tokio::sync`.
pub mod sync {
    /// Bounded and unbounded MPSC channels with async receivers.
    pub mod mpsc {
        use std::sync::mpsc as std_mpsc;

        /// Error types, mirroring `tokio::sync::mpsc::error`.
        pub mod error {
            /// The receiving half was dropped.
            #[derive(Debug, PartialEq, Eq)]
            pub struct SendError<T>(pub T);

            /// A non-blocking send could not complete.
            #[derive(Debug, PartialEq, Eq)]
            pub enum TrySendError<T> {
                /// The bounded queue is at capacity.
                Full(T),
                /// The receiving half was dropped.
                Closed(T),
            }
        }

        /// Sending half of a bounded channel; cloneable.
        #[derive(Debug)]
        pub struct Sender<T>(std_mpsc::SyncSender<T>);

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                Sender(self.0.clone())
            }
        }

        impl<T> Sender<T> {
            /// Sends `value`, waiting while the queue is full (the shim
            /// blocks the task's thread, matching its execution model).
            ///
            /// # Errors
            ///
            /// Returns the value if the receiver is gone.
            pub async fn send(&self, value: T) -> Result<(), error::SendError<T>> {
                self.0
                    .send(value)
                    .map_err(|std_mpsc::SendError(v)| error::SendError(v))
            }

            /// Attempts to send without blocking.
            ///
            /// # Errors
            ///
            /// [`error::TrySendError::Full`] when the queue is at
            /// capacity, [`error::TrySendError::Closed`] when the
            /// receiver is gone.
            pub fn try_send(&self, value: T) -> Result<(), error::TrySendError<T>> {
                self.0.try_send(value).map_err(|e| match e {
                    std_mpsc::TrySendError::Full(v) => error::TrySendError::Full(v),
                    std_mpsc::TrySendError::Disconnected(v) => error::TrySendError::Closed(v),
                })
            }
        }

        /// Receiving half of a bounded channel; `recv().await` blocks the
        /// task's thread.
        #[derive(Debug)]
        pub struct Receiver<T>(std_mpsc::Receiver<T>);

        impl<T> Receiver<T> {
            /// Awaits the next value; `None` once all senders are dropped.
            pub async fn recv(&mut self) -> Option<T> {
                self.0.recv().ok()
            }
        }

        /// Creates a bounded channel holding at most `capacity` queued
        /// values.
        ///
        /// # Panics
        ///
        /// Panics if `capacity == 0` (matching real tokio).
        #[must_use]
        pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
            assert!(capacity > 0, "mpsc bounded channel requires capacity > 0");
            let (tx, rx) = std_mpsc::sync_channel(capacity);
            (Sender(tx), Receiver(rx))
        }

        /// Sending half; cloneable, non-blocking.
        #[derive(Debug)]
        pub struct UnboundedSender<T>(std_mpsc::Sender<T>);

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                UnboundedSender(self.0.clone())
            }
        }

        impl<T> UnboundedSender<T> {
            /// Sends `value` without blocking.
            ///
            /// # Errors
            ///
            /// Returns the value if the receiver is gone.
            pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
                self.0
                    .send(value)
                    .map_err(|std_mpsc::SendError(v)| error::SendError(v))
            }
        }

        /// Receiving half; `recv().await` blocks the task's thread.
        #[derive(Debug)]
        pub struct UnboundedReceiver<T>(std_mpsc::Receiver<T>);

        impl<T> UnboundedReceiver<T> {
            /// Awaits the next value; `None` once all senders are dropped.
            pub async fn recv(&mut self) -> Option<T> {
                self.0.recv().ok()
            }
        }

        /// Creates an unbounded channel.
        #[must_use]
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let (tx, rx) = std_mpsc::channel();
            (UnboundedSender(tx), UnboundedReceiver(rx))
        }
    }
}

/// Timers, mirroring `tokio::time`.
pub mod time {
    use std::time::Duration;

    /// Sleeps for `duration` (blocks the task's thread).
    pub async fn sleep(duration: Duration) {
        std::thread::sleep(duration);
    }
}

#[cfg(test)]
mod tests {
    use crate::io::{AsyncReadExt, AsyncWriteExt};

    #[test]
    fn echo_round_trip_over_shim_tcp() {
        let rt = crate::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()
            .unwrap();
        let out = rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
            let local = listener.local_addr().unwrap();
            // Accept on a spawned task while we dial from this one.
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
            rt.spawn(async move {
                let (stream, _) = listener.accept().await.unwrap();
                let (mut read, _write) = stream.into_split();
                let mut buf = [0u8; 4];
                read.read_exact(&mut buf).await.unwrap();
                tx.send(buf.to_vec()).unwrap();
            });
            let mut client = crate::net::TcpStream::connect(local).await.unwrap();
            client.set_nodelay(true).unwrap();
            client.write_all(b"ping").await.unwrap();
            client.shutdown().await.unwrap();
            rx.recv().await.unwrap()
        });
        assert_eq!(out, b"ping".to_vec());
    }

    #[test]
    fn mpsc_close_semantics() {
        let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
        tx.send(5).unwrap();
        drop(tx);
        let rt = crate::runtime::Builder::new_multi_thread().build().unwrap();
        assert_eq!(rt.block_on(rx.recv()), Some(5));
        assert_eq!(rt.block_on(rx.recv()), None);
    }

    #[test]
    fn bounded_mpsc_try_send_reports_full_and_closed() {
        use crate::sync::mpsc::error::TrySendError;
        let (tx, mut rx) = crate::sync::mpsc::channel::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let rt = crate::runtime::Builder::new_multi_thread().build().unwrap();
        assert_eq!(rt.block_on(rx.recv()), Some(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Closed(4))));
    }

    #[test]
    fn accept_timeout_expires_then_still_accepts() {
        use std::time::Duration;
        let rt = crate::runtime::Builder::new_multi_thread().build().unwrap();
        rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
            let local = listener.local_addr().unwrap();
            // Nothing is dialing yet: the bounded accept must expire.
            let err = listener
                .accept_timeout(Duration::from_millis(30))
                .await
                .unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
            // A real connection is still accepted afterwards, in blocking
            // mode, and the accepted socket reads normally.
            let dialer = std::thread::spawn(move || {
                let mut s = std::net::TcpStream::connect(local).unwrap();
                std::io::Write::write_all(&mut s, b"ok").unwrap();
            });
            let (stream, _) = listener
                .accept_timeout(Duration::from_secs(5))
                .await
                .unwrap();
            let (mut read, _write) = stream.into_split();
            let mut buf = [0u8; 2];
            read.read_exact(&mut buf).await.unwrap();
            assert_eq!(&buf, b"ok");
            dialer.join().unwrap();
        });
    }

    #[test]
    fn connect_timeout_to_unroutable_address_errors() {
        use std::time::Duration;
        let rt = crate::runtime::Builder::new_multi_thread().build().unwrap();
        rt.block_on(async {
            // A just-released localhost port: refused (or timed out)
            // promptly either way — the call must not hang.
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            let started = std::time::Instant::now();
            let res =
                crate::net::TcpStream::connect_timeout(addr, Duration::from_millis(200)).await;
            assert!(res.is_err());
            assert!(started.elapsed() < Duration::from_secs(5));
        });
    }
}
