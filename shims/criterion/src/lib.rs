//! Hermetic stand-in for the `criterion` crate.
//!
//! Provides wall-clock micro-benchmarks with the API surface this
//! workspace uses: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Reports mean
//! nanoseconds per iteration (plus throughput when declared) to stdout —
//! no statistics, plotting, or comparison baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared work per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, storing iteration count and total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a rough per-iteration estimate to size the
        // measured batch to ~100 ms.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) && warmup_iters < 1_000_000 {
            hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let target = Duration::from_millis(100).as_nanos();
        let iters = u64::try_from((target / per_iter.max(1)).clamp(10, 10_000_000)).unwrap_or(10);

        let start = Instant::now();
        for _ in 0..iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs `routine` under the timing loop and reports one line.
    pub fn bench_function<R>(&mut self, id: impl Display, mut routine: R)
    where
        R: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut routine);
    }

    /// Like [`Self::bench_function`], threading `input` through.
    pub fn bench_with_input<I: ?Sized, R>(&mut self, id: BenchmarkId, input: &I, mut routine: R)
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, &mut |b: &mut Bencher| routine(b, input));
    }

    /// Ends the group (output is already flushed per-bench).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let iters = bencher.iters.max(1);
        let ns_per_iter = bencher.elapsed.as_nanos() / u128::from(iters);
        let mut line = format!(
            "{}/{label}: {ns_per_iter} ns/iter ({iters} iters)",
            self.name
        );
        let secs = bencher.elapsed.as_secs_f64() / iters as f64;
        match self.throughput {
            Some(Throughput::Bytes(bytes)) if secs > 0.0 => {
                let mibps = bytes as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!(", {mibps:.1} MiB/s"));
            }
            Some(Throughput::Elements(elems)) if secs > 0.0 => {
                let eps = elems as f64 / secs;
                line.push_str(&format!(", {eps:.0} elem/s"));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("add", 8), &21u64, |b, &x| {
            b.iter(|| black_box(x) + black_box(x));
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
