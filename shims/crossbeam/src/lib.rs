//! Hermetic stand-in for the `crossbeam` crate: the `channel` module,
//! backed by `std::sync::mpsc`. Implements exactly the surface this
//! workspace uses (`unbounded`, cloneable `Sender`, `Receiver::recv`).

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Cloneable.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when sending into a channel with no receiver.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: `Debug` regardless of whether `T` is `Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] holding `value` if the channel is closed.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] if the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
