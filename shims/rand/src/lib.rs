//! Hermetic stand-in for the `rand` crate.
//!
//! Implements the surface this workspace uses: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_bool`, and `gen_range`. The generator is xoshiro256++, the same
//! family the real `SmallRng` uses on 64-bit targets.

use std::ops::Range;

/// Types whose values can be drawn uniformly from the full domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` over its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }

    /// Uniform value in `range` (`start..end`, `start < end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s behavior.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value in `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans used in this workspace.
                let word = rng.next_u64();
                let bounded = ((u128::from(word) * u128::from(span)) >> 64) as u64;
                range.start + bounded as $ty
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

impl SampleUniform for i64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        let word = rng.next_u64();
        let bounded = ((u128::from(word) * u128::from(span)) >> 64) as u64;
        range.start.wrapping_add(bounded as i64)
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize);

impl Standard for u128 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// family the real `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }
}
