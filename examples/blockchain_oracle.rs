//! A decentralized price-oracle committee (one of the CA applications the
//! paper cites [5, 14]): `n` oracles observe an asset price with small
//! jitter, a byzantine coalition tries to drag the reported price both
//! ways, and the committee must publish one price inside the honest band.
//!
//! This example also exercises the *long-input* machinery: the committee
//! additionally agrees on a high-precision (2048-bit) cumulative index
//! value, which routes `Π_ℕ` through the block-granular path (§4).
//!
//! Run with: `cargo run --release --example blockchain_oracle`

use convex_agreement::adversary::{Attack, AttackKind, LieKind};
use convex_agreement::bits::{Int, Nat};
use convex_agreement::core::{check_agreement, check_convex_validity, CaProtocol};
use convex_agreement::net::Sim;

fn main() {
    let n = 10;
    let t = 3;
    let proto = CaProtocol::new();

    // --- Part 1: spot price (short inputs) ---------------------------------
    // Honest oracles observe 4 213 507 ± jitter (price in 1e-2 cents).
    let mut prices: Vec<Int> = vec![
        4_213_507i64,
        4_213_509,
        4_213_502,
        4_213_511,
        4_213_505,
        4_213_508,
        4_213_506,
    ]
    .into_iter()
    .map(Int::from_i64)
    .collect();
    // The coalition splits: two drag up, one drags down.
    prices.push(Int::from_i64(9_999_999));
    prices.push(Int::from_i64(1));
    prices.push(Int::from_i64(9_999_999));

    let attack = Attack::new(AttackKind::Lying(LieKind::Split));
    let sim = attack.install(Sim::new(n), n, t);
    let report = sim.run(|ctx, id| proto.run_int(ctx, &prices[id.index()]));
    let outputs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
    let honest = &prices[..n - t];

    println!("oracle committee: n = {n}, t = {t}");
    println!(
        "honest price band: [{}, {}]",
        honest.iter().min().unwrap(),
        honest.iter().max().unwrap()
    );
    println!("published price:   {}", outputs[0]);
    println!(
        "agreement: {}   convex validity: {}",
        check_agreement(&outputs),
        check_convex_validity(&outputs, honest)
    );
    println!(
        "cost: {} rounds, {} honest bits\n",
        report.metrics.rounds, report.metrics.honest_bits
    );

    // --- Part 2: high-precision cumulative index (long inputs) -------------
    // 2048-bit values: n² = 100 < 2048 engages FixedLengthCABlocks.
    let base = Nat::pow2(2047);
    let indices: Vec<Nat> = (0..n as u64)
        .map(|i| base.add(&Nat::from_u64(i * 1_000_003)))
        .collect();
    let report = Sim::new(n).run(|ctx, id| proto.run_nat(ctx, &indices[id.index()]));
    let outputs: Vec<Nat> = report.honest_outputs().into_iter().cloned().collect();

    println!("high-precision index (ℓ = 2048 bits, long-input path):");
    println!("agreed index bit-length: {}", outputs[0].bit_len());
    println!(
        "agreement: {}   convex validity: {}",
        check_agreement(&outputs),
        check_convex_validity(&outputs, &indices)
    );
    println!(
        "cost: {} rounds, {} honest bits",
        report.metrics.rounds, report.metrics.honest_bits
    );
    println!("\nper-subprotocol breakdown:");
    print!("{}", report.metrics);
}
