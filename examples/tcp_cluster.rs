//! Deployment demo: the very same `Π_ℤ` protocol code, running over real
//! localhost TCP sockets with Δ-timeout round synchronization instead of
//! the lock-step simulator.
//!
//! Run with: `cargo run --release --example tcp_cluster`

use std::time::{Duration, Instant};

use convex_agreement::ba::BaKind;
use convex_agreement::bits::Int;
use convex_agreement::core::{check_agreement, check_convex_validity, pi_z};
use convex_agreement::runtime::TcpCluster;

fn main() {
    let n = 4;
    let inputs: Vec<Int> = vec![100, 104, 96, 101]
        .into_iter()
        .map(Int::from_i64)
        .collect();

    println!("TCP cluster demo: {n} parties over 127.0.0.1, Δ = 500 ms");
    println!("inputs: {inputs:?}");

    let started = Instant::now();
    let outputs = TcpCluster::new(n)
        .with_delta(Duration::from_millis(500))
        .run(|ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan))
        .expect("cluster setup");
    let elapsed = started.elapsed();

    println!("outputs: {outputs:?}");
    println!(
        "agreement: {}   convex validity: {}",
        check_agreement(&outputs),
        check_convex_validity(&outputs, &inputs)
    );
    println!("wall-clock: {elapsed:.2?}");
}
