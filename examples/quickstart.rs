//! Quickstart: seven parties (two byzantine) agree on a signed integer.
//!
//! Run with: `cargo run --release --example quickstart`

use convex_agreement::adversary::{Attack, AttackKind, LieKind};
use convex_agreement::bits::Int;
use convex_agreement::core::{check_agreement, check_convex_validity, CaProtocol};
use convex_agreement::net::Sim;

fn main() {
    let n = 7;
    let t = 2; // < n/3

    // Honest inputs cluster around −1000; the two corrupted parties run the
    // protocol honestly but lie about their inputs, claiming 10^15.
    let mut inputs: Vec<Int> = vec![-1002, -998, -1000, -1001, -999]
        .into_iter()
        .map(Int::from_i64)
        .collect();
    inputs.push(Int::from_i64(1_000_000_000_000_000));
    inputs.push(Int::from_i64(1_000_000_000_000_000));

    let attack = Attack::new(AttackKind::Lying(LieKind::ExtremeHigh));
    let proto = CaProtocol::new();

    println!("convex-agreement quickstart: n = {n}, t = {t}");
    println!("honest inputs: {:?}", &inputs[..n - t]);
    println!("lying inputs:  {:?}", &inputs[n - t..]);
    println!();

    let sim = attack.install(Sim::new(n), n, t);
    let report = sim.run(|ctx, id| proto.run_int(ctx, &inputs[id.index()]));

    let outputs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
    let honest_inputs = &inputs[..n - t];

    println!("agreed output: {}", outputs[0]);
    println!(
        "agreement: {}   convex validity: {}",
        check_agreement(&outputs),
        check_convex_validity(&outputs, honest_inputs),
    );
    println!();
    println!(
        "cost: {} rounds, {} bits sent by honest parties",
        report.metrics.rounds, report.metrics.honest_bits
    );
    println!();
    println!("per-subprotocol breakdown:");
    print!("{}", report.metrics);
}
