//! The paper's motivating scenario (§1): a cooling-room sensor network.
//!
//! Correct sensors measure between −10.05 °C and −10.03 °C; byzantine
//! sensors report +100 °C. Plain Byzantine Agreement only guarantees a
//! common output — when honest inputs differ even slightly, the adversary
//! can steer the result. Convex Agreement pins the output inside the
//! honest measurement range.
//!
//! Run with: `cargo run --release --example sensor_network`

use convex_agreement::ba::{turpin_coan, BaKind};
use convex_agreement::bits::Int;
use convex_agreement::core::{check_convex_validity, pi_z};
use convex_agreement::net::{Corruption, PartyId, Sim};

/// Centi-degrees Celsius, so −10.05 °C = −1005.
fn celsius(centi: i64) -> String {
    format!("{:.2} °C", centi as f64 / 100.0)
}

fn main() {
    let n = 7;
    let t = 2;
    // Honest readings −10.05 … −10.03 °C; byzantine sensors claim +100 °C.
    let readings: Vec<i64> = vec![-1005, -1004, -1003, -1005, -1004, 10_000, 10_000];
    let inputs: Vec<Int> = readings.iter().map(|&v| Int::from_i64(v)).collect();

    println!("cooling-room sensors: n = {n}, t = {t}");
    for (i, r) in readings.iter().enumerate() {
        let tag = if i >= n - t { "BYZANTINE" } else { "honest" };
        println!("  sensor {i}: {:>10}  [{tag}]", celsius(*r));
    }
    println!();

    let build = || {
        Sim::new(n)
            .corrupt(PartyId(5), Corruption::LyingHonest)
            .corrupt(PartyId(6), Corruption::LyingHonest)
    };

    // --- Plain BA: agreement, but on what? ---
    let ba_report = build().run(|ctx, id| turpin_coan(ctx, inputs[id.index()].clone()));
    let ba_out = (*ba_report.honest_outputs()[0]).clone();
    let ba_centi = ba_out.to_i128().unwrap_or_default();
    println!(
        "plain Byzantine Agreement output: {}",
        celsius(ba_centi as i64)
    );
    let honest_inputs = &inputs[..n - t];
    println!(
        "  within honest range? {}",
        check_convex_validity(&[ba_out], honest_inputs)
    );

    // --- Convex Agreement: output must reflect honest measurements. ---
    let ca_report = build().run(|ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan));
    let ca_out = (*ca_report.honest_outputs()[0]).clone();
    let ca_centi = ca_out.to_i128().unwrap() as i64;
    println!();
    println!("Convex Agreement output:          {}", celsius(ca_centi));
    println!(
        "  within honest range? {}",
        check_convex_validity(&[ca_out], honest_inputs)
    );
    println!();
    println!(
        "CA cost: {} rounds, {} honest bits",
        ca_report.metrics.rounds, ca_report.metrics.honest_bits
    );
}
