//! `ca-trace`: structured protocol tracing for the convex-agreement
//! stack.
//!
//! The paper's claims are bounds on `BITSℓ(Π)` and `ROUNDSℓ(Π)`; this
//! crate gives every run a *timeline* to check those bounds against.
//! Instrumented components (`ca-net`'s simulator and `Comm` layer,
//! `ca-runtime`'s TCP party, the `ca-core`/`ca-ba` protocols) emit typed
//! [`Event`]s — round boundaries, sends/delivers, scope transitions,
//! inputs/decisions, fault injections — each stamped with party id,
//! round, and the hierarchical metrics scope path.
//!
//! # Design rules
//!
//! - **Zero dependencies.** The trace layer sits below every other
//!   crate; it cannot pull any of them (or anything external) in.
//! - **Disabled means free.** Every emit site checks
//!   [`TraceSink::enabled`] before rendering values, so a [`NullSink`]
//!   costs one virtual call — metrics stay bit-identical to
//!   uninstrumented runs (enforced by `scripts/check.sh`).
//! - **Deterministic order.** The simulator buffers per-party records
//!   and flushes them in a canonical order, so equal runs produce
//!   byte-identical JSONL and [`first_divergence`] is meaningful.
//! - **Integer math only.** [`Histogram`] uses fixed log₂ buckets and
//!   rank-walk quantiles: no floats, no cross-platform drift.
//!
//! # Artifacts
//!
//! [`JsonlSink`] writes one flat JSON object per record; the `ca-trace`
//! binary consumes those files:
//!
//! - `ca-trace report run.jsonl` — per-scope/per-party/per-round table,
//! - `ca-trace diff a.jsonl b.jsonl` — first divergent event,
//! - `ca-trace check run.jsonl` — trace invariants ([`check`]).

mod check;
mod diff;
mod event;
mod hist;
mod json;
mod report;
mod sink;

pub use check::{check, faulted_parties, Violation};
pub use diff::{first_divergence, Divergence};
pub use event::{compact_debug, hex, Event, Record, ADVERSARY_SCOPE, ROOT_SCOPE};
pub use hist::{Histogram, BUCKETS};
pub use json::{json_escape, parse_object, JsonObject, JsonValue};
pub use report::{aggregate, render, PartyStats, Report, RoundStats, ScopeStats};
pub use sink::{read_jsonl, JsonlSink, NullSink, RingBufferSink, TraceSink};
