//! Typed trace events and their JSONL wire form.

use std::fmt;

use crate::json::{json_escape, JsonValue};

/// What happened. Every event is wrapped in a [`Record`] carrying the
/// common stamp (party, round, scope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A round boundary opened (stamped with the new round number).
    RoundStart,
    /// A round completed; the record's scope is the round's attribution.
    RoundEnd,
    /// The stamped party entered a metrics scope; the record's scope path
    /// already includes `name` as its last component.
    ScopeEnter {
        /// Scope component entered.
        name: String,
    },
    /// The stamped party left a metrics scope; the record's scope path is
    /// the remaining (parent) path.
    ScopeExit {
        /// Scope component left.
        name: String,
    },
    /// The stamped party sent `bytes` payload bytes to `to` this round.
    Send {
        /// Destination party index.
        to: u64,
        /// Payload bytes (framing excluded; see `ca-net::Metrics` docs).
        bytes: u64,
    },
    /// The stamped party received `bytes` payload bytes from `from`.
    Deliver {
        /// Originating party index.
        from: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// The stamped party entered a protocol with this input value
    /// (rendered as a decimal string for integer domains).
    Input {
        /// Rendered input value.
        value: String,
    },
    /// The stamped party decided this value in the record's scope.
    Decide {
        /// Rendered decided value.
        value: String,
    },
    /// The stamped party decided via the optimistic fast path: the value
    /// was certified by the fast-path confirmation BA without running the
    /// full worst-case protocol. A fast-path decide is still subject to
    /// convex validity — `ca-trace check` holds it against the same
    /// honest-input hull as a regular [`Event::Decide`].
    FastPathTaken {
        /// Rendered fast-path value (equals the scope's decided value).
        value: String,
    },
    /// The stamped party abandoned the fast path and fell back to the
    /// full worst-case protocol: observed misbehavior (missing values,
    /// digest mismatch, transport fault evidence) exceeded the fast-path
    /// budget, or the confirmation BA rejected the optimistic round.
    FallbackTriggered {
        /// Why the fast path was abandoned (e.g. `"incomplete"`,
        /// `"mismatch"`, `"ba-rejected"`, `"fault-estimate"`).
        reason: String,
    },
    /// The stamped party fell under adversary control.
    FaultInjected {
        /// Corruption mode or strategy name.
        strategy: String,
    },
    /// The stamped party stopped listening to `peer`: its stream ended
    /// (EOF/`Bye`/decode failure) or the transport cut it off (writer
    /// queue overflow). From this record on the peer is treated as
    /// silent-byzantine by the emitting party. The emission round is an
    /// *observation* time — stream ends are asynchronous, so it may vary
    /// across otherwise identical runs (see the TCP runtime docs).
    PeerGone {
        /// Index of the disconnected peer.
        peer: u64,
        /// Why the peer was dropped (e.g. `"eof"`, `"overflow"`).
        reason: String,
    },
    /// Free-form protocol annotation (e.g. `find_prefix` iteration counts).
    Note {
        /// Annotation key.
        label: String,
        /// Annotation value.
        value: String,
    },
}

impl Event {
    /// Stable discriminant used as the JSONL `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart => "round_start",
            Event::RoundEnd => "round_end",
            Event::ScopeEnter { .. } => "scope_enter",
            Event::ScopeExit { .. } => "scope_exit",
            Event::Send { .. } => "send",
            Event::Deliver { .. } => "deliver",
            Event::Input { .. } => "input",
            Event::Decide { .. } => "decide",
            Event::FastPathTaken { .. } => "fast_path",
            Event::FallbackTriggered { .. } => "fallback",
            Event::FaultInjected { .. } => "fault",
            Event::PeerGone { .. } => "peer_gone",
            Event::Note { .. } => "note",
        }
    }
}

/// Scope stamped on executor-emitted records that belong to no party scope.
pub const ROOT_SCOPE: &str = "_root";

/// Scope stamped on sends issued by adversary-scripted parties.
pub const ADVERSARY_SCOPE: &str = "_adversary";

/// One trace record: an [`Event`] plus the common stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Emitting party, or `None` for executor-level records (round
    /// boundaries in the simulator).
    pub party: Option<u64>,
    /// Round the event belongs to.
    pub round: u64,
    /// `/`-joined hierarchical scope path at the time of the event
    /// ([`ROOT_SCOPE`] outside any scope).
    pub scope: String,
    /// The event itself.
    pub event: Event,
}

impl Record {
    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"party\":");
        match self.party {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"scope\":\"");
        json_escape(&self.scope, &mut out);
        out.push_str("\",\"ev\":\"");
        out.push_str(self.event.kind());
        out.push('"');
        let mut field = |key: &str, val: &str, quoted: bool| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            if quoted {
                out.push('"');
                json_escape(val, &mut out);
                out.push('"');
            } else {
                out.push_str(val);
            }
        };
        match &self.event {
            Event::RoundStart | Event::RoundEnd => {}
            Event::ScopeEnter { name } | Event::ScopeExit { name } => field("name", name, true),
            Event::Send { to, bytes } => {
                field("to", &to.to_string(), false);
                field("bytes", &bytes.to_string(), false);
            }
            Event::Deliver { from, bytes } => {
                field("from", &from.to_string(), false);
                field("bytes", &bytes.to_string(), false);
            }
            Event::Input { value } | Event::Decide { value } | Event::FastPathTaken { value } => {
                field("value", value, true);
            }
            Event::FallbackTriggered { reason } => field("reason", reason, true),
            Event::FaultInjected { strategy } => field("strategy", strategy, true),
            Event::PeerGone { peer, reason } => {
                field("peer", &peer.to_string(), false);
                field("reason", reason, true);
            }
            Event::Note { label, value } => {
                field("label", label, true);
                field("value", value, true);
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`Record::to_jsonl`].
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not a valid record.
    pub fn parse_jsonl(line: &str) -> Result<Record, String> {
        let obj = crate::json::parse_object(line)?;
        let party = match obj.get("party") {
            Some(JsonValue::Null) | None => None,
            Some(JsonValue::Num(p)) => Some(*p),
            Some(other) => return Err(format!("bad party field: {other:?}")),
        };
        let round = obj.num("round")?;
        let scope = obj.str("scope")?.to_owned();
        let event = match obj.str("ev")? {
            "round_start" => Event::RoundStart,
            "round_end" => Event::RoundEnd,
            "scope_enter" => Event::ScopeEnter {
                name: obj.str("name")?.to_owned(),
            },
            "scope_exit" => Event::ScopeExit {
                name: obj.str("name")?.to_owned(),
            },
            "send" => Event::Send {
                to: obj.num("to")?,
                bytes: obj.num("bytes")?,
            },
            "deliver" => Event::Deliver {
                from: obj.num("from")?,
                bytes: obj.num("bytes")?,
            },
            "input" => Event::Input {
                value: obj.str("value")?.to_owned(),
            },
            "decide" => Event::Decide {
                value: obj.str("value")?.to_owned(),
            },
            "fast_path" => Event::FastPathTaken {
                value: obj.str("value")?.to_owned(),
            },
            "fallback" => Event::FallbackTriggered {
                reason: obj.str("reason")?.to_owned(),
            },
            "fault" => Event::FaultInjected {
                strategy: obj.str("strategy")?.to_owned(),
            },
            "peer_gone" => Event::PeerGone {
                peer: obj.num("peer")?,
                reason: obj.str("reason")?.to_owned(),
            },
            "note" => Event::Note {
                label: obj.str("label")?.to_owned(),
                value: obj.str("value")?.to_owned(),
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(Record {
            party,
            round,
            scope,
            event,
        })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.party {
            Some(p) => write!(f, "P{p}")?,
            None => f.write_str("exec")?,
        }
        write!(f, " r{} [{}] {}", self.round, self.scope, self.event.kind())?;
        match &self.event {
            Event::RoundStart | Event::RoundEnd => Ok(()),
            Event::ScopeEnter { name } | Event::ScopeExit { name } => write!(f, " {name}"),
            Event::Send { to, bytes } => write!(f, " to=P{to} bytes={bytes}"),
            Event::Deliver { from, bytes } => write!(f, " from=P{from} bytes={bytes}"),
            Event::Input { value } | Event::Decide { value } | Event::FastPathTaken { value } => {
                write!(f, " value={value}")
            }
            Event::FallbackTriggered { reason } => write!(f, " reason={reason}"),
            Event::FaultInjected { strategy } => write!(f, " strategy={strategy}"),
            Event::PeerGone { peer, reason } => write!(f, " peer=P{peer} reason={reason}"),
            Event::Note { label, value } => write!(f, " {label}={value}"),
        }
    }
}

/// Renders a value via `Debug`, truncated to 64 characters (with a `…`
/// marker) so traces of long-value protocols stay proportional to the
/// run, not to `ℓ`. Truncated renderings are never plain decimal
/// integers, so they are invisible to the `decide-in-hull` check.
pub fn compact_debug<T: fmt::Debug + ?Sized>(value: &T) -> String {
    const LIMIT: usize = 64;
    let mut s = format!("{value:?}");
    if s.len() > LIMIT {
        let cut = (0..=LIMIT)
            .rev()
            .find(|i| s.is_char_boundary(*i))
            .unwrap_or(0);
        s.truncate(cut);
        s.push('…');
    }
    s
}

/// Renders an arbitrary byte string as lowercase hex (for tracing values
/// that have no decimal rendering, e.g. hashes).
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(2 * bytes.len());
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('?'));
        out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('?'));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: Event) -> Record {
        Record {
            party: Some(3),
            round: 17,
            scope: "pi_n/len_est".to_owned(),
            event,
        }
    }

    #[test]
    fn compact_debug_truncates_long_values() {
        assert_eq!(compact_debug(&42u64), "42");
        let long = "x".repeat(200);
        let rendered = compact_debug(long.as_str());
        assert!(rendered.len() <= 68, "{}", rendered.len());
        assert!(rendered.ends_with('…'));
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let events = vec![
            Event::RoundStart,
            Event::RoundEnd,
            Event::ScopeEnter {
                name: "pi_n".to_owned(),
            },
            Event::ScopeExit {
                name: "pi_n".to_owned(),
            },
            Event::Send { to: 2, bytes: 40 },
            Event::Deliver { from: 5, bytes: 7 },
            Event::Input {
                value: "-123".to_owned(),
            },
            Event::Decide {
                value: "99".to_owned(),
            },
            Event::FastPathTaken {
                value: "99".to_owned(),
            },
            Event::FallbackTriggered {
                reason: "mismatch".to_owned(),
            },
            Event::FaultInjected {
                strategy: "scripted".to_owned(),
            },
            Event::PeerGone {
                peer: 3,
                reason: "eof".to_owned(),
            },
            Event::Note {
                label: "iterations".to_owned(),
                value: "5".to_owned(),
            },
        ];
        for ev in events {
            let r = rec(ev);
            let line = r.to_jsonl();
            assert_eq!(Record::parse_jsonl(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn executor_records_have_null_party() {
        let r = Record {
            party: None,
            round: 0,
            scope: ROOT_SCOPE.to_owned(),
            event: Event::RoundStart,
        };
        let line = r.to_jsonl();
        assert!(line.contains("\"party\":null"), "{line}");
        assert_eq!(Record::parse_jsonl(&line).unwrap(), r);
    }

    #[test]
    fn escaping_survives_hostile_scope_names() {
        let r = Record {
            party: Some(0),
            round: 1,
            scope: "a\"b\\c\nd".to_owned(),
            event: Event::Note {
                label: "k\"".to_owned(),
                value: "v\\".to_owned(),
            },
        };
        assert_eq!(Record::parse_jsonl(&r.to_jsonl()).unwrap(), r);
    }

    #[test]
    fn junk_rejected() {
        assert!(Record::parse_jsonl("").is_err());
        assert!(Record::parse_jsonl("{}").is_err());
        assert!(Record::parse_jsonl("{\"ev\":\"nope\"}").is_err());
        assert!(Record::parse_jsonl("not json").is_err());
    }

    #[test]
    fn hex_renders() {
        assert_eq!(hex(&[0x00, 0xAB, 0xFF]), "00abff");
        assert_eq!(hex(&[]), "");
    }
}
