//! Trace alignment (`ca-trace diff`): find the first event where two
//! runs diverge.
//!
//! Because the simulator flushes records in a canonical order (see
//! `ca-net::Sim::with_trace`), two runs of the same protocol with the
//! same inputs produce byte-identical traces; the first differing record
//! therefore localizes *exactly* where an injected fault (or a
//! nondeterminism bug) first changed behavior — with party, round, and
//! scope attached.

use crate::Record;

/// The first point where two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Position (record index) of the first disagreement.
    pub index: usize,
    /// Record on the left side, `None` if the left trace ended first.
    pub left: Option<Record>,
    /// Record on the right side, `None` if the right trace ended first.
    pub right: Option<Record>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "traces diverge at record #{}:", self.index)?;
        match &self.left {
            Some(r) => writeln!(f, "  left : {r}")?,
            None => writeln!(f, "  left : <trace ended>")?,
        }
        match &self.right {
            Some(r) => write!(f, "  right: {r}"),
            None => write!(f, "  right: <trace ended>"),
        }
    }
}

/// Compares two traces record-by-record; `None` means identical.
#[must_use]
pub fn first_divergence(left: &[Record], right: &[Record]) -> Option<Divergence> {
    let common = left.len().min(right.len());
    for i in 0..common {
        if left[i] != right[i] {
            return Some(Divergence {
                index: i,
                left: Some(left[i].clone()),
                right: Some(right[i].clone()),
            });
        }
    }
    if left.len() != right.len() {
        return Some(Divergence {
            index: common,
            left: left.get(common).cloned(),
            right: right.get(common).cloned(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, ROOT_SCOPE};

    fn rec(round: u64, bytes: u64) -> Record {
        Record {
            party: Some(1),
            round,
            scope: "pi_n".to_owned(),
            event: Event::Send { to: 0, bytes },
        }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = vec![rec(1, 5), rec(2, 6)];
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn first_difference_is_reported() {
        let a = vec![rec(1, 5), rec(2, 6), rec(3, 7)];
        let b = vec![rec(1, 5), rec(2, 9), rec(3, 7)];
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().round, 2);
        let text = d.right.unwrap().to_string();
        assert!(text.contains("bytes=9"), "{text}");
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a = vec![rec(1, 5)];
        let b = vec![rec(1, 5), rec(2, 6)];
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left, None);
        assert!(d.right.is_some());
        let text = d.to_string();
        assert!(text.contains("<trace ended>"), "{text}");
    }

    #[test]
    fn display_carries_party_round_scope() {
        let a = vec![rec(4, 5)];
        let b = vec![Record {
            party: Some(2),
            round: 4,
            scope: ROOT_SCOPE.to_owned(),
            event: Event::RoundStart,
        }];
        let text = first_divergence(&a, &b).unwrap().to_string();
        assert!(text.contains("P1 r4 [pi_n] send"), "{text}");
        assert!(text.contains("P2 r4 [_root] round_start"), "{text}");
    }
}
