//! Minimal flat-JSON reader/writer for the JSONL trace format.
//!
//! The trace schema only ever nests one level deep (a flat object of
//! strings, unsigned integers, and `null`), so a full JSON parser would
//! be dead weight; this module implements exactly the subset
//! [`Record::to_jsonl`](crate::Record::to_jsonl) emits plus enough
//! tolerance (whitespace, unknown keys) for hand-edited fixtures.

use std::collections::BTreeMap;

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// An unsigned integer (the schema never uses floats or negatives).
    Num(u64),
    /// A string (already unescaped).
    Str(String),
}

/// A parsed flat JSON object.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JsonObject {
    fields: BTreeMap<String, JsonValue>,
}

impl JsonObject {
    /// Looks up a field.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.get(key)
    }

    /// Fetches a required string field.
    ///
    /// # Errors
    ///
    /// When the field is absent or not a string.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        match self.fields.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            Some(other) => Err(format!("field `{key}` is not a string: {other:?}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// Fetches a required unsigned-integer field.
    ///
    /// # Errors
    ///
    /// When the field is absent or not a number.
    pub fn num(&self, key: &str) -> Result<u64, String> {
        match self.fields.get(key) {
            Some(JsonValue::Num(n)) => Ok(*n),
            Some(other) => Err(format!("field `{key}` is not a number: {other:?}")),
            None => Err(format!("missing field `{key}`")),
        }
    }
}

/// Appends `s` to `out` with JSON string escaping applied.
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                out.push(char::from_digit(b >> 4, 16).unwrap_or('0'));
                out.push(char::from_digit(b & 0xf, 16).unwrap_or('0'));
            }
            c => out.push(c),
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}` with string/number/null
/// values).
///
/// # Errors
///
/// A human-readable message on malformed input.
pub fn parse_object(input: &str) -> Result<JsonObject, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut obj = JsonObject::default();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            obj.fields.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => {}
                Some(b'}') => break,
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(obj)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected `{}`, got {other:?}", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(JsonValue::Null)
                } else {
                    Err("bad literal (expected null)".to_owned())
                }
            }
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                text.parse::<u64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number `{text}`: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| "bad \\u escape".to_owned())?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or_else(|| "bad codepoint".to_owned())?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the original slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("bad utf8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let obj = parse_object(r#"{"a":"x","b":42,"c":null}"#).unwrap();
        assert_eq!(obj.str("a").unwrap(), "x");
        assert_eq!(obj.num("b").unwrap(), 42);
        assert_eq!(obj.get("c"), Some(&JsonValue::Null));
        assert!(obj.str("missing").is_err());
    }

    #[test]
    fn tolerates_whitespace_and_empty() {
        let obj = parse_object(" { \"k\" : 7 } ").unwrap();
        assert_eq!(obj.num("k").unwrap(), 7);
        assert!(parse_object("{}").unwrap().get("x").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let mut enc = String::new();
        json_escape(nasty, &mut enc);
        let obj = parse_object(&format!("{{\"k\":\"{enc}\"}}")).unwrap();
        assert_eq!(obj.str("k").unwrap(), nasty);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object("{\"a\":}").is_err());
        assert!(parse_object("{\"a\":1}x").is_err());
        assert!(parse_object("[1,2]").is_err());
    }
}
