//! Human-readable trace summaries (`ca-trace report`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{check::faulted_parties, Event, Histogram, Record};

/// Aggregated per-scope counters.
#[derive(Debug, Default, Clone)]
pub struct ScopeStats {
    /// Number of `Send` events attributed to the scope.
    pub sends: u64,
    /// Total payload bytes sent in the scope.
    pub bytes: u64,
    /// Message-size histogram for the scope.
    pub msg_bytes: Histogram,
    /// Decisions recorded in the scope.
    pub decides: u64,
}

/// Aggregated per-party counters.
#[derive(Debug, Default, Clone)]
pub struct PartyStats {
    /// Number of `Send` events the party emitted.
    pub sends: u64,
    /// Total payload bytes the party sent.
    pub bytes: u64,
    /// Values the party decided (in order).
    pub decides: Vec<String>,
    /// Whether the party was corrupted at any point.
    pub faulted: bool,
}

/// Aggregated per-round counters.
#[derive(Debug, Default, Clone)]
pub struct RoundStats {
    /// `Send` events in the round.
    pub sends: u64,
    /// Payload bytes sent in the round.
    pub bytes: u64,
}

/// Everything `report` renders, exposed for programmatic use
/// (`ca-bench` reuses the per-scope aggregation for its artifacts).
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Total records in the trace.
    pub records: usize,
    /// Highest round stamped on any record.
    pub max_round: u64,
    /// Per-scope aggregates, keyed by scope path.
    pub scopes: BTreeMap<String, ScopeStats>,
    /// Per-party aggregates, keyed by party id.
    pub parties: BTreeMap<u64, PartyStats>,
    /// Per-round aggregates, keyed by round.
    pub rounds: BTreeMap<u64, RoundStats>,
}

/// Builds the aggregate view of a trace.
#[must_use]
pub fn aggregate(records: &[Record]) -> Report {
    let faulted = faulted_parties(records);
    let mut rep = Report {
        records: records.len(),
        ..Report::default()
    };
    for (p, stats) in faulted.iter().map(|&p| {
        (
            p,
            PartyStats {
                faulted: true,
                ..PartyStats::default()
            },
        )
    }) {
        rep.parties.insert(p, stats);
    }
    for r in records {
        rep.max_round = rep.max_round.max(r.round);
        match &r.event {
            Event::Send { bytes, .. } => {
                let s = rep.scopes.entry(r.scope.clone()).or_default();
                s.sends += 1;
                s.bytes += bytes;
                s.msg_bytes.record(*bytes);
                let round = rep.rounds.entry(r.round).or_default();
                round.sends += 1;
                round.bytes += bytes;
                if let Some(p) = r.party {
                    let party = rep.parties.entry(p).or_default();
                    party.sends += 1;
                    party.bytes += bytes;
                }
            }
            Event::Decide { value } => {
                rep.scopes.entry(r.scope.clone()).or_default().decides += 1;
                if let Some(p) = r.party {
                    rep.parties
                        .entry(p)
                        .or_default()
                        .decides
                        .push(value.clone());
                }
            }
            _ => {
                if let Some(p) = r.party {
                    rep.parties.entry(p).or_default();
                }
            }
        }
    }
    rep
}

/// Renders the report as the `ca-trace report` table.
#[must_use]
pub fn render(rep: &Report) -> String {
    let mut out = String::new();
    let faulted = rep.parties.values().filter(|p| p.faulted).count();
    let _ = writeln!(
        out,
        "trace: {} records, {} rounds, {} parties ({faulted} faulted)",
        rep.records,
        rep.max_round,
        rep.parties.len()
    );

    let _ = writeln!(out, "\nper-scope:");
    let _ = writeln!(
        out,
        "  {:<28} {:>8} {:>12} {:>8} {:>10} {:>10}",
        "scope", "sends", "bytes", "decides", "p50(B)", "max(B)"
    );
    for (scope, s) in &rep.scopes {
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>8} {:>10} {:>10}",
            scope,
            s.sends,
            s.bytes,
            s.decides,
            s.msg_bytes.quantile_permille(500),
            s.msg_bytes.max()
        );
    }

    let _ = writeln!(out, "\nper-party:");
    let _ = writeln!(
        out,
        "  {:<8} {:>8} {:>12} {:>8}  decided",
        "party", "sends", "bytes", "status"
    );
    for (p, s) in &rep.parties {
        let status = if s.faulted { "FAULTY" } else { "honest" };
        let decided = if s.decides.is_empty() {
            "-".to_owned()
        } else {
            s.decides.join(", ")
        };
        let _ = writeln!(
            out,
            "  {:<8} {:>8} {:>12} {:>8}  {}",
            format!("P{p}"),
            s.sends,
            s.bytes,
            status,
            decided
        );
    }

    let _ = writeln!(out, "\nper-round:");
    let _ = writeln!(out, "  {:<8} {:>8} {:>12}", "round", "sends", "bytes");
    for (round, s) in &rep.rounds {
        let _ = writeln!(out, "  {:<8} {:>8} {:>12}", round, s.sends, s.bytes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ROOT_SCOPE;

    fn send(p: u64, round: u64, scope: &str, bytes: u64) -> Record {
        Record {
            party: Some(p),
            round,
            scope: scope.to_owned(),
            event: Event::Send { to: 0, bytes },
        }
    }

    #[test]
    fn aggregates_scopes_parties_rounds() {
        let trace = vec![
            send(0, 1, "pi_n", 10),
            send(1, 1, "pi_n", 6),
            send(0, 2, "pi_n/path_ba", 4),
            Record {
                party: Some(1),
                round: 3,
                scope: "pi_n".to_owned(),
                event: Event::Decide {
                    value: "9".to_owned(),
                },
            },
            Record {
                party: Some(2),
                round: 1,
                scope: ROOT_SCOPE.to_owned(),
                event: Event::FaultInjected {
                    strategy: "garbage".to_owned(),
                },
            },
        ];
        let rep = aggregate(&trace);
        assert_eq!(rep.max_round, 3);
        assert_eq!(rep.scopes["pi_n"].sends, 2);
        assert_eq!(rep.scopes["pi_n"].bytes, 16);
        assert_eq!(rep.scopes["pi_n"].decides, 1);
        assert_eq!(rep.scopes["pi_n/path_ba"].sends, 1);
        assert_eq!(rep.parties[&0].sends, 2);
        assert_eq!(rep.parties[&1].decides, vec!["9".to_owned()]);
        assert!(rep.parties[&2].faulted);
        assert_eq!(rep.rounds[&1].sends, 2);
        assert_eq!(rep.rounds[&2].bytes, 4);

        let text = render(&rep);
        assert!(text.contains("pi_n/path_ba"), "{text}");
        assert!(text.contains("FAULTY"), "{text}");
    }
}
