//! Trace sinks: where records go.
//!
//! Instrumented code holds an `Arc<dyn TraceSink>` and calls
//! [`TraceSink::enabled`] before building a [`Record`], so the disabled
//! path ([`NullSink`]) costs one virtual call and no allocation.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::Record;

/// Destination for trace records.
///
/// Implementations must be cheap to call concurrently: the TCP runtime
/// records from the protocol thread while the simulator flushes whole
/// per-party buffers from its executor thread.
pub trait TraceSink: Send + Sync {
    /// Whether callers should bother constructing records at all.
    /// Instrumentation sites check this before rendering values.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one record.
    fn record(&self, rec: &Record);

    /// Forces buffered records to durable storage (no-op by default).
    fn flush(&self) {}
}

/// Discards everything; [`enabled`](TraceSink::enabled) is `false` so
/// instrumentation short-circuits before any rendering or allocation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _rec: &Record) {}
}

/// Keeps the most recent `capacity` records in memory — the post-mortem
/// sink: cheap enough to leave on, and a property-test failure can dump
/// the tail of the timeline.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<RingState>,
}

#[derive(Debug, Default)]
struct RingState {
    records: Vec<Record>,
    /// Next write position once the buffer has wrapped.
    head: usize,
    /// Total records ever offered (≥ `records.len()`).
    seen: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` records (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Mutex::new(RingState::default()),
        }
    }

    /// Returns the retained records in arrival order (oldest first).
    ///
    /// # Panics
    ///
    /// If a writer panicked while holding the internal lock.
    #[must_use]
    pub fn records(&self) -> Vec<Record> {
        let state = self.buf.lock().expect("ring sink poisoned");
        if state.records.len() < self.capacity {
            state.records.clone()
        } else {
            let mut out = Vec::with_capacity(state.records.len());
            out.extend_from_slice(&state.records[state.head..]);
            out.extend_from_slice(&state.records[..state.head]);
            out
        }
    }

    /// Total number of records offered over the sink's lifetime,
    /// including ones that have since been overwritten.
    ///
    /// # Panics
    ///
    /// If a writer panicked while holding the internal lock.
    #[must_use]
    pub fn total_seen(&self) -> u64 {
        self.buf.lock().expect("ring sink poisoned").seen
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, rec: &Record) {
        let mut state = self.buf.lock().expect("ring sink poisoned");
        state.seen += 1;
        if state.records.len() < self.capacity {
            state.records.push(rec.clone());
            state.head = state.records.len() % self.capacity;
        } else {
            let head = state.head;
            state.records[head] = rec.clone();
            state.head = (head + 1) % self.capacity;
        }
    }
}

/// Streams records to a JSONL file, one record per line, in arrival
/// order. Durable artifact sink for `ca-trace report|diff|check`.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, rec: &Record) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // Disk-full during tracing degrades the artifact, not the run.
        let _ = writeln!(w, "{}", rec.to_jsonl());
    }

    fn flush(&self) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = w.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Reads every record from a JSONL trace file.
///
/// # Errors
///
/// I/O failures or the first malformed line (with its line number).
pub fn read_jsonl(path: &Path) -> Result<Vec<Record>, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec =
            Record::parse_jsonl(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn rec(round: u64) -> Record {
        Record {
            party: Some(0),
            round,
            scope: "s".to_owned(),
            event: Event::RoundStart,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.record(&rec(1)); // must not panic
    }

    #[test]
    fn ring_keeps_most_recent() {
        let s = RingBufferSink::new(3);
        for r in 0..5 {
            s.record(&rec(r));
        }
        let rounds: Vec<u64> = s.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
        assert_eq!(s.total_seen(), 5);
    }

    #[test]
    fn ring_under_capacity() {
        let s = RingBufferSink::new(10);
        s.record(&rec(0));
        s.record(&rec(1));
        let rounds: Vec<u64> = s.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![0, 1]);
    }

    #[test]
    fn jsonl_sink_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("ca_trace_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        {
            let s = JsonlSink::create(&path).unwrap();
            s.record(&rec(7));
            s.record(&rec(8));
        } // drop flushes
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].round, 8);
        std::fs::remove_file(&path).ok();
    }
}
