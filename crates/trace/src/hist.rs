//! Deterministic log₂-bucket histograms.
//!
//! Buckets are fixed powers of two — bucket `i` counts values `v` with
//! `⌊log₂(v)⌋ = i − 1` (bucket 0 holds `v = 0`) — so two runs that see
//! the same multiset of values produce bit-identical histograms on every
//! platform: no floats, no sampling, no environment sensitivity.
//! Quantiles are computed by integer rank walk and report the bucket's
//! *upper bound*, a conservative estimate.

/// Number of buckets: one for zero plus one per possible `⌊log₂⌋` of a
/// `u64` (0..=63).
pub const BUCKETS: usize = 65;

/// A fixed-shape log₂ histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `⌊log₂(v)⌋ + 1`.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket (`2^i − 1` for bucket `i > 0`).
    #[must_use]
    pub fn bucket_upper(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean (rounded down), or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Per-bucket counts (index = [`Histogram::bucket_of`]).
    #[must_use]
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Conservative quantile: the upper bound of the bucket containing
    /// the sample at rank `⌈q·count⌉` (with `q` in per-mille to stay in
    /// integer math: `500` = median, `990` = p99). Returns 0 when empty.
    #[must_use]
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let permille = permille.min(1000);
        // Rank of the target sample, 1-based, rounded up.
        let rank = (self.count * permille).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Exact value known when the bucket is degenerate.
                if i == Self::bucket_of(self.max) {
                    return self.max;
                }
                return Self::bucket_upper(i);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_inclusive, upper_inclusive, count)`
    /// triples, ascending — the rendering-friendly view.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (lower, Self::bucket_upper(i), c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for v in [5u64, 9, 1, 0, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 115);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 23);
    }

    #[test]
    fn empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile_permille(500), 0);
    }

    #[test]
    fn quantiles_walk_ranks() {
        let mut h = Histogram::new();
        // 9 samples in bucket(1)=1, 1 sample at 1000 (bucket 10: 512..1023).
        for _ in 0..9 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.quantile_permille(500), 1);
        // p99 ⇒ rank 10 ⇒ the 1000 sample's bucket; max is in that bucket
        // so the exact max is reported.
        assert_eq!(h.quantile_permille(990), 1000);
        assert_eq!(h.quantile_permille(1000), 1000);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        a.record(3);
        let mut b = Histogram::new();
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn determinism_across_orderings() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let vals = [7u64, 99, 0, 12345, 3, 3, 8];
        for &v in &vals {
            a.record(v);
        }
        for &v in vals.iter().rev() {
            b.record(v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn nonzero_buckets_render() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 0, 1), (4, 7, 1)]);
    }
}
