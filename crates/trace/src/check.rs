//! Trace-level invariant checking (`ca-trace check`).
//!
//! These are *observability* invariants: properties every well-formed
//! trace of an honest (or honestly-simulated) run must satisfy,
//! independent of which protocol produced it. Violations point at the
//! exact record, so a failing adversarial run can be localized to a
//! party/round/scope without re-running anything.
//!
//! Checked invariants:
//!
//! 1. **round-monotone** — each party's records carry non-decreasing
//!    round numbers (stream order is emission order per party).
//! 2. **round-alternation** — executor records (`party = null`)
//!    alternate `RoundStart`/`RoundEnd` with increasing rounds; a
//!    trailing `RoundStart` is tolerated (a run that decides mid-round
//!    never closes its last round).
//! 3. **scope-stack** — per party, `ScopeEnter`/`ScopeExit` nest
//!    properly and every record's stamped scope path matches the
//!    reconstructed stack.
//! 4. **send-in-scope** — every *honest* `Send` happens inside a named
//!    scope (never at `_root`): all protocol communication must be
//!    attributable to a subprotocol.
//! 5. **decide-in-hull** — every honest `Decide` whose value renders as
//!    a decimal integer lies inside `[min, max]` of the honest `Input`
//!    values (the convexity guarantee, checked per trace). A decimal
//!    input too large for `i128` makes that scope's hull unknown and
//!    disables the check there — a hull missing an endpoint must not
//!    fire on correct runs.
//! 6. **fast-path** — the adaptive fast path must not weaken either
//!    guarantee: every honest `FastPathTaken` value that renders as a
//!    decimal integer lies inside the honest-input hull of its scope
//!    (`fast-path-in-hull`), a fast decider's `Decide` in the same scope
//!    equals its `FastPathTaken` value, and in any scope where at least
//!    one honest party took the fast path *all* honest `Decide` values
//!    are identical — parties that decided via different paths must have
//!    decided the same value (`fast-path-agreement`).
//!
//! Parties with a `FaultInjected` event anywhere in the trace are
//! excluded from invariants 3–6: corrupted parties may do anything.

use std::collections::{BTreeMap, BTreeSet};

use crate::{Event, Record, ADVERSARY_SCOPE, ROOT_SCOPE};

/// One invariant violation, anchored to a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending record in the input slice.
    pub index: usize,
    /// Which invariant fired (stable kebab-case name).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] record #{}: {}",
            self.rule, self.index, self.message
        )
    }
}

/// Parties named by `FaultInjected` events (anywhere in the trace).
#[must_use]
pub fn faulted_parties(records: &[Record]) -> BTreeSet<u64> {
    records
        .iter()
        .filter(|r| matches!(r.event, Event::FaultInjected { .. }))
        .filter_map(|r| r.party)
        .collect()
}

/// Runs every invariant over a trace; returns all violations in record
/// order (empty = trace is well-formed).
#[must_use]
pub fn check(records: &[Record]) -> Vec<Violation> {
    let faulted = faulted_parties(records);
    let mut out = Vec::new();
    check_round_monotone(records, &mut out);
    check_round_alternation(records, &mut out);
    check_scope_stacks(records, &faulted, &mut out);
    check_sends_in_scope(records, &faulted, &mut out);
    check_decides_in_hull(records, &faulted, &mut out);
    check_fast_path(records, &faulted, &mut out);
    out.sort_by_key(|v| v.index);
    out
}

fn check_round_monotone(records: &[Record], out: &mut Vec<Violation>) {
    let mut last: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        let prev = last.entry(r.party).or_insert(r.round);
        if r.round < *prev {
            out.push(Violation {
                index: i,
                rule: "round-monotone",
                message: format!(
                    "party {} went back from round {} to round {}",
                    party_name(r.party),
                    prev,
                    r.round
                ),
            });
        }
        *prev = (*prev).max(r.round);
    }
}

fn check_round_alternation(records: &[Record], out: &mut Vec<Violation>) {
    // Executor boundary records only; traces from the TCP runtime stamp
    // boundaries per party, so apply the same state machine per party.
    let mut open: BTreeMap<Option<u64>, Option<u64>> = BTreeMap::new();
    let mut last_index: BTreeMap<Option<u64>, usize> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        match r.event {
            Event::RoundStart => {
                if let Some(Some(openr)) = open.get(&r.party) {
                    out.push(Violation {
                        index: i,
                        rule: "round-alternation",
                        message: format!(
                            "{}: round {} started while round {openr} still open",
                            party_name(r.party),
                            r.round
                        ),
                    });
                }
                open.insert(r.party, Some(r.round));
                last_index.insert(r.party, i);
            }
            Event::RoundEnd => {
                match open.get(&r.party) {
                    Some(Some(openr)) if *openr == r.round => {}
                    _ => out.push(Violation {
                        index: i,
                        rule: "round-alternation",
                        message: format!(
                            "{}: round {} ended without a matching start",
                            party_name(r.party),
                            r.round
                        ),
                    }),
                }
                open.insert(r.party, None);
            }
            _ => {}
        }
    }
    // A trailing open round is fine (runs often stop mid-round on
    // decide); an open round followed by nothing else is the only case.
}

fn check_scope_stacks(records: &[Record], faulted: &BTreeSet<u64>, out: &mut Vec<Violation>) {
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        let Some(party) = r.party else { continue };
        if faulted.contains(&party) {
            continue;
        }
        let stack = stacks.entry(party).or_default();
        match &r.event {
            Event::ScopeEnter { name } => {
                stack.push(name.clone());
                let want = join_scope(stack);
                if r.scope != want {
                    out.push(Violation {
                        index: i,
                        rule: "scope-stack",
                        message: format!(
                            "P{party} entered `{name}` but stamped scope `{}` (expected `{want}`)",
                            r.scope
                        ),
                    });
                    // Resynchronize to the stamped path.
                    *stack = split_scope(&r.scope);
                }
            }
            Event::ScopeExit { name } => {
                if stack.last() != Some(name) {
                    out.push(Violation {
                        index: i,
                        rule: "scope-stack",
                        message: format!(
                            "P{party} exited `{name}` but innermost scope is `{}`",
                            stack.last().map_or(ROOT_SCOPE, String::as_str)
                        ),
                    });
                }
                stack.pop();
                let want = join_scope(stack);
                if r.scope != want {
                    out.push(Violation {
                        index: i,
                        rule: "scope-stack",
                        message: format!(
                            "P{party} exit stamped scope `{}` (expected `{want}`)",
                            r.scope
                        ),
                    });
                    *stack = split_scope(&r.scope);
                }
            }
            _ => {}
        }
    }
}

fn check_sends_in_scope(records: &[Record], faulted: &BTreeSet<u64>, out: &mut Vec<Violation>) {
    for (i, r) in records.iter().enumerate() {
        let Event::Send { to, .. } = r.event else {
            continue;
        };
        let honest = r.party.is_some_and(|p| !faulted.contains(&p));
        if honest && (r.scope == ROOT_SCOPE || r.scope == ADVERSARY_SCOPE || r.scope.is_empty()) {
            out.push(Violation {
                index: i,
                rule: "send-in-scope",
                message: format!(
                    "honest {} sent to P{to} outside any protocol scope",
                    party_name(r.party)
                ),
            });
        }
    }
}

/// Hull of honest inputs, per scope path: protocols report `Input` and
/// `Decide` under the same scope, and separate protocol instances in
/// one trace (e.g. `pi_n` then a baseline) must not mix hulls.
/// `None` marks a scope whose hull is unknown: some honest input was
/// decimal but exceeded i128 (arbitrary-size `Nat` runs), so checking
/// against the remaining endpoints would produce false violations.
fn honest_hulls<'a>(
    records: &'a [Record],
    faulted: &BTreeSet<u64>,
) -> BTreeMap<&'a str, Option<(i128, i128)>> {
    let mut hulls: BTreeMap<&str, Option<(i128, i128)>> = BTreeMap::new();
    for r in records {
        let Event::Input { value } = &r.event else {
            continue;
        };
        if r.party.is_none_or(|p| faulted.contains(&p)) {
            continue;
        }
        if !looks_decimal(value) {
            continue;
        }
        let parsed = parse_decimal(value);
        let slot = hulls
            .entry(r.scope.as_str())
            .or_insert_with(|| parsed.map(|v| (v, v)));
        match (parsed, slot.as_mut()) {
            (Some(v), Some((lo, hi))) => {
                *lo = (*lo).min(v);
                *hi = (*hi).max(v);
            }
            (None, _) => *slot = None,
            (Some(_), None) => {}
        }
    }
    hulls
}

fn check_decides_in_hull(records: &[Record], faulted: &BTreeSet<u64>, out: &mut Vec<Violation>) {
    let hulls = honest_hulls(records, faulted);
    for (i, r) in records.iter().enumerate() {
        let Event::Decide { value } = &r.event else {
            continue;
        };
        if r.party.is_none_or(|p| faulted.contains(&p)) {
            continue;
        }
        let (Some(v), Some(&Some((lo, hi)))) = (parse_decimal(value), hulls.get(r.scope.as_str()))
        else {
            continue;
        };
        if v < lo || v > hi {
            out.push(Violation {
                index: i,
                rule: "decide-in-hull",
                message: format!(
                    "{} decided {v} in scope `{}`, outside honest input hull [{lo}, {hi}]",
                    party_name(r.party),
                    r.scope
                ),
            });
        }
    }
}

fn check_fast_path(records: &[Record], faulted: &BTreeSet<u64>, out: &mut Vec<Violation>) {
    let hulls = honest_hulls(records, faulted);
    // Per scope: honest fast-path markers and honest decides, in order.
    let mut fast: BTreeMap<&str, Vec<(usize, u64, &str)>> = BTreeMap::new();
    let mut decides: BTreeMap<&str, Vec<(usize, u64, &str)>> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        let Some(p) = r.party else { continue };
        if faulted.contains(&p) {
            continue;
        }
        match &r.event {
            Event::FastPathTaken { value } => {
                fast.entry(r.scope.as_str())
                    .or_default()
                    .push((i, p, value));
            }
            Event::Decide { value } => {
                decides
                    .entry(r.scope.as_str())
                    .or_default()
                    .push((i, p, value));
            }
            _ => {}
        }
    }
    for (scope, markers) in &fast {
        // A fast-path decide is still a decide: it must sit inside the
        // scope's honest-input hull (when both render as decimals).
        for &(i, p, value) in markers {
            if let (Some(v), Some(&Some((lo, hi)))) = (parse_decimal(value), hulls.get(scope)) {
                if v < lo || v > hi {
                    out.push(Violation {
                        index: i,
                        rule: "fast-path-in-hull",
                        message: format!(
                            "P{p} took the fast path with {v} in scope `{scope}`, \
                             outside honest input hull [{lo}, {hi}]"
                        ),
                    });
                }
            }
        }
        let Some(scope_decides) = decides.get(scope) else {
            continue;
        };
        // A fast decider's own decide must be the certified value.
        for &(i, p, value) in markers {
            if let Some(&(_, _, decided)) = scope_decides.iter().find(|&&(_, q, _)| q == p) {
                if decided != value {
                    out.push(Violation {
                        index: i,
                        rule: "fast-path-agreement",
                        message: format!(
                            "P{p} took the fast path with `{value}` in scope `{scope}` \
                             but decided `{decided}`"
                        ),
                    });
                }
            }
        }
        // Someone took the fast path in this scope, so every honest party
        // that decided here — via either path — must have decided the
        // same value.
        let &(_, first_party, reference) = &scope_decides[0];
        for &(i, p, value) in &scope_decides[1..] {
            if value != reference {
                out.push(Violation {
                    index: i,
                    rule: "fast-path-agreement",
                    message: format!(
                        "P{p} decided `{value}` in scope `{scope}` but P{first_party} \
                         decided `{reference}` via a different path"
                    ),
                });
            }
        }
    }
}

/// `true` if `s` is an optionally-signed run of decimal digits —
/// regardless of whether it fits in `i128`.
fn looks_decimal(s: &str) -> bool {
    let body = s.strip_prefix('-').unwrap_or(s);
    !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit())
}

/// Parses an optionally-signed decimal integer rendering; `None` for
/// values that are not plain integers (hex digests, tuples, …) or that
/// overflow `i128`.
fn parse_decimal(s: &str) -> Option<i128> {
    if !looks_decimal(s) {
        return None;
    }
    s.parse::<i128>().ok()
}

fn party_name(party: Option<u64>) -> String {
    party.map_or_else(|| "exec".to_owned(), |p| format!("P{p}"))
}

fn join_scope(stack: &[String]) -> String {
    if stack.is_empty() {
        ROOT_SCOPE.to_owned()
    } else {
        stack.join("/")
    }
}

fn split_scope(scope: &str) -> Vec<String> {
    if scope == ROOT_SCOPE || scope.is_empty() {
        Vec::new()
    } else {
        scope.split('/').map(str::to_owned).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(party: Option<u64>, round: u64, scope: &str, event: Event) -> Record {
        Record {
            party,
            round,
            scope: scope.to_owned(),
            event,
        }
    }

    fn enter(p: u64, round: u64, full: &str, name: &str) -> Record {
        r(
            Some(p),
            round,
            full,
            Event::ScopeEnter {
                name: name.to_owned(),
            },
        )
    }

    fn exit(p: u64, round: u64, full: &str, name: &str) -> Record {
        r(
            Some(p),
            round,
            full,
            Event::ScopeExit {
                name: name.to_owned(),
            },
        )
    }

    #[test]
    fn clean_trace_passes() {
        let trace = vec![
            r(None, 1, ROOT_SCOPE, Event::RoundStart),
            r(
                Some(0),
                1,
                ROOT_SCOPE,
                Event::Input {
                    value: "5".to_owned(),
                },
            ),
            enter(0, 1, "pi_n", "pi_n"),
            r(Some(0), 1, "pi_n", Event::Send { to: 1, bytes: 3 }),
            exit(0, 1, ROOT_SCOPE, "pi_n"),
            r(None, 1, ROOT_SCOPE, Event::RoundEnd),
            r(None, 2, ROOT_SCOPE, Event::RoundStart),
            r(
                Some(0),
                2,
                ROOT_SCOPE,
                Event::Decide {
                    value: "5".to_owned(),
                },
            ),
        ];
        assert_eq!(check(&trace), vec![]);
    }

    #[test]
    fn round_regression_fires() {
        let trace = vec![
            r(Some(0), 5, ROOT_SCOPE, Event::RoundStart),
            r(Some(0), 4, ROOT_SCOPE, Event::RoundEnd),
        ];
        let v = check(&trace);
        assert!(v.iter().any(|v| v.rule == "round-monotone"), "{v:?}");
    }

    #[test]
    fn unscoped_honest_send_fires() {
        let trace = vec![r(Some(2), 1, ROOT_SCOPE, Event::Send { to: 0, bytes: 1 })];
        let v = check(&trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "send-in-scope");
    }

    #[test]
    fn faulted_parties_are_exempt() {
        let trace = vec![
            r(
                Some(2),
                1,
                ROOT_SCOPE,
                Event::FaultInjected {
                    strategy: "scripted".to_owned(),
                },
            ),
            r(Some(2), 1, ADVERSARY_SCOPE, Event::Send { to: 0, bytes: 1 }),
            r(
                Some(2),
                2,
                ROOT_SCOPE,
                Event::Decide {
                    value: "999999".to_owned(),
                },
            ),
        ];
        assert_eq!(check(&trace), vec![]);
    }

    #[test]
    fn decide_outside_hull_fires() {
        let trace = vec![
            r(
                Some(0),
                1,
                "pi_n",
                Event::Input {
                    value: "3".to_owned(),
                },
            ),
            r(
                Some(1),
                1,
                "pi_n",
                Event::Input {
                    value: "7".to_owned(),
                },
            ),
            r(
                Some(0),
                9,
                "pi_n",
                Event::Decide {
                    value: "8".to_owned(),
                },
            ),
        ];
        let v = check(&trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "decide-in-hull");
        assert!(v[0].message.contains("[3, 7]"), "{}", v[0].message);
    }

    #[test]
    fn oversized_decimal_input_disables_hull_check() {
        // P1's input is decimal but > i128::MAX: the scope hull becomes
        // unknown, so a decide outside the *parseable* inputs must NOT
        // fire (it may well be inside the true hull).
        let big = "9".repeat(60);
        let trace = vec![
            r(
                Some(0),
                1,
                "pi_n",
                Event::Input {
                    value: "3".to_owned(),
                },
            ),
            r(Some(1), 1, "pi_n", Event::Input { value: big }),
            r(
                Some(0),
                9,
                "pi_n",
                Event::Decide {
                    value: "65535".to_owned(),
                },
            ),
        ];
        assert_eq!(check(&trace), vec![]);
    }

    #[test]
    fn negative_hull_values_parse() {
        let trace = vec![
            r(
                Some(0),
                1,
                "pi_z",
                Event::Input {
                    value: "-10".to_owned(),
                },
            ),
            r(
                Some(1),
                1,
                "pi_z",
                Event::Input {
                    value: "-2".to_owned(),
                },
            ),
            r(
                Some(0),
                3,
                "pi_z",
                Event::Decide {
                    value: "-5".to_owned(),
                },
            ),
            r(
                Some(1),
                3,
                "pi_z",
                Event::Decide {
                    value: "-1".to_owned(),
                },
            ),
        ];
        let v = check(&trace);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "decide-in-hull");
    }

    fn input(p: u64, scope: &str, value: &str) -> Record {
        r(
            Some(p),
            1,
            scope,
            Event::Input {
                value: value.to_owned(),
            },
        )
    }

    fn decide(p: u64, scope: &str, value: &str) -> Record {
        r(
            Some(p),
            9,
            scope,
            Event::Decide {
                value: value.to_owned(),
            },
        )
    }

    fn fast(p: u64, scope: &str, value: &str) -> Record {
        r(
            Some(p),
            9,
            scope,
            Event::FastPathTaken {
                value: value.to_owned(),
            },
        )
    }

    #[test]
    fn fast_path_decide_in_hull_passes() {
        let trace = vec![
            input(0, "adaptive", "3"),
            input(1, "adaptive", "7"),
            fast(0, "adaptive", "5"),
            decide(0, "adaptive", "5"),
            fast(1, "adaptive", "5"),
            decide(1, "adaptive", "5"),
        ];
        assert_eq!(check(&trace), vec![]);
    }

    #[test]
    fn fast_path_escape_from_hull_fires() {
        let trace = vec![
            input(0, "adaptive", "3"),
            input(1, "adaptive", "7"),
            fast(0, "adaptive", "9"),
            decide(0, "adaptive", "9"),
        ];
        let v = check(&trace);
        assert!(
            v.iter().any(|v| v.rule == "fast-path-in-hull"),
            "missing fast-path-in-hull in {v:?}"
        );
        // The ordinary decide-in-hull fires on the matching decide too.
        assert!(v.iter().any(|v| v.rule == "decide-in-hull"), "{v:?}");
    }

    #[test]
    fn cross_path_disagreement_fires() {
        // P0 decides 5 via the fast path; P1 fell back and decided 6:
        // different paths must still agree.
        let trace = vec![
            input(0, "adaptive", "3"),
            input(1, "adaptive", "7"),
            fast(0, "adaptive", "5"),
            decide(0, "adaptive", "5"),
            r(
                Some(1),
                5,
                "adaptive",
                Event::FallbackTriggered {
                    reason: "mismatch".to_owned(),
                },
            ),
            decide(1, "adaptive", "6"),
        ];
        let v = check(&trace);
        assert!(
            v.iter().any(|v| v.rule == "fast-path-agreement"),
            "missing fast-path-agreement in {v:?}"
        );
    }

    #[test]
    fn fast_marker_must_match_own_decide() {
        let trace = vec![
            input(0, "adaptive", "3"),
            input(1, "adaptive", "7"),
            fast(0, "adaptive", "5"),
            decide(0, "adaptive", "4"),
        ];
        let v = check(&trace);
        assert!(
            v.iter().any(|v| v.rule == "fast-path-agreement"),
            "missing fast-path-agreement in {v:?}"
        );
    }

    #[test]
    fn faulted_fast_path_is_exempt() {
        let trace = vec![
            input(0, "adaptive", "3"),
            input(1, "adaptive", "7"),
            r(
                Some(2),
                1,
                ROOT_SCOPE,
                Event::FaultInjected {
                    strategy: "scripted".to_owned(),
                },
            ),
            fast(2, "adaptive", "999"),
            decide(2, "adaptive", "0"),
        ];
        assert_eq!(check(&trace), vec![]);
    }

    #[test]
    fn fallback_only_scope_keeps_plain_agreement_semantics() {
        // Without any fast-path marker the new rule stays silent even if
        // decides differ (plain per-scope agreement is a protocol-level
        // property; the trace invariant only binds cross-path decides).
        let trace = vec![
            input(0, "adaptive", "3"),
            input(1, "adaptive", "7"),
            decide(0, "adaptive", "4"),
            decide(1, "adaptive", "5"),
        ];
        assert_eq!(check(&trace), vec![]);
    }

    #[test]
    fn mismatched_scope_stack_fires() {
        let trace = vec![
            enter(0, 1, "pi_n", "pi_n"),
            exit(0, 1, ROOT_SCOPE, "wrong_name"),
        ];
        let v = check(&trace);
        assert!(v.iter().any(|v| v.rule == "scope-stack"), "{v:?}");
    }

    #[test]
    fn double_round_start_fires() {
        let trace = vec![
            r(None, 1, ROOT_SCOPE, Event::RoundStart),
            r(None, 2, ROOT_SCOPE, Event::RoundStart),
        ];
        let v = check(&trace);
        assert!(v.iter().any(|v| v.rule == "round-alternation"), "{v:?}");
    }

    #[test]
    fn trailing_round_start_tolerated() {
        let trace = vec![
            r(None, 1, ROOT_SCOPE, Event::RoundStart),
            r(None, 1, ROOT_SCOPE, Event::RoundEnd),
            r(None, 2, ROOT_SCOPE, Event::RoundStart),
        ];
        assert_eq!(check(&trace), vec![]);
    }
}
