//! `ca-trace` CLI: inspect JSONL traces produced by instrumented runs.
//!
//! ```text
//! ca-trace report <trace.jsonl>        per-scope/per-party/per-round table
//! ca-trace diff   <a.jsonl> <b.jsonl>  first divergent event, or silence
//! ca-trace check  <trace.jsonl>        assert trace invariants
//! ```
//!
//! Exit codes: 0 = ok / identical / clean; 1 = divergence or violations
//! found; 2 = usage or I/O error.

use std::path::Path;
use std::process::ExitCode;

use ca_trace::{aggregate, check, first_divergence, read_jsonl, render, Record};

const USAGE: &str = "usage:
  ca-trace report <trace.jsonl>
  ca-trace diff   <a.jsonl> <b.jsonl>
  ca-trace check  <trace.jsonl>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["report", path] => cmd_report(Path::new(path)),
        ["diff", a, b] => cmd_diff(Path::new(a), Path::new(b)),
        ["check", path] => cmd_check(Path::new(path)),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ca-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &Path) -> Result<Vec<Record>, String> {
    read_jsonl(path)
}

fn cmd_report(path: &Path) -> Result<ExitCode, String> {
    let records = load(path)?;
    print!("{}", render(&aggregate(&records)));
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(a: &Path, b: &Path) -> Result<ExitCode, String> {
    let left = load(a)?;
    let right = load(b)?;
    match first_divergence(&left, &right) {
        None => {
            println!(
                "traces identical ({} records): {} == {}",
                left.len(),
                a.display(),
                b.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some(d) => {
            println!("{d}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_check(path: &Path) -> Result<ExitCode, String> {
    let records = load(path)?;
    let violations = check(&records);
    if violations.is_empty() {
        println!(
            "{}: {} records, all invariants hold",
            path.display(),
            records.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "{}: {} violation(s) in {} records",
            path.display(),
            violations.len(),
            records.len()
        );
        Ok(ExitCode::FAILURE)
    }
}
