//! The `comm-budget` pass: static accounting of every wire send site.
//!
//! The paper's headline claim is a communication bound, so every
//! transitive send/broadcast in the protocol crates must (a) route
//! through a metered helper — one whose bytes land in `Metrics` — and
//! (b) be attributable to an annotated round scope, so the static table
//! of send sites × scopes can be diffed against the committed
//! `analyzer-baseline.json`. A new or moved send site fails the gate
//! until the baseline (and the claim-vs-measured bench docs) are
//! updated together via `scripts/update-baseline.sh`.
//!
//! Annotations:
//!
//! - `// ca-budget: metered` above a fn — declares a metered send
//!   helper (the `CommExt` wrappers). When no file in the workspace
//!   declares one, the builtin helper set `send` / `send_all` /
//!   `exchange` applies (keeps fixtures self-contained).
//! - `// ca-budget: scope(<name>)` above a fn — declares a round-scope
//!   root when the scope is pushed through a constant instead of a
//!   string literal. Literal `.scoped("…")` / `.push_scope("…")` calls
//!   are detected automatically.
//! - `// ca-budget: raw-send(<reason>)` on (or directly above) a line —
//!   permits a direct `send_bytes` call, e.g. the engine's envelope
//!   batcher which meters at a coarser grain.

use std::collections::{BTreeMap, BTreeSet};

use crate::diagnostics::{json_str, Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::passes::SemanticConfig;
use crate::symbols::{call_open_paren, match_close, raw_send_reason, SymbolTable};

/// Rule name, as shown in diagnostics and accepted by pragmas.
pub const RULE: &str = "comm-budget";

/// Helper names assumed metered when nothing is annotated.
const BUILTIN_HELPERS: &[&str] = &["send", "send_all", "exchange"];

/// Scope recorded for sites that no round scope reaches (always
/// accompanied by a diagnostic, so it never lands in a clean baseline).
const UNSCOPED: &str = "(unscoped)";

/// One audited send site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SendSite {
    /// Owning crate.
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Qualified function containing the call.
    pub function: String,
    /// Helper the site routes through (`send`, `send_all`, `exchange`,
    /// or `send_bytes` for pragma'd raw sites).
    pub helper: String,
    /// Round scope the site is attributed to.
    pub scope: String,
    /// Site order within the function (stable under unrelated edits,
    /// unlike a line number).
    pub ordinal: u32,
    /// 1-indexed line — informational only, excluded from the diff key.
    pub line: u32,
}

impl SendSite {
    /// The identity used for baseline diffing. Deliberately excludes
    /// the line so that unrelated edits above a site don't drift the
    /// baseline.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.crate_name, self.file, self.function, self.helper, self.scope, self.ordinal
        )
    }
}

/// The static send-site table: what `--write-baseline` persists and
/// `--baseline` diffs against.
#[derive(Debug, Default, Clone)]
pub struct BudgetTable {
    /// Sites, sorted by key.
    pub sites: Vec<SendSite>,
}

impl BudgetTable {
    /// Deterministic JSON rendering (one site per line, sorted).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"sites\": [\n");
        for (i, s) in self.sites.iter().enumerate() {
            let sep = if i + 1 == self.sites.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"crate\":{},\"file\":{},\"function\":{},\"helper\":{},\"scope\":{},\"ordinal\":{},\"line\":{}}}{sep}\n",
                json_str(&s.crate_name),
                json_str(&s.file),
                json_str(&s.function),
                json_str(&s.helper),
                json_str(&s.scope),
                s.ordinal,
                s.line,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON produced by [`BudgetTable::to_json`]. Tolerant
    /// of reformatting: any object containing the expected fields
    /// counts; malformed entries are skipped rather than fatal.
    #[must_use]
    pub fn from_json(src: &str) -> Self {
        let mut sites = Vec::new();
        for obj in src.split('{').skip(1) {
            let Some(crate_name) = field_str(obj, "crate") else {
                continue;
            };
            let (Some(file), Some(function), Some(helper), Some(scope)) = (
                field_str(obj, "file"),
                field_str(obj, "function"),
                field_str(obj, "helper"),
                field_str(obj, "scope"),
            ) else {
                continue;
            };
            sites.push(SendSite {
                crate_name,
                file,
                function,
                helper,
                scope,
                ordinal: field_u32(obj, "ordinal").unwrap_or(0),
                line: field_u32(obj, "line").unwrap_or(0),
            });
        }
        sites.sort();
        BudgetTable { sites }
    }

    /// Diffs `self` (current) against `baseline`, producing one error
    /// per added and per vanished site.
    #[must_use]
    pub fn diff_against(&self, baseline: &BudgetTable) -> Vec<Diagnostic> {
        let ours: BTreeMap<String, &SendSite> = self.sites.iter().map(|s| (s.key(), s)).collect();
        let theirs: BTreeMap<String, &SendSite> =
            baseline.sites.iter().map(|s| (s.key(), s)).collect();
        let mut out = Vec::new();
        for (key, site) in &ours {
            if !theirs.contains_key(key) {
                out.push(Diagnostic {
                    rule: RULE,
                    severity: Severity::Error,
                    file: site.file.clone(),
                    line: site.line,
                    message: format!(
                        "send site not in analyzer-baseline.json (scope `{}`, helper `{}`, \
                         in `{}`); if the communication-cost change is intended, update the \
                         bench docs and run scripts/update-baseline.sh",
                        site.scope, site.helper, site.function
                    ),
                });
            }
        }
        for (key, site) in &theirs {
            if !ours.contains_key(key) {
                out.push(Diagnostic {
                    rule: RULE,
                    severity: Severity::Error,
                    file: site.file.clone(),
                    line: site.line,
                    message: format!(
                        "baselined send site vanished (scope `{}`, helper `{}`, in `{}`); \
                         run scripts/update-baseline.sh to acknowledge the removal",
                        site.scope, site.helper, site.function
                    ),
                });
            }
        }
        out
    }
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let idx = obj.find(&pat)? + pat.len();
    let rest = obj[idx..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn field_u32(obj: &str, key: &str) -> Option<u32> {
    let pat = format!("\"{key}\":");
    let idx = obj.find(&pat)? + pat.len();
    let digits: String = obj[idx..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Runs the pass: returns (diagnostics, send-site table).
#[must_use]
pub fn run(table: &SymbolTable, config: &SemanticConfig) -> (Vec<Diagnostic>, BudgetTable) {
    let helpers = helper_names(table);
    let root_scopes = scope_roots(table);
    // Per root fn, BFS distance to every fn it reaches (for
    // nearest-root scope attribution).
    let mut reach: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
    for &root in root_scopes.keys() {
        reach.insert(root, distances_from(table, root));
    }

    let mut diags = Vec::new();
    let mut sites = Vec::new();
    for (idx, f) in table.fns.iter().enumerate() {
        if f.is_test || !config.budget_crates.contains(&f.crate_name) {
            continue;
        }
        // Trait plumbing: implementations *of* the wire primitives are
        // the metering boundary, not senders themselves.
        if f.name == "send_bytes" || f.name == "next_round" || f.metered {
            continue;
        }
        let mut ordinal = 0u32;
        for (ti, t) in f.body.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let Some(open) = call_open_paren(&f.body, ti) else {
                continue;
            };
            let name = t.text.as_str();
            let is_raw = name == "send_bytes";
            let is_helper =
                helpers.contains(name) && (name != "send" || arg_count(&f.body, open) >= 2);
            if !is_raw && !is_helper {
                continue;
            }
            let line = t.line;
            let helper = if is_raw {
                let pragmas = table
                    .raw_send_pragmas
                    .get(&f.file)
                    .map_or(&[][..], Vec::as_slice);
                if raw_send_reason(pragmas, line).is_none() {
                    diags.push(Diagnostic {
                        rule: RULE,
                        severity: Severity::Error,
                        file: f.file.clone(),
                        line,
                        message: format!(
                            "raw `send_bytes` call in `{}` bypasses the metered helpers; \
                             route it through CommExt or justify it with \
                             `// ca-budget: raw-send(<reason>)`",
                            f.qualified
                        ),
                    });
                    continue;
                }
                "send_bytes".to_owned()
            } else {
                name.to_owned()
            };
            let scope = resolve_scope(table, idx, ti, &root_scopes, &reach);
            if scope.is_none() {
                diags.push(Diagnostic {
                    rule: RULE,
                    severity: Severity::Error,
                    file: f.file.clone(),
                    line,
                    message: format!(
                        "send site in `{}` is not reachable from any annotated round scope; \
                         wrap the protocol in `.scoped(\"…\", …)` or annotate the entry \
                         point with `// ca-budget: scope(<name>)`",
                        f.qualified
                    ),
                });
            }
            sites.push(SendSite {
                crate_name: f.crate_name.clone(),
                file: f.file.clone(),
                function: f.qualified.clone(),
                helper,
                scope: scope.unwrap_or_else(|| UNSCOPED.to_owned()),
                ordinal,
                line,
            });
            ordinal += 1;
        }
    }
    sites.sort();
    (diags, BudgetTable { sites })
}

/// The metered-helper name set: annotated fns, or the builtin set when
/// the workspace declares none.
fn helper_names(table: &SymbolTable) -> BTreeSet<String> {
    let annotated: BTreeSet<String> = table
        .fns
        .iter()
        .filter(|f| f.metered)
        .map(|f| f.name.clone())
        .collect();
    if annotated.is_empty() {
        BUILTIN_HELPERS.iter().map(|s| (*s).to_owned()).collect()
    } else {
        annotated
    }
}

/// Round-scope roots: fn index → scope names it establishes (from
/// literals and annotations).
fn scope_roots(table: &SymbolTable) -> BTreeMap<usize, BTreeSet<String>> {
    let mut roots: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (idx, f) in table.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for (_, name) in &f.scope_literals {
            roots.entry(idx).or_default().insert(name.clone());
        }
        if let Some(s) = &f.scope_ann {
            roots.entry(idx).or_default().insert(s.clone());
        }
    }
    roots
}

/// BFS distance from `root` to every fn (`u32::MAX` = unreachable).
fn distances_from(table: &SymbolTable, root: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; table.fns.len()];
    if root >= dist.len() {
        return dist;
    }
    dist[root] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(f) = queue.pop_front() {
        for &c in &table.calls[f] {
            if dist[c] == u32::MAX {
                dist[c] = dist[f].saturating_add(1);
                queue.push_back(c);
            }
        }
    }
    dist
}

/// Scope for the send site at body token `ti` of fn `idx`:
/// 1. nearest preceding `.scoped("…")` literal in the same body,
/// 2. the fn's own `scope(<name>)` annotation,
/// 3. the *nearest* root (by call-graph distance) that reaches this fn,
///    tie-broken lexicographically for determinism.
fn resolve_scope(
    table: &SymbolTable,
    idx: usize,
    ti: usize,
    roots: &BTreeMap<usize, BTreeSet<String>>,
    reach: &BTreeMap<usize, Vec<u32>>,
) -> Option<String> {
    let f = &table.fns[idx];
    if let Some((_, name)) = f
        .scope_literals
        .iter()
        .filter(|(pos, _)| *pos < ti)
        .max_by_key(|(pos, _)| *pos)
    {
        return Some(name.clone());
    }
    if let Some(s) = &f.scope_ann {
        return Some(s.clone());
    }
    let mut best: Option<(u32, String)> = None;
    for (root, names) in roots {
        let d = reach.get(root).map_or(u32::MAX, |dist| dist[idx]);
        if d == u32::MAX {
            continue;
        }
        for n in names {
            if best
                .as_ref()
                .is_none_or(|(bd, bn)| d < *bd || (d == *bd && n < bn))
            {
                best = Some((d, n.clone()));
            }
        }
    }
    best.map(|(_, n)| n)
}

/// Top-level argument count of the call whose paren is at `open`.
fn arg_count(body: &[crate::symbols::Tok], open: usize) -> usize {
    let close = match_close(body, open);
    if close <= open + 1 {
        return 0;
    }
    let mut depth = 0i64;
    let mut count = 1usize;
    for t in &body[open + 1..close] {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SourceFile;

    fn run_src(src: &str) -> (Vec<Diagnostic>, BudgetTable) {
        let table = SymbolTable::build(&[SourceFile {
            crate_name: "ca-core".into(),
            path: "p.rs".into(),
            src: src.into(),
        }]);
        run(
            &table,
            &SemanticConfig {
                taint_crates: vec![],
                budget_crates: vec!["ca-core".into()],
                lock_crates: vec![],
            },
        )
    }

    #[test]
    fn scoped_helper_send_is_recorded_clean() {
        let (diags, budget) =
            run_src("fn pi(ctx: &mut C) { ctx.scoped(\"pi_n\", |ctx| { ctx.send_all(m); }) }");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(budget.sites.len(), 1);
        assert_eq!(budget.sites[0].scope, "pi_n");
        assert_eq!(budget.sites[0].helper, "send_all");
    }

    #[test]
    fn raw_send_bytes_flagged() {
        let (diags, _) =
            run_src("fn pi(ctx: &mut C) { ctx.scoped(\"s\", |c| { c.send_bytes(to, b); }) }");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("raw `send_bytes`"));
    }

    #[test]
    fn raw_send_bytes_with_pragma_ok() {
        let (diags, budget) = run_src(
            "fn pi(ctx: &mut C) { ctx.scoped(\"s\", |c| {\n// ca-budget: raw-send(batched envelope)\nc.send_bytes(to, b); }) }",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(budget.sites[0].helper, "send_bytes");
    }

    #[test]
    fn unscoped_send_flagged() {
        let (diags, budget) = run_src("fn lone(ctx: &mut C) { ctx.send_all(m); }");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0]
            .message
            .contains("not reachable from any annotated round scope"));
        assert_eq!(budget.sites[0].scope, "(unscoped)");
    }

    #[test]
    fn scope_inherited_through_call_graph() {
        let (diags, budget) = run_src(
            "fn top(ctx: &mut C) { ctx.scoped(\"lba+\", |c| { body(c) }) }\nfn body(ctx: &mut C) { ctx.send(to, m); }",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(budget.sites[0].scope, "lba+");
        assert_eq!(budget.sites[0].helper, "send");
    }

    #[test]
    fn one_arg_send_is_a_channel_not_wire() {
        let (diags, budget) = run_src("fn pump(tx: &Sender<u8>) { tx.send(1); }");
        assert!(diags.is_empty(), "{diags:?}");
        assert!(budget.sites.is_empty());
    }

    #[test]
    fn scope_annotation_used_when_pushed_via_const() {
        let (diags, budget) = run_src(
            "// ca-budget: scope(engine)\nfn run(ctx: &mut C) { ctx.push_scope(NAME); ctx.send_all(m); }",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(budget.sites[0].scope, "engine");
    }

    #[test]
    fn json_round_trips() {
        let (_, budget) = run_src(
            "fn pi(ctx: &mut C) { ctx.scoped(\"pi_n\", |c| { c.send_all(a); c.send(to, b); }) }",
        );
        let parsed = BudgetTable::from_json(&budget.to_json());
        assert_eq!(parsed.sites, budget.sites);
        assert!(budget.diff_against(&parsed).is_empty());
    }

    #[test]
    fn baseline_drift_both_directions() {
        let (_, old) = run_src("fn pi(ctx: &mut C) { ctx.scoped(\"a\", |c| { c.send_all(m); }) }");
        let (_, new) = run_src(
            "fn pi(ctx: &mut C) { ctx.scoped(\"a\", |c| { c.send_all(m); c.send_all(n); }) }",
        );
        let added = new.diff_against(&old);
        assert_eq!(added.len(), 1);
        assert!(added[0].message.contains("not in analyzer-baseline.json"));
        let removed = old.diff_against(&new);
        assert_eq!(removed.len(), 1);
        assert!(removed[0].message.contains("vanished"));
    }

    #[test]
    fn annotated_helpers_replace_builtins() {
        let table = SymbolTable::build(&[SourceFile {
            crate_name: "ca-core".into(),
            path: "p.rs".into(),
            src: "// ca-budget: metered\nfn blast(ctx: &mut C) { }\nfn pi(ctx: &mut C) { ctx.scoped(\"s\", |c| { blast(c); c.send_all(m); }) }".into(),
        }]);
        let (_, budget) = run(
            &table,
            &SemanticConfig {
                taint_crates: vec![],
                budget_crates: vec!["ca-core".into()],
                lock_crates: vec![],
            },
        );
        // With `blast` annotated, the builtin set is replaced: only the
        // blast call counts as a send site.
        assert_eq!(budget.sites.len(), 1, "{:?}", budget.sites);
        assert_eq!(budget.sites[0].helper, "blast");
    }
}
