//! The `concurrency-discipline` pass: lock-order and lock-vs-channel
//! hygiene for the runtime crates.
//!
//! Three checks, all shaped after the PR 5 shed/disconnect deadlocks:
//!
//! 1. **Lock-order inversion** — if one code path acquires `a` then
//!    `b` while another acquires `b` then `a` (directly or through a
//!    call), the pair is flagged at both sites. Lock identity is the
//!    dotted receiver path (minus `self.`) qualified by crate, which is
//!    exactly as precise as a token-level analysis can be and has no
//!    false negatives for the `self.field.lock()` style the runtime
//!    uses.
//! 2. **Double acquisition** — re-acquiring a lock already held by the
//!    same path self-deadlocks with `std::sync` primitives (including
//!    the `m.lock().x + m.lock().y` temporary-lifetime trap).
//! 3. **Channel ops under a lock** — `send`/`try_send`/`recv` on a
//!    channel while holding a guard couples lock hold time to channel
//!    backpressure; with bounded channels that is a deadlock waiting
//!    for a slow consumer.
//!
//! Guard lifetimes are tracked through `let` bindings (dead at `drop`
//! or when their block closes); guards on temporaries die at the end of
//! the statement.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::pattern_names;
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::passes::SemanticConfig;
use crate::symbols::{call_open_paren, match_close, FnInfo, SymbolTable, Tok};

/// Rule name, as shown in diagnostics and accepted by pragmas.
pub const RULE: &str = "concurrency-discipline";

/// Zero-argument methods that acquire a lock.
const ACQUIRERS: &[&str] = &["lock", "read", "write"];

/// Channel operations that must not run under a lock. `send` is only
/// counted with exactly one argument (two-argument `send` is the Comm
/// wire helper, audited by `comm-budget`).
const CHANNEL_OPS: &[&str] = &[
    "send",
    "try_send",
    "blocking_send",
    "recv",
    "try_recv",
    "blocking_recv",
];

/// Lock identity: (crate, dotted receiver path). Dynamic receivers
/// (indexing, call results) get an empty path and are excluded from
/// order/double checks but still count as "a lock is held".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LockId {
    crate_name: String,
    path: String,
}

impl LockId {
    fn named(&self) -> bool {
        !self.path.is_empty()
    }
    fn display(&self) -> String {
        format!("{}::{}", self.crate_name, self.path)
    }
}

#[derive(Debug)]
struct Guard {
    lock: LockId,
    var: Option<String>,
    /// Brace depth at binding; the guard dies when depth drops below.
    depth: i64,
    /// Temporary (no binding): dies at the next `;`.
    temp: bool,
}

/// An ordered acquisition: `first` held while `second` is acquired.
#[derive(Debug)]
struct PairSite {
    first: LockId,
    second: LockId,
    file: String,
    line: u32,
    function: String,
}

/// Runs the pass.
#[must_use]
pub fn run(table: &SymbolTable, config: &SemanticConfig) -> Vec<Diagnostic> {
    let in_scope = |f: &FnInfo| !f.is_test && config.lock_crates.contains(&f.crate_name);
    // Transitive lock sets: which locks each fn may acquire, directly
    // or through calls (fixpoint over the call graph).
    let direct: Vec<BTreeSet<LockId>> = table
        .fns
        .iter()
        .map(|f| {
            if in_scope(f) {
                direct_locks(f)
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    let mut trans = direct.clone();
    for _ in 0..12 {
        let mut changed = false;
        for idx in 0..table.fns.len() {
            for &callee in &table.calls[idx] {
                let add: Vec<LockId> = trans[callee]
                    .iter()
                    .filter(|l| !trans[idx].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[idx].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut diags = Vec::new();
    let mut pairs: Vec<PairSite> = Vec::new();
    for (idx, f) in table.fns.iter().enumerate() {
        if in_scope(f) {
            walk_fn(table, idx, &trans, &mut pairs, &mut diags);
        }
    }

    // Global inversion check across all recorded orderings.
    let mut by_pair: BTreeMap<(LockId, LockId), Vec<usize>> = BTreeMap::new();
    for (i, p) in pairs.iter().enumerate() {
        by_pair
            .entry((p.first.clone(), p.second.clone()))
            .or_default()
            .push(i);
    }
    let mut reported: BTreeSet<(LockId, LockId)> = BTreeSet::new();
    for ((a, b), fwd) in &by_pair {
        if a >= b || reported.contains(&(a.clone(), b.clone())) {
            continue;
        }
        let Some(rev) = by_pair.get(&(b.clone(), a.clone())) else {
            continue;
        };
        reported.insert((a.clone(), b.clone()));
        let f = &pairs[fwd[0]];
        let r = &pairs[rev[0]];
        diags.push(Diagnostic {
            rule: RULE,
            severity: Severity::Error,
            file: f.file.clone(),
            line: f.line,
            message: format!(
                "lock-order inversion: `{}` is acquired before `{}` here (in `{}`), but the \
                 opposite order occurs at {}:{} (in `{}`)",
                f.first.display(),
                f.second.display(),
                f.function,
                r.file,
                r.line,
                r.function
            ),
        });
        diags.push(Diagnostic {
            rule: RULE,
            severity: Severity::Error,
            file: r.file.clone(),
            line: r.line,
            message: format!(
                "lock-order inversion: `{}` is acquired before `{}` here (in `{}`), but the \
                 opposite order occurs at {}:{} (in `{}`)",
                r.first.display(),
                r.second.display(),
                r.function,
                f.file,
                f.line,
                f.function
            ),
        });
    }
    diags
}

/// Locks a function acquires directly (for the transitive sets).
fn direct_locks(f: &FnInfo) -> BTreeSet<LockId> {
    let mut out = BTreeSet::new();
    for i in 0..f.body.len() {
        if let Some(lock) = acquisition_at(f, i) {
            if lock.named() {
                out.insert(lock);
            }
        }
    }
    out
}

/// If body token `i` is a lock acquisition (`.lock()` / `.read()` /
/// `.write()` with no arguments), returns the lock identity.
fn acquisition_at(f: &FnInfo, i: usize) -> Option<LockId> {
    let t = &f.body[i];
    if t.kind != TokenKind::Ident || !ACQUIRERS.contains(&t.text.as_str()) {
        return None;
    }
    // Must be a method call: preceded by `.`.
    if i == 0 || f.body[i - 1].text != "." {
        return None;
    }
    let open = call_open_paren(&f.body, i)?;
    if match_close(&f.body, open) != open + 1 {
        return None; // has arguments: io read/write, not a lock
    }
    Some(LockId {
        crate_name: f.crate_name.clone(),
        path: receiver_path(&f.body, i - 1),
    })
}

/// Dotted receiver path ending at the `.` before the method name,
/// e.g. `self.peers.inner.lock()` → `peers.inner`. Empty when the
/// receiver is not a plain path (indexing, call result).
fn receiver_path(body: &[Tok], dot: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot; // points at `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &body[j - 1];
        if prev.kind == TokenKind::Ident {
            parts.push(&prev.text);
            if j >= 2 && body[j - 2].text == "." {
                j -= 2;
                continue;
            }
        } else if matches!(prev.text.as_str(), ")" | "]") {
            return String::new(); // dynamic receiver
        }
        break;
    }
    parts.reverse();
    if parts.first() == Some(&"self") {
        parts.remove(0);
    }
    parts.join(".")
}

/// Walks one function, tracking held guards; records ordered pairs,
/// double acquisitions, channel ops under locks, and call-through
/// acquisitions via the transitive sets.
fn walk_fn(
    table: &SymbolTable,
    idx: usize,
    trans: &[BTreeSet<LockId>],
    pairs: &mut Vec<PairSite>,
    diags: &mut Vec<Diagnostic>,
) {
    let f = &table.fns[idx];
    let body = &f.body;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                stmt_start = i + 1;
            }
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
            }
            ";" => {
                guards.retain(|g| !g.temp);
                stmt_start = i + 1;
            }
            _ => {}
        }
        if t.kind == TokenKind::Ident {
            // `drop(g)` / `mem::drop(g)` releases a named guard.
            if t.text == "drop" {
                if let Some(open) = call_open_paren(body, i) {
                    let close = match_close(body, open);
                    if close == open + 2 && body[open + 1].kind == TokenKind::Ident {
                        let var = &body[open + 1].text;
                        guards.retain(|g| g.var.as_ref() != Some(var));
                        i = close + 1;
                        continue;
                    }
                }
            }
            if let Some(lock) = acquisition_at(f, i) {
                if lock.named() {
                    for held in &guards {
                        if !held.lock.named() {
                            continue;
                        }
                        if held.lock == lock {
                            diags.push(Diagnostic {
                                rule: RULE,
                                severity: Severity::Error,
                                file: f.file.clone(),
                                line: t.line,
                                message: format!(
                                    "lock `{}` acquired in `{}` while already held — \
                                     self-deadlock with std::sync primitives",
                                    lock.display(),
                                    f.qualified
                                ),
                            });
                        } else {
                            pairs.push(PairSite {
                                first: held.lock.clone(),
                                second: lock.clone(),
                                file: f.file.clone(),
                                line: t.line,
                                function: f.qualified.clone(),
                            });
                        }
                    }
                }
                let var = binding_var(body, stmt_start, i);
                guards.push(Guard {
                    lock,
                    temp: var.is_none(),
                    var,
                    depth,
                });
                i += 1;
                continue;
            }
            // Channel op while a guard is live?
            if CHANNEL_OPS.contains(&t.text.as_str())
                && i > 0
                && body[i - 1].text == "."
                && !guards.is_empty()
            {
                if let Some(open) = call_open_paren(body, i) {
                    let args = count_args(body, open);
                    let is_channel = if t.text == "send" { args == 1 } else { true };
                    if is_channel {
                        let held = guards
                            .iter()
                            .map(|g| g.lock.display())
                            .collect::<Vec<_>>()
                            .join(", ");
                        diags.push(Diagnostic {
                            rule: RULE,
                            severity: Severity::Error,
                            file: f.file.clone(),
                            line: t.line,
                            message: format!(
                                "channel `{}` in `{}` while holding lock(s) {held}; release \
                                 the guard before touching a (bounded) channel",
                                t.text, f.qualified
                            ),
                        });
                    }
                }
            }
            // A call made while holding guards: everything the callee
            // may lock orders after the held locks.
            if let Some(open) = call_open_paren(body, i) {
                if !guards.is_empty() && !ACQUIRERS.contains(&t.text.as_str()) {
                    for callee in resolved(table, idx, &t.text) {
                        for m in &trans[callee] {
                            for held in &guards {
                                if !held.lock.named() {
                                    continue;
                                }
                                if held.lock == *m {
                                    diags.push(Diagnostic {
                                        rule: RULE,
                                        severity: Severity::Error,
                                        file: f.file.clone(),
                                        line: t.line,
                                        message: format!(
                                            "call to `{}` in `{}` may re-acquire held lock \
                                             `{}` — self-deadlock with std::sync primitives",
                                            table.fns[callee].qualified,
                                            f.qualified,
                                            m.display()
                                        ),
                                    });
                                } else {
                                    pairs.push(PairSite {
                                        first: held.lock.clone(),
                                        second: m.clone(),
                                        file: f.file.clone(),
                                        line: t.line,
                                        function: f.qualified.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
                let _ = open;
            }
        }
        i += 1;
    }
}

/// Callees of `caller` with the given name. Reuses the call-graph
/// edges so resolution policy (same-crate preference) stays in one
/// place.
fn resolved(table: &SymbolTable, caller: usize, name: &str) -> Vec<usize> {
    table.calls[caller]
        .iter()
        .copied()
        .filter(|&c| table.fns[c].name == name)
        .collect()
}

/// If the statement beginning at `stmt_start` is a `let` binding whose
/// initializer contains the acquisition at `acq`, returns the bound
/// variable.
fn binding_var(body: &[Tok], stmt_start: usize, acq: usize) -> Option<String> {
    let mut s = stmt_start.min(body.len());
    // Allow `if let` / `while let` / `else` prefixes.
    while s < acq {
        match body[s].text.as_str() {
            "if" | "while" | "else" => s += 1,
            _ => break,
        }
    }
    if body.get(s).is_none_or(|t| t.text != "let") {
        return None;
    }
    let mut eq = s + 1;
    let mut d = 0i64;
    while eq < acq {
        match body[eq].text.as_str() {
            "(" | "[" | "<" => d += 1,
            ")" | "]" | ">" => d -= 1,
            "=" if d == 0 => break,
            _ => {}
        }
        eq += 1;
    }
    if eq >= acq {
        return None;
    }
    pattern_names(&body[s + 1..eq]).into_iter().next()
}

/// Top-level argument count of the call at `open`.
fn count_args(body: &[Tok], open: usize) -> usize {
    let close = match_close(body, open);
    if close <= open + 1 {
        return 0;
    }
    let mut depth = 0i64;
    let mut count = 1usize;
    for t in &body[open + 1..close] {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SourceFile;

    fn run_src(src: &str) -> Vec<Diagnostic> {
        let table = SymbolTable::build(&[SourceFile {
            crate_name: "ca-runtime".into(),
            path: "r.rs".into(),
            src: src.into(),
        }]);
        run(
            &table,
            &SemanticConfig {
                taint_crates: vec![],
                budget_crates: vec![],
                lock_crates: vec!["ca-runtime".into()],
            },
        )
    }

    #[test]
    fn inversion_across_functions_flagged() {
        let d = run_src(
            "fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("lock-order inversion"));
    }

    #[test]
    fn consistent_order_clean() {
        let d = run_src(
            "fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.x.lock(); let h = self.y.lock(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn channel_send_under_lock_flagged() {
        let d = run_src("fn a(&self) { let g = self.state.lock(); self.tx.send(msg); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("channel `send`"));
    }

    #[test]
    fn send_after_drop_clean() {
        let d = run_src("fn a(&self) { let g = self.state.lock(); drop(g); self.tx.send(msg); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_dies_with_block() {
        let d = run_src("fn a(&self) { { let g = self.state.lock(); } self.tx.send(msg); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn double_acquisition_flagged() {
        let d = run_src("fn a(&self) { let g = self.m.lock(); let h = self.m.lock(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("already held"));
    }

    #[test]
    fn temporary_guard_trap_flagged() {
        // Both temporaries live to the end of the statement.
        let d = run_src("fn a(&self) { let s = self.m.lock().x + self.m.lock().y; }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let d = run_src("fn a(&self) { self.m.lock().x; self.tx.send(y); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn transitive_inversion_through_call() {
        let d = run_src(
            "fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
             fn inner(&self) { let g = self.b.lock(); }\n\
             fn other(&self) { let g = self.b.lock(); let h = self.a.lock(); }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let d = run_src("fn a(&self, f: &mut F) { f.read(buf); self.tx.send(x); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn two_arg_send_is_wire_not_channel() {
        let d = run_src("fn a(&self, ctx: &mut C) { let g = self.m.lock(); ctx.send(to, msg); }");
        assert!(d.is_empty(), "{d:?}");
    }
}
