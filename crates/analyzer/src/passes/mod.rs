//! Semantic passes: workspace-level analyses built on the symbol table
//! and dataflow engine, as opposed to the per-file token rules in
//! [`crate::rules`].
//!
//! | pass | what it enforces |
//! |---|---|
//! | `wire-taint` | attacker-controlled wire input must be decoded or validated before sizing allocations or indexing |
//! | `comm-budget` | every transitive send site routes through a metered helper, is reachable from an annotated round scope, and matches the committed baseline |
//! | `concurrency-discipline` | consistent lock ordering, no double acquisition, no channel ops while holding a lock |

pub mod comm_budget;
pub mod concurrency;
pub mod wire_taint;

use crate::diagnostics::Diagnostic;
use crate::symbols::{SourceFile, SymbolTable};

pub use comm_budget::{BudgetTable, SendSite};

/// Which crates each semantic pass applies to. The production policy is
/// [`SemanticConfig::production`]; fixtures and the self-hosting test
/// override the lists.
#[derive(Debug, Clone)]
pub struct SemanticConfig {
    /// Crates whose code must respect the wire-taint discipline.
    pub taint_crates: Vec<String>,
    /// Crates whose send sites are budget-audited.
    pub budget_crates: Vec<String>,
    /// Crates whose lock usage is checked.
    pub lock_crates: Vec<String>,
}

impl SemanticConfig {
    /// The policy for this workspace: protocol + runtime crates.
    #[must_use]
    pub fn production() -> Self {
        let v = |names: &[&str]| names.iter().map(|s| (*s).to_owned()).collect();
        SemanticConfig {
            taint_crates: v(&["ca-core", "ca-ba", "ca-net", "ca-runtime", "ca-engine"]),
            budget_crates: v(&["ca-core", "ca-ba", "ca-engine"]),
            lock_crates: v(&["ca-runtime", "ca-engine", "ca-trace"]),
        }
    }

    /// A policy that points every pass at the given crates (used by the
    /// self-hosting test).
    #[must_use]
    pub fn uniform(crates: &[&str]) -> Self {
        let v: Vec<String> = crates.iter().map(|s| (*s).to_owned()).collect();
        SemanticConfig {
            taint_crates: v.clone(),
            budget_crates: v.clone(),
            lock_crates: v,
        }
    }
}

/// Result of a deep run: diagnostics plus the send-site budget table
/// (diffed against the committed baseline by the CLI).
#[derive(Debug)]
pub struct SemanticOutput {
    /// Findings from all three passes, suppression-filtered and sorted.
    pub diags: Vec<Diagnostic>,
    /// The static send-site table.
    pub budget: BudgetTable,
}

/// Runs all semantic passes over `files`.
#[must_use]
pub fn run_semantic(files: &[SourceFile], config: &SemanticConfig) -> SemanticOutput {
    let table = SymbolTable::build(files);
    let mut diags = Vec::new();
    diags.extend(wire_taint::run(&table, config));
    let (budget_diags, budget) = comm_budget::run(&table, config);
    diags.extend(budget_diags);
    diags.extend(concurrency::run(&table, config));
    diags.retain(|d| {
        !table
            .suppressions
            .get(&d.file)
            .is_some_and(|s| s.allows(d.rule, d.line))
    });
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    SemanticOutput { diags, budget }
}
