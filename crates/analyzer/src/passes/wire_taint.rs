//! The `wire-taint` pass: a thin policy wrapper over
//! [`crate::dataflow::analyze_taint`].
//!
//! Findings fire only in the configured crates and never in test code;
//! summaries are still computed workspace-wide so taint tracks across
//! crate boundaries (e.g. `ca-core` consuming an `Inbox` from `ca-net`).

use crate::dataflow::analyze_taint;
use crate::diagnostics::{Diagnostic, Severity};
use crate::passes::SemanticConfig;
use crate::symbols::SymbolTable;

/// Rule name, as shown in diagnostics and accepted by pragmas.
pub const RULE: &str = "wire-taint";

/// Runs the pass.
#[must_use]
pub fn run(table: &SymbolTable, config: &SemanticConfig) -> Vec<Diagnostic> {
    let findings = analyze_taint(table, &|f| {
        !f.is_test && config.taint_crates.contains(&f.crate_name)
    });
    findings
        .into_iter()
        .map(|f| Diagnostic {
            rule: RULE,
            severity: Severity::Error,
            file: f.file,
            line: f.line,
            message: f.message,
        })
        .collect()
}
