//! Interprocedural taint dataflow over the workspace symbol table.
//!
//! Taint models *attacker-controlled wire input*: anything read off a
//! `Comm` receive path or decoded from raw frame bytes is tainted until
//! it passes through a bounds-checked `ca-codec` decode or an explicit
//! validation. A tainted value reaching an allocation size, a slice
//! index, or a length computation is exactly the byzantine-input shape
//! that lets a malicious party drive memory use or panics, so those are
//! the sinks.
//!
//! The engine is deliberately a *token-level abstract interpretation*,
//! not a full type checker:
//!
//! - Each function gets a summary (`returns wire taint`, `param i flows
//!   to return`, `param i flows to a sink`) computed to a fixpoint.
//! - Within a body, taint is a per-variable bitmask — bit 0 is wire
//!   taint, bits 1.. are the function's own parameters — propagated
//!   through `let` / `for … in` / `if let` / `while let` bindings
//!   (including inside closures and nested blocks) and postfix call
//!   chains. A sanitizer call resets the chain
//!   (`inbox.decode_each::<M>()` is clean even though `inbox` is
//!   tainted), and a sanitizer taking a bare variable as argument
//!   cleanses that variable (the `validate_frame_len(len)?` pattern).
//! - Known approximations: variable scoping is flat per function, a
//!   block's value is the union of everything inside it (so `match`
//!   propagates taint without per-arm precision), and a function whose
//!   trailing expression is a control-flow block is not credited with
//!   returning taint. These trade corner-case recall for precision and
//!   are pinned down by the fixtures.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::symbols::{call_open_paren, match_close, FnInfo, SymbolTable, Tok};

/// Calls whose *result* is attacker-controlled wire data.
pub const TAINT_SOURCES: &[&str] = &[
    "next_round",
    "exchange",
    "raw_from",
    "from_be_bytes",
    "from_le_bytes",
    "from_ne_bytes",
    "get_varint",
];

/// Calls whose result is safe: bounds-checked decodes, explicit
/// validation, and clamping/length operations.
pub const TAINT_SANITIZERS: &[&str] = &[
    "decode_from_slice",
    "decode_from",
    "decode_each",
    "decode_all",
    "validate_frame_len",
    "validate_hello_len",
    "min",
    "clamp",
    "len",
    "party_count",
    "senders",
    "get_raw",
    "get_bytes",
    "get_u8",
    "is_empty",
    "remaining",
];

/// Calls whose first argument is a size/length sink.
pub const TAINT_SINKS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

const WIRE: u64 = 1;
const MAX_PARAMS: usize = 62;
const MAX_WALK_DEPTH: usize = 64;
const MAX_FIXPOINT_ITERS: usize = 12;

/// Per-function dataflow summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Function returns wire-tainted data unconditionally.
    pub returns_wire: bool,
    /// `param_to_return[i]`: taint on param `i` flows to the return.
    pub param_to_return: Vec<bool>,
    /// `param_to_sink[i]`: taint on param `i` reaches a sink inside.
    pub param_to_sink: Vec<bool>,
}

/// One taint violation, pass-agnostic (the pass wraps it in a rule).
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// File of the sink.
    pub file: String,
    /// 1-indexed line of the sink.
    pub line: u32,
    /// Explanation including the flow.
    pub message: String,
}

/// Runs the interprocedural taint analysis. Summaries are computed for
/// every function in `table`; findings are emitted only for functions
/// accepted by `emit_for` (callers filter to the crates under policy
/// and skip test code).
#[must_use]
pub fn analyze_taint(table: &SymbolTable, emit_for: &dyn Fn(&FnInfo) -> bool) -> Vec<TaintFinding> {
    let mut summaries: Vec<FnSummary> = table
        .fns
        .iter()
        .map(|f| FnSummary {
            returns_wire: false,
            param_to_return: vec![false; f.params.len()],
            param_to_sink: vec![false; f.params.len()],
        })
        .collect();
    for _ in 0..MAX_FIXPOINT_ITERS {
        let mut changed = false;
        for idx in 0..table.fns.len() {
            let mut walker = BodyWalker::new(table, &summaries, idx, false);
            walker.run();
            let next = walker.into_summary();
            if next != summaries[idx] {
                summaries[idx] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut findings = Vec::new();
    for (idx, f) in table.fns.iter().enumerate() {
        if !emit_for(f) {
            continue;
        }
        let mut walker = BodyWalker::new(table, &summaries, idx, true);
        walker.run();
        findings.extend(walker.findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    findings
}

/// Words that bind nothing in a `let`/`for` pattern.
const PATTERN_NOISE: &[&str] = &["mut", "ref", "box", "_"];

struct BodyWalker<'a> {
    table: &'a SymbolTable,
    summaries: &'a [FnSummary],
    fn_idx: usize,
    emit: bool,
    env: BTreeMap<String, u64>,
    ret_mask: u64,
    param_sink: u64,
    findings: Vec<TaintFinding>,
}

impl<'a> BodyWalker<'a> {
    fn new(table: &'a SymbolTable, summaries: &'a [FnSummary], fn_idx: usize, emit: bool) -> Self {
        let f = &table.fns[fn_idx];
        let mut env = BTreeMap::new();
        for (i, p) in f.params.iter().enumerate().take(MAX_PARAMS) {
            env.insert(p.clone(), 1u64 << (i + 1));
        }
        BodyWalker {
            table,
            summaries,
            fn_idx,
            emit,
            env,
            ret_mask: 0,
            param_sink: 0,
            findings: Vec::new(),
        }
    }

    fn body(&self) -> &'a [Tok] {
        &self.table.fns[self.fn_idx].body
    }

    fn into_summary(self) -> FnSummary {
        let f = &self.table.fns[self.fn_idx];
        FnSummary {
            returns_wire: self.ret_mask & WIRE != 0,
            param_to_return: (0..f.params.len())
                .map(|i| i < MAX_PARAMS && self.ret_mask & (1u64 << (i + 1)) != 0)
                .collect(),
            param_to_sink: (0..f.params.len())
                .map(|i| i < MAX_PARAMS && self.param_sink & (1u64 << (i + 1)) != 0)
                .collect(),
        }
    }

    fn run(&mut self) {
        let body = self.body();
        if body.len() < 2 {
            return;
        }
        // Strip the outer braces so top-level statements sit at depth 0.
        let (lo, hi) = if body[0].text == "{" && body[body.len() - 1].text == "}" {
            (1, body.len() - 1)
        } else {
            (0, body.len())
        };
        self.walk(lo, hi, 0);
        // Trailing expression: credit its taint to the return, unless it
        // is a control-flow block (documented precision trade-off).
        if let Some((tlo, thi)) = trailing_expr(body, lo, hi) {
            let first = &body[tlo];
            let control = matches!(
                first.text.as_str(),
                "if" | "match" | "for" | "while" | "loop"
            );
            if !(first.kind == TokenKind::Ident && control) {
                // Env is already populated; sink findings are deduped.
                let m = self.walk(tlo, thi, 0);
                self.ret_mask |= m;
            }
        }
    }

    /// Walks `body[lo..hi]` as a statement-and-expression soup: handles
    /// `let`/`for`/`if let`/`while let`/`return` bindings, evaluates
    /// postfix chains, emits sink findings, and returns the union taint
    /// mask of the range (over-approximate block value).
    fn walk(&mut self, lo: usize, hi: usize, depth: usize) -> u64 {
        if depth > MAX_WALK_DEPTH {
            return 0;
        }
        let hi = hi.min(self.body().len());
        let mut acc = 0u64;
        let mut chain = 0u64;
        let mut i = lo;
        while i < hi {
            let t = &self.body()[i];
            match t.kind {
                TokenKind::Ident => match t.text.as_str() {
                    "let" => {
                        acc |= chain;
                        chain = 0;
                        let (mask, next) = self.handle_let(i, hi, depth);
                        acc |= mask;
                        i = next;
                        continue;
                    }
                    "for" => {
                        acc |= chain;
                        chain = 0;
                        i = self.handle_for(i, hi, depth);
                        continue;
                    }
                    "if" | "while" if self.peek_is(i + 1, "let") => {
                        acc |= chain;
                        chain = 0;
                        let (mask, next) = self.handle_let(i + 1, hi, depth);
                        acc |= mask;
                        i = next;
                        continue;
                    }
                    "return" => {
                        acc |= chain;
                        chain = 0;
                        let end = scan_to_semi(self.body(), i + 1, hi);
                        let m = self.walk(i + 1, end, depth + 1);
                        self.ret_mask |= m;
                        i = end + 1;
                        continue;
                    }
                    _ => {
                        if t.text == "vec" && self.peek_is(i + 1, "!") && self.peek_is(i + 2, "[") {
                            i = self.handle_vec_macro(i + 2, depth);
                            continue;
                        }
                        if let Some(open) = call_open_paren(self.body(), i) {
                            let close = match_close(self.body(), open);
                            chain = self.eval_call(i, open, close, chain, depth);
                            i = close + 1;
                            continue;
                        }
                        if let Some(&m) = self.env.get(&t.text) {
                            chain |= m;
                        }
                    }
                },
                TokenKind::Punct => match t.text.as_str() {
                    "." | "?" => {}
                    "(" | "{" => {
                        let close = match_close(self.body(), i);
                        let inner = self.walk(i + 1, close, depth + 1);
                        if t.text == "(" {
                            chain |= inner;
                        } else {
                            // Block value: union of contents.
                            acc |= chain;
                            chain = inner;
                        }
                        i = close + 1;
                        continue;
                    }
                    "[" => {
                        let postfix = i > lo
                            && (matches!(
                                self.body()[i - 1].kind,
                                TokenKind::Ident | TokenKind::Number
                            ) || matches!(self.body()[i - 1].text.as_str(), ")" | "]"));
                        let close = match_close(self.body(), i);
                        let inner = self.walk(i + 1, close, depth + 1);
                        if postfix {
                            self.sink(inner, self.body()[i].line, "slice index");
                        } else {
                            acc |= chain;
                            chain = inner;
                        }
                        i = close + 1;
                        continue;
                    }
                    _ => {
                        acc |= chain;
                        chain = 0;
                    }
                },
                _ => {
                    acc |= chain;
                    chain = 0;
                }
            }
            i += 1;
        }
        acc | chain
    }

    fn peek_is(&self, i: usize, text: &str) -> bool {
        self.body().get(i).is_some_and(|t| t.text == text)
    }

    /// `let PAT = EXPR ;` (also reached from `if let` / `while let`).
    /// Returns `(mask of the initializer, index to resume from)`.
    fn handle_let(&mut self, let_idx: usize, hi: usize, depth: usize) -> (u64, usize) {
        let body = self.body();
        let Some(eq) = find_eq(body, let_idx + 1, hi) else {
            return (0, let_idx + 1);
        };
        let names = pattern_names(&body[let_idx + 1..eq]);
        let end = init_expr_end(body, eq + 1, hi);
        let mask = self.walk(eq + 1, end, depth + 1);
        for n in names {
            *self.env.entry(n).or_insert(0) |= mask;
        }
        (mask, end)
    }

    /// `for PAT in EXPR {` — the pattern binds element taint of EXPR.
    /// Returns the index of the loop-body `{` (the walk loop then
    /// descends into it).
    fn handle_for(&mut self, for_idx: usize, hi: usize, depth: usize) -> usize {
        let body = self.body();
        let mut j = for_idx + 1;
        let mut d = 0i64;
        while j < hi {
            match body[j].text.as_str() {
                "(" | "[" => d += 1,
                ")" | "]" => d -= 1,
                "in" if d == 0 && body[j].kind == TokenKind::Ident => break,
                "{" | ";" => return for_idx + 1,
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return for_idx + 1;
        }
        let names = pattern_names(&body[for_idx + 1..j]);
        let end = init_expr_end(body, j + 1, hi);
        let mask = self.walk(j + 1, end, depth + 1);
        for n in names {
            *self.env.entry(n).or_insert(0) |= mask;
        }
        end
    }

    /// A call `name(args)` / `name::<T>(args)` at `name_idx`; returns
    /// the new chain mask.
    fn eval_call(
        &mut self,
        name_idx: usize,
        open: usize,
        close: usize,
        chain: u64,
        depth: usize,
    ) -> u64 {
        let name = self.body()[name_idx].text.clone();
        let line = self.body()[name_idx].line;
        let args = split_args(self.body(), open, close);
        let arg_masks: Vec<u64> = args
            .iter()
            .map(|&(alo, ahi)| self.walk(alo, ahi, depth + 1))
            .collect();
        if TAINT_SANITIZERS.contains(&name.as_str()) {
            // A sanitizer cleanses a bare variable it validates, so the
            // `validate_frame_len(len)?; vec![0u8; len]` pattern passes.
            for &(alo, ahi) in &args {
                if ahi == alo + 1 && self.body()[alo].kind == TokenKind::Ident {
                    let var = self.body()[alo].text.clone();
                    self.env.remove(&var);
                }
            }
            return 0;
        }
        if TAINT_SOURCES.contains(&name.as_str()) {
            return chain | WIRE;
        }
        if TAINT_SINKS.contains(&name.as_str()) {
            if let Some(&m) = arg_masks.first() {
                self.sink(m, line, &format!("`{name}` size argument"));
            }
            return 0;
        }
        // Workspace functions: use summaries; unknown calls propagate
        // the union of receiver and argument taint.
        let candidates = self.table.fns_named(&name);
        if candidates.is_empty() {
            return chain | arg_masks.iter().fold(0, |a, &m| a | m);
        }
        let mut result = 0u64;
        for &c in candidates {
            let s = &self.summaries[c];
            if s.returns_wire {
                result |= WIRE;
            }
            for (i, &m) in arg_masks.iter().enumerate() {
                if s.param_to_return.get(i).copied().unwrap_or(false) {
                    result |= m;
                }
                if s.param_to_sink.get(i).copied().unwrap_or(false) {
                    self.sink(
                        m,
                        line,
                        &format!("argument {i} of `{name}` (reaches a sink inside it)"),
                    );
                }
            }
        }
        result
    }

    /// `vec![elem; len]` starting at the `[`; checks the repeat length.
    fn handle_vec_macro(&mut self, open: usize, depth: usize) -> usize {
        let close = match_close(self.body(), open);
        let mut semi = None;
        let mut d = 0i64;
        for j in open + 1..close {
            match self.body()[j].text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                ";" if d == 0 => {
                    semi = Some(j);
                    break;
                }
                _ => {}
            }
        }
        if let Some(s) = semi {
            self.walk(open + 1, s, depth + 1);
            let m = self.walk(s + 1, close, depth + 1);
            self.sink(m, self.body()[open].line, "`vec![…; len]` repeat length");
        } else {
            self.walk(open + 1, close, depth + 1);
        }
        close + 1
    }

    /// Records a sink hit: wire taint is a finding; parameter taint is
    /// folded into this function's summary for callers to check.
    fn sink(&mut self, mask: u64, line: u32, what: &str) {
        self.param_sink |= mask & !WIRE;
        if self.emit && mask & WIRE != 0 {
            let f = &self.table.fns[self.fn_idx];
            self.findings.push(TaintFinding {
                file: f.file.clone(),
                line,
                message: format!(
                    "wire-tainted value flows into {what} in `{}`; pass it through a \
                     bounds-checked ca-codec decode or validate/clamp it first",
                    f.qualified
                ),
            });
        }
    }
}

/// Lowercase-leading idents in a binding pattern (skips constructors
/// like `Some`, types after `:`, and pattern noise words).
pub(crate) fn pattern_names(pat: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    let mut after_colon = false;
    for t in pat {
        match t.kind {
            TokenKind::Punct => {
                if t.text == ":" {
                    after_colon = true;
                } else if matches!(t.text.as_str(), "," | "(" | ")" | "|") {
                    after_colon = false;
                }
            }
            TokenKind::Ident if !after_colon => {
                let first = t.text.chars().next().unwrap_or('_');
                if first.is_ascii_lowercase()
                    && !PATTERN_NOISE.contains(&t.text.as_str())
                    && !names.contains(&t.text)
                {
                    names.push(t.text.clone());
                }
            }
            _ => {}
        }
    }
    names
}

/// First `=` in `body[from..hi]` at bracket depth 0 that is an
/// assignment (not `==`, `<=`, `>=`, `!=`, `=>`, or a compound op).
fn find_eq(body: &[Tok], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = from;
    while j < hi.min(body.len()) {
        match body[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" | "}" | ";" => return None,
            "=" if depth == 0 => {
                let prev_ok = j == from
                    || !matches!(
                        body[j - 1].text.as_str(),
                        "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                    );
                let next_ok = body
                    .get(j + 1)
                    .is_none_or(|n| n.text != "=" && n.text != ">");
                if prev_ok && next_ok {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// End of an initializer expression starting at `from`: the first `;`
/// at full bracket depth 0, or a `{` at depth 0 that is *preceded by a
/// plain token* (the body of `if let` / `while let` / `for`). Block
/// expressions (`{`, `match x {`, closures inside parens) are crossed
/// because they either start the expression or sit at depth > 0.
fn init_expr_end(body: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j < hi.min(body.len()) {
        match body[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            "{" => {
                // `match x {` / `S {` continue the expression; a `{`
                // right after the scrutinee of `if let`/`while let`
                // also lands here — treat a first-token `{` as part of
                // the expression, otherwise stop only when the previous
                // token can END an expression (ident/literal/`)`/`]`),
                // i.e. the `{` opens a statement body.
                let struct_like = j == from
                    || matches!(body[j - 1].text.as_str(), "=" | "match" | "," | "(" | "[");
                if struct_like || depth > 0 {
                    depth += 1;
                } else {
                    return j;
                }
            }
            "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    hi.min(body.len())
}

/// Next `;` at bracket depth 0 in `body[from..hi]` (or `hi`).
fn scan_to_semi(body: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j < hi.min(body.len()) {
        match body[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    hi.min(body.len())
}

/// Trailing expression of the brace-stripped body range `[lo, hi)`:
/// everything after the last `;` or top-level block end.
fn trailing_expr(body: &[Tok], lo: usize, hi: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut start = lo;
    let mut j = lo;
    while j < hi.min(body.len()) {
        match body[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => start = j + 1,
            _ => {}
        }
        j += 1;
    }
    (start < hi && depth == 0).then_some((start, hi))
}

/// Splits the arguments of a call (`open`/`close` are the parens) at
/// top-level commas, returning half-open token ranges.
fn split_args(body: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if close <= open + 1 {
        return out;
    }
    let mut depth = 0i64;
    let mut start = open + 1;
    let hi = close.min(body.len());
    for (j, t) in body.iter().enumerate().take(hi).skip(open + 1) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{SourceFile, SymbolTable};

    fn run(src: &str) -> Vec<TaintFinding> {
        let table = SymbolTable::build(&[SourceFile {
            crate_name: "ca-core".into(),
            path: "t.rs".into(),
            src: src.into(),
        }]);
        analyze_taint(&table, &|f| !f.is_test)
    }

    #[test]
    fn tainted_with_capacity_flagged() {
        let f = run("fn go(ctx: &mut C) { let inbox = ctx.next_round(); let n = inbox.count; let v = Vec::with_capacity(n); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("with_capacity"));
    }

    #[test]
    fn decode_sanitizes() {
        let f = run("fn go(ctx: &mut C) { let inbox = ctx.next_round(); for m in inbox.decode_each::<u64>() { use_it(m); } }\nfn use_it(_m: u64) {}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn validate_statement_cleanses_variable() {
        let f = run("fn go() { let len = u32::from_be_bytes(b); validate_frame_len(len); let v = vec![0u8; len]; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unvalidated_vec_repeat_flagged() {
        let f = run("fn go() { let len = u32::from_be_bytes(b); let v = vec![0u8; len]; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("repeat length"));
    }

    #[test]
    fn interprocedural_param_to_sink() {
        let f = run("fn top(ctx: &mut C) { let inbox = ctx.next_round(); alloc(inbox.n); }\nfn alloc(n: usize) { let v = Vec::with_capacity(n); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("alloc"));
    }

    #[test]
    fn interprocedural_returned_taint() {
        let f = run("fn top() { let n = read_len(); let v = Vec::with_capacity(n); }\nfn read_len() -> usize { let x = u32::from_be_bytes(b); x }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn tainted_slice_index_flagged() {
        let f = run("fn go(buf: &[u8]) { let i = u32::from_be_bytes(b); let x = buf[i]; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("slice index"));
    }

    #[test]
    fn min_clamp_expression_sanitizes() {
        let f = run(
            "fn go() { let n = u32::from_be_bytes(b); let v = Vec::with_capacity(n.min(64)); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn clean_code_clean() {
        let f = run("fn go(n: usize) { let v = Vec::with_capacity(n); let w = vec![0u8; 16]; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn for_loop_binding_propagates() {
        let f = run("fn go(ctx: &mut C) { let inbox = ctx.next_round(); for raw in inbox.raw_from(p) { let v = Vec::with_capacity(raw.field); } }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn closure_body_bindings_tracked() {
        // The pi_n shape: the protocol body lives inside a closure
        // passed to `scoped`.
        let f = run("fn go(ctx: &mut C) { ctx.scoped(\"s\", |ctx| { let inbox = ctx.next_round(); let v = Vec::with_capacity(inbox.n); }) }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let f = run("#[cfg(test)]\nmod tests {\n fn go() { let n = u32::from_be_bytes(b); let v = Vec::with_capacity(n); }\n}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "fn a(ctx: &mut C) { let i = ctx.next_round(); s(i.n); }\nfn s(n: usize) { let v = Vec::with_capacity(n); }";
        let f1: Vec<String> = run(src).into_iter().map(|f| f.message).collect();
        let f2: Vec<String> = run(src).into_iter().map(|f| f.message).collect();
        assert_eq!(f1, f2);
        assert!(!f1.is_empty());
    }
}
