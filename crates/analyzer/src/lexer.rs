//! A hand-rolled Rust lexer: just enough fidelity for line-accurate
//! static analysis.
//!
//! The lexer understands comments (line, block, nested block, doc),
//! string-ish literals (`"…"`, `r#"…"#`, `b"…"`, `'c'`), lifetimes vs.
//! char literals, raw identifiers, and numeric literals. Everything else
//! is a one-character punctuation token. That is sufficient to make the
//! analyzer's rules immune to the classic false-positive sources: code
//! mentioned inside comments, doc examples, and string literals.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Integer or float literal, including suffixes.
    Number,
    /// String, raw string, byte string, byte, or char literal.
    Literal,
    /// `//…` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment (nesting handled).
    BlockComment,
    /// Any other single character (`{`, `(`, `!`, `#`, …).
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token<'src> {
    /// Token kind.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: &'src str,
    /// 1-indexed line on which the token starts.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is trivia (a comment).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated constructs are
/// closed at end of input, which is the right behavior for an analyzer
/// that must not panic on malformed input.
#[must_use]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    line: u32,
    out: Vec<Token<'src>>,
}

impl<'src> Lexer<'src> {
    fn run(mut self) -> Vec<Token<'src>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.consume_line_comment();
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.consume_block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'r' | b'b' if self.is_raw_string_start() => {
                    self.consume_raw_string();
                    self.push(TokenKind::Literal, start, line);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.consume_quoted(b'"');
                    self.push(TokenKind::Literal, start, line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.consume_quoted(b'\'');
                    self.push(TokenKind::Literal, start, line);
                }
                b'"' => {
                    self.consume_quoted(b'"');
                    self.push(TokenKind::Literal, start, line);
                }
                b'\'' => {
                    if self.is_lifetime() {
                        self.pos += 1;
                        self.consume_ident_body();
                        self.push(TokenKind::Lifetime, start, line);
                    } else {
                        self.consume_quoted(b'\'');
                        self.push(TokenKind::Literal, start, line);
                    }
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    // `r#ident` raw identifiers arrive here via the `r`.
                    if b == b'r' && self.peek(1) == Some(b'#') && self.ident_at(self.pos + 2) {
                        self.pos += 2;
                    }
                    self.consume_ident_body();
                    self.push(TokenKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.consume_number();
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn ident_at(&self, pos: usize) -> bool {
        self.bytes
            .get(pos)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphabetic() || b >= 0x80)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    fn consume_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn consume_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }

    /// `r"`, `r#"`, `br"`, `br#"` … (any number of `#`).
    fn is_raw_string_start(&self) -> bool {
        let mut i = self.pos;
        if self.bytes[i] == b'b' {
            i += 1;
        }
        if self.bytes.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        while self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        self.bytes.get(i) == Some(&b'"')
    }

    fn consume_raw_string(&mut self) {
        if self.bytes[self.pos] == b'b' {
            self.pos += 1;
        }
        self.pos += 1; // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let mut i = self.pos + 1;
                    let mut seen = 0usize;
                    while seen < hashes && self.bytes.get(i) == Some(&b'#') {
                        seen += 1;
                        i += 1;
                    }
                    self.pos = if seen == hashes { i } else { self.pos + 1 };
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn consume_quoted(&mut self, quote: u8) {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b == quote => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `'` starts a lifetime when followed by an identifier that is not
    /// immediately closed by another `'` (which would be a char literal
    /// like `'a'`).
    fn is_lifetime(&self) -> bool {
        if !self.ident_at(self.pos + 1) {
            return false;
        }
        let mut i = self.pos + 1;
        while self
            .bytes
            .get(i)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            i += 1;
        }
        self.bytes.get(i) != Some(&b'\'')
    }

    fn consume_ident_body(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.pos += 1;
        }
    }

    /// Numbers: digits plus `.`, `_`, exponent chars, and type suffixes.
    /// Deliberately loose — the analyzer only needs token boundaries.
    fn consume_number(&mut self) {
        while let Some(b) = self.peek(0) {
            let cont = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !cont {
                break;
            }
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap")));
        assert!(toks.contains(&(TokenKind::Punct, ";")));
    }

    #[test]
    fn comments_are_trivia_not_code() {
        let toks = lex("// x.unwrap()\nlet y = 1; /* panic!() */");
        let code_idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(code_idents, vec!["let", "y"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex("let s = \"x.unwrap()\";");
        assert!(!toks.iter().any(|t| t.text == "unwrap"));
        let toks = lex("let b = b\"panic!()\";");
        assert!(!toks.iter().any(|t| t.text == "panic"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = "let s = r#\"quote \" inside\"#; end";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.text == "end"));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'b'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'b'"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_block_comment_advances_lines() {
        let toks = lex("/* line1\nline2 */ after");
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 2);
    }

    #[test]
    fn escaped_quote_in_char() {
        let toks = lex(r"let q = '\''; let l = 1;");
        assert!(toks.iter().any(|t| t.text == "l"));
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let toks = lex("let s = \"unterminated");
        assert!(!toks.is_empty());
    }

    #[test]
    fn raw_idents() {
        let toks = lex("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "r#type"));
    }
}
