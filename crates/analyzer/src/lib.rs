//! `ca-analyzer`: protocol-soundness static analysis for the
//! convex-agreement workspace.
//!
//! The analyzer enforces invariants that `rustc` and `clippy` cannot see
//! because they are properties of *this protocol*, not of Rust:
//!
//! - **panic-path** — message-handling crates must never abort on
//!   byzantine input (no `unwrap`/`expect`/`panic!`, no slice indexing in
//!   the codec).
//! - **unbounded-alloc** — allocations sized by decoded wire lengths must
//!   be clamped, or a single forged frame defeats the paper's
//!   `O(ℓn + κ·n²·log²n)` communication bound by forcing gigabyte
//!   allocations.
//! - **nondeterminism** — protocol and simulator paths must be replayable:
//!   no `HashMap` iteration, wall clocks, or ambient randomness.
//! - **wire-cast** — no silent `as` truncation in the codec.
//! - **unsafe-audit** — a workspace-wide `unsafe` inventory, deny by
//!   default.
//!
//! Findings are suppressed with `// ca-lint: allow(<rule>)` on the same
//! or preceding line, or `//! ca-lint: allow(<rule>)` for a whole file —
//! each pragma is a reviewed, greppable exception.
//!
//! The implementation is dependency-free: a hand-rolled lexer
//! ([`lexer`]) gives token-level (not regex) matching, so code inside
//! comments, doc examples, and string literals never trips a rule.

pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diagnostics::{Diagnostic, Severity};
pub use engine::{analyze_source, analyze_workspace, Options};
pub use rules::{all_rules, rule_by_name, FileContext};
