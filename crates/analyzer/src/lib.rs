//! `ca-analyzer`: protocol-soundness static analysis for the
//! convex-agreement workspace.
//!
//! The analyzer enforces invariants that `rustc` and `clippy` cannot see
//! because they are properties of *this protocol*, not of Rust.
//!
//! Per-file token rules ([`rules`]):
//!
//! - **panic-path** — message-handling crates must never abort on
//!   byzantine input (no `unwrap`/`expect`/`panic!`, no slice indexing in
//!   the codec).
//! - **unbounded-alloc** — allocations sized by decoded wire lengths must
//!   be clamped, or a single forged frame defeats the paper's
//!   `O(ℓn + κ·n²·log²n)` communication bound by forcing gigabyte
//!   allocations.
//! - **nondeterminism** — protocol and simulator paths must be replayable:
//!   no `HashMap` iteration, wall clocks, or ambient randomness.
//! - **wire-cast** — no silent `as` truncation in the codec.
//! - **unsafe-audit** — a workspace-wide `unsafe` inventory, deny by
//!   default.
//!
//! Semantic workspace passes ([`passes`], `--deep`), built on a
//! lightweight item parser ([`parser`]), a workspace symbol table with
//! a call graph ([`symbols`]), and an interprocedural taint engine
//! ([`dataflow`]):
//!
//! - **wire-taint** — attacker-controlled wire input must pass through
//!   a bounds-checked decode or validation before sizing an allocation
//!   or indexing a slice, across function and crate boundaries.
//! - **comm-budget** — every transitive send site routes through a
//!   metered helper, is attributable to an annotated round scope, and
//!   matches the committed `analyzer-baseline.json` send-site table.
//! - **concurrency-discipline** — consistent lock ordering, no double
//!   acquisition, no channel operations while holding a lock.
//!
//! Findings are suppressed with `// ca-lint: allow(<rule>)` — a
//! *standalone* pragma (first thing on its line) covers the next line
//! only; a *trailing* pragma covers its own line only — or
//! `//! ca-lint: allow(<rule>)` for a whole file. Each pragma is a
//! reviewed, greppable exception.
//!
//! The implementation is dependency-free: a hand-rolled lexer
//! ([`lexer`]) gives token-level (not regex) matching, so code inside
//! comments, doc examples, and string literals never trips a rule.

pub mod dataflow;
pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod rules;
pub mod symbols;

pub use diagnostics::{Diagnostic, Severity};
pub use engine::{analyze_source, analyze_workspace, collect_sources, Options};
pub use passes::{run_semantic, BudgetTable, SemanticConfig, SemanticOutput, SendSite};
pub use rules::{all_rules, rule_by_name, FileContext};
pub use symbols::{SourceFile, SymbolTable};
