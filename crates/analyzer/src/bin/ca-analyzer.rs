//! CLI for the protocol-soundness analyzer.
//!
//! ```text
//! ca-analyzer [--root <path>] [--rule <name>] [--deny] [--json]
//!             [--include-shims] [--list-rules]
//!             [--deep] [--baseline <path>] [--write-baseline <path>]
//!             [--emit human|json]
//! ```
//!
//! `--deep` adds the semantic workspace passes (wire-taint,
//! comm-budget, concurrency-discipline) on top of the token rules.
//! `--baseline` diffs the send-site budget table against a committed
//! `analyzer-baseline.json`; `--write-baseline` regenerates it (use
//! `scripts/update-baseline.sh`). `--emit json` is the stable
//! machine-readable output for CI diffing (`--json` is its alias).
//!
//! Exit codes: `0` clean (or warnings without `--deny`), `1` findings
//! that fail the gate, `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use ca_analyzer::{
    all_rules, analyze_workspace, collect_sources, run_semantic, BudgetTable, Options,
    SemanticConfig, Severity,
};

struct Cli {
    root: PathBuf,
    opts: Options,
    deny: bool,
    json: bool,
    list_rules: bool,
    deep: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        opts: Options::default(),
        deny: false,
        json: false,
        list_rules: false,
        deep: false,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root requires a path".to_owned())?,
                );
            }
            "--rule" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--rule requires a name".to_owned())?;
                if ca_analyzer::rule_by_name(&name).is_none() {
                    return Err(format!("unknown rule `{name}` (try --list-rules)"));
                }
                cli.opts.only_rule = Some(name);
            }
            "--deny" => cli.deny = true,
            "--json" => cli.json = true,
            "--emit" => {
                let mode = args
                    .next()
                    .ok_or_else(|| "--emit requires `human` or `json`".to_owned())?;
                match mode.as_str() {
                    "json" => cli.json = true,
                    "human" => cli.json = false,
                    other => return Err(format!("unknown emit mode `{other}`")),
                }
            }
            "--deep" => cli.deep = true,
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--baseline requires a path".to_owned())?,
                ));
            }
            "--write-baseline" => {
                cli.write_baseline =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        "--write-baseline requires a path".to_owned()
                    })?));
            }
            "--include-shims" => cli.opts.include_shims = true,
            "--list-rules" => cli.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "usage: ca-analyzer [--root <path>] [--rule <name>] [--deny] [--json] \
                     [--include-shims] [--list-rules] [--deep] [--baseline <path>] \
                     [--write-baseline <path>] [--emit human|json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if (cli.baseline.is_some() || cli.write_baseline.is_some()) && !cli.deep {
        return Err("--baseline/--write-baseline require --deep".to_owned());
    }
    Ok(cli)
}

/// The semantic rules, shown by `--list-rules` alongside the token
/// rules (they live outside the token-rule registry).
const SEMANTIC_RULES: &[(&str, &str, &str)] = &[
    (
        "wire-taint",
        "ca-core, ca-ba, ca-net, ca-runtime, ca-engine",
        "wire input must be decoded/validated before sizing allocations or indexing",
    ),
    (
        "comm-budget",
        "ca-core, ca-ba, ca-engine",
        "send sites must use metered helpers, carry a round scope, and match analyzer-baseline.json",
    ),
    (
        "concurrency-discipline",
        "ca-runtime, ca-engine, ca-trace",
        "consistent lock order, no double acquisition, no channel ops under a lock",
    ),
];

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("ca-analyzer: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in all_rules() {
            let scope = if rule.scope.is_empty() {
                "workspace".to_owned()
            } else {
                rule.scope.join(", ")
            };
            println!(
                "{:<16} {:<8} [{}]\n    {}",
                rule.name,
                rule.severity.to_string(),
                scope,
                rule.description
            );
        }
        for (name, scope, desc) in SEMANTIC_RULES {
            println!("{name:<16} {:<8} [{scope}] (--deep)\n    {desc}", "error");
        }
        return ExitCode::SUCCESS;
    }

    let mut diags = match analyze_workspace(&cli.root, &cli.opts) {
        Ok(diags) => diags,
        Err(msg) => {
            eprintln!("ca-analyzer: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.deep {
        let files = match collect_sources(&cli.root, &cli.opts) {
            Ok(files) => files,
            Err(msg) => {
                eprintln!("ca-analyzer: {msg}");
                return ExitCode::from(2);
            }
        };
        let semantic = run_semantic(&files, &SemanticConfig::production());
        diags.extend(semantic.diags);
        if let Some(path) = &cli.write_baseline {
            if let Err(e) = std::fs::write(path, semantic.budget.to_json()) {
                eprintln!("ca-analyzer: failed to write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "ca-analyzer: wrote {} send site(s) to {}",
                semantic.budget.sites.len(),
                path.display()
            );
        }
        if let Some(path) = &cli.baseline {
            match std::fs::read_to_string(path) {
                Ok(body) => {
                    diags.extend(semantic.budget.diff_against(&BudgetTable::from_json(&body)));
                }
                Err(e) => {
                    eprintln!("ca-analyzer: failed to read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        diags.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
    }

    if cli.json {
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 == diags.len() { "" } else { "," };
            println!("  {}{comma}", d.render_json());
        }
        println!("]");
    } else {
        for d in &diags {
            println!("{}", d.render_human());
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if !cli.json {
        println!(
            "ca-analyzer: {errors} error(s), {warnings} warning(s){}",
            if cli.deny { " [--deny]" } else { "" }
        );
    }
    let failing = if cli.deny { diags.len() } else { errors };
    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
