//! CLI for the protocol-soundness analyzer.
//!
//! ```text
//! ca-analyzer [--root <path>] [--rule <name>] [--deny] [--json]
//!             [--include-shims] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (or warnings without `--deny`), `1` findings
//! that fail the gate, `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use ca_analyzer::{all_rules, analyze_workspace, Options, Severity};

struct Cli {
    root: PathBuf,
    opts: Options,
    deny: bool,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        opts: Options::default(),
        deny: false,
        json: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root requires a path".to_owned())?,
                );
            }
            "--rule" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--rule requires a name".to_owned())?;
                if ca_analyzer::rule_by_name(&name).is_none() {
                    return Err(format!("unknown rule `{name}` (try --list-rules)"));
                }
                cli.opts.only_rule = Some(name);
            }
            "--deny" => cli.deny = true,
            "--json" => cli.json = true,
            "--include-shims" => cli.opts.include_shims = true,
            "--list-rules" => cli.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "usage: ca-analyzer [--root <path>] [--rule <name>] [--deny] [--json] \
                     [--include-shims] [--list-rules]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("ca-analyzer: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in all_rules() {
            let scope = if rule.scope.is_empty() {
                "workspace".to_owned()
            } else {
                rule.scope.join(", ")
            };
            println!(
                "{:<16} {:<8} [{}]\n    {}",
                rule.name,
                rule.severity.to_string(),
                scope,
                rule.description
            );
        }
        return ExitCode::SUCCESS;
    }

    let diags = match analyze_workspace(&cli.root, &cli.opts) {
        Ok(diags) => diags,
        Err(msg) => {
            eprintln!("ca-analyzer: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.json {
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 == diags.len() { "" } else { "," };
            println!("  {}{comma}", d.render_json());
        }
        println!("]");
    } else {
        for d in &diags {
            println!("{}", d.render_human());
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if !cli.json {
        println!(
            "ca-analyzer: {errors} error(s), {warnings} warning(s){}",
            if cli.deny { " [--deny]" } else { "" }
        );
    }
    let failing = if cli.deny { diags.len() } else { errors };
    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
