//! The protocol-soundness rule set.
//!
//! Every rule is grounded in a defect class that breaks the paper's
//! guarantees (validity, agreement, `O(ℓn + κ·n²·log²n)` bits for
//! `t < n/3`) if it reaches a message-handling path:
//!
//! | rule             | defect class                                         |
//! |------------------|------------------------------------------------------|
//! | `panic-path`     | honest party aborts on byzantine input               |
//! | `unbounded-alloc`| attacker-claimed length drives allocation            |
//! | `nondeterminism` | runs are not reproducible under the simulator        |
//! | `wire-cast`      | silent truncation of decoded values                  |
//! | `unsafe-audit`   | memory-safety escape hatch in consensus code         |
//! | `trace-discipline` | ad-hoc stdout/stderr output instead of `ca-trace`  |
//! | `bounded-channels` | unbounded queue lets a flooding peer exhaust memory |

use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};

/// Context the engine hands to each rule for one file.
#[derive(Debug, Clone)]
pub struct FileContext<'a> {
    /// Package name owning the file (e.g. `ca-codec`).
    pub crate_name: &'a str,
    /// Workspace-relative path, used in diagnostics.
    pub path: &'a str,
    /// Whether the file is test/bench/example code (integration tests,
    /// benches, examples). `#[cfg(test)]` modules inside source files are
    /// masked separately by the engine.
    pub is_test_code: bool,
}

/// A named, documented analysis rule.
pub struct Rule {
    /// Stable rule name (used in pragmas and `--rule` filters).
    pub name: &'static str,
    /// Default severity of findings.
    pub severity: Severity,
    /// One-line description for `--list-rules`.
    pub description: &'static str,
    /// Crates the rule applies to; empty slice means every crate.
    pub scope: &'static [&'static str],
    /// Whether the rule also applies to test/bench/example code.
    pub check_test_code: bool,
    /// The checker: pushes diagnostics for `tokens` (comment tokens
    /// included; `masked[i] == true` marks tokens inside `#[cfg(test)]`
    /// modules).
    pub check: fn(&FileContext<'_>, &[Token<'_>], &[bool], &mut Vec<Diagnostic>),
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule").field("name", &self.name).finish()
    }
}

/// Message-handling crates: code here processes bytes an adversary chose.
const MESSAGE_CRATES: &[&str] = &["ca-codec", "ca-core", "ca-ba", "ca-net"];

/// Crates that must behave identically across runs under the synchronous
/// simulator (protocol logic, substrates, and both transports).
const DETERMINISTIC_CRATES: &[&str] = &[
    "ca-codec",
    "ca-bits",
    "ca-crypto",
    "ca-erasure",
    "ca-core",
    "ca-ba",
    "ca-net",
    "ca-async",
    "ca-runtime",
    "ca-engine",
];

/// Crates whose allocations may be driven by decoded wire lengths.
const WIRE_ALLOC_CRATES: &[&str] = &["ca-codec", "ca-runtime"];

/// Crates where all observability goes through `ca-trace`: protocol and
/// substrate code must never write to stdout/stderr directly (the bench
/// harness, the analyzer, and the trace CLI itself are the reporting
/// surfaces and stay out of scope).
const TRACED_CRATES: &[&str] = &[
    "ca-bits",
    "ca-codec",
    "ca-crypto",
    "ca-erasure",
    "ca-net",
    "ca-adversary",
    "ca-ba",
    "ca-core",
    "ca-async",
    "ca-runtime",
    "ca-engine",
];

/// Crates whose internal queues must be bounded: the engine's
/// backpressure guarantees and the TCP runtime's crash tolerance hold
/// only if no channel can grow without limit under a flooding peer or a
/// stalled consumer. The protocol crates (`ca-core`, `ca-ba`) are held
/// to the same bar since the fault-adaptive fast path made them
/// consumers of transport fault estimates: buffering between the
/// optimistic attempt and the fallback must never be open-ended.
/// `ca-async` joins the list because its executor queue and per-instance
/// buffers (RBC echo/ready tallies, pending witness sets) grow with
/// network input; every such structure must carry an explicit bound or a
/// `ca-budget` annotation.
const BOUNDED_QUEUE_CRATES: &[&str] = &["ca-engine", "ca-runtime", "ca-core", "ca-ba", "ca-async"];

/// The full rule registry, in reporting order.
#[must_use]
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            name: "panic-path",
            severity: Severity::Error,
            description: "no unwrap/expect/panic!-family macros (and, in ca-codec, no slice \
                          indexing) in message-handling crates: honest parties must not abort \
                          on byzantine input",
            scope: MESSAGE_CRATES,
            check_test_code: false,
            check: check_panic_path,
        },
        Rule {
            name: "unbounded-alloc",
            severity: Severity::Error,
            description: "Vec::with_capacity/reserve in wire-decoding crates must clamp the \
                          requested size (literal, .min(..), .clamp(..), or MAX_DECODE_CAPACITY)",
            scope: WIRE_ALLOC_CRATES,
            check_test_code: false,
            check: check_unbounded_alloc,
        },
        Rule {
            name: "nondeterminism",
            severity: Severity::Error,
            description: "no HashMap/HashSet, Instant::now, SystemTime::now, or thread_rng in \
                          deterministic protocol/simulator paths",
            scope: DETERMINISTIC_CRATES,
            check_test_code: false,
            check: check_nondeterminism,
        },
        Rule {
            name: "wire-cast",
            severity: Severity::Warn,
            description: "no bare `as` narrowing casts in ca-codec: decoded values must be \
                          converted with try_from or an explicit mask",
            scope: &["ca-codec"],
            check_test_code: false,
            check: check_wire_cast,
        },
        Rule {
            name: "trace-discipline",
            severity: Severity::Error,
            description: "no println!/eprintln!/print!/eprint! in protocol or substrate crates: \
                          runs must stay quiet and observable only through ca-trace sinks",
            scope: TRACED_CRATES,
            check_test_code: false,
            check: check_trace_discipline,
        },
        Rule {
            name: "bounded-channels",
            severity: Severity::Error,
            description: "no unbounded channel constructors (mpsc::channel, unbounded, \
                          unbounded_channel) in the engine, TCP runtime, or protocol \
                          crates: every queue must have a fixed depth so backpressure, \
                          not memory, absorbs overload",
            scope: BOUNDED_QUEUE_CRATES,
            check_test_code: false,
            check: check_bounded_channels,
        },
        Rule {
            name: "unsafe-audit",
            severity: Severity::Error,
            description: "workspace-wide `unsafe` inventory; deny by default",
            scope: &[],
            check_test_code: true,
            check: check_unsafe_audit,
        },
    ]
}

/// Looks a rule up by name.
#[must_use]
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    all_rules().iter().find(|r| r.name == name)
}

fn diag(
    rule: &'static str,
    severity: Severity,
    ctx: &FileContext<'_>,
    line: u32,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    out.push(Diagnostic {
        rule,
        severity,
        file: ctx.path.to_owned(),
        line,
        message,
    });
}

/// Significant (non-comment) token before index `i`, if any.
fn prev_code<'a, 'src>(tokens: &'a [Token<'src>], i: usize) -> Option<&'a Token<'src>> {
    tokens[..i].iter().rev().find(|t| !t.is_comment())
}

/// Significant (non-comment) token after index `i`, if any.
fn next_code<'a, 'src>(tokens: &'a [Token<'src>], i: usize) -> Option<&'a Token<'src>> {
    tokens[i + 1..].iter().find(|t| !t.is_comment())
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Keywords that may directly precede `[` without forming an index
/// expression (e.g. `impl Decode for [u8; N]`, `return [a, b]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "for", "in", "as", "if", "else", "match", "return", "impl", "where", "dyn", "mut", "ref",
    "move", "box", "break", "type", "const", "static", "let", "fn", "loop", "while", "use", "pub",
    "struct", "enum", "trait", "unsafe", "yield",
];

fn check_panic_path(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    masked: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i] || tok.kind != TokenKind::Ident {
            // Slice indexing is a punct check, handled below.
            if ctx.crate_name == "ca-codec"
                && !masked[i]
                && tok.kind == TokenKind::Punct
                && tok.text == "["
            {
                let Some(prev) = prev_code(tokens, i) else {
                    continue;
                };
                let is_index_base = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if is_index_base {
                    diag(
                        "panic-path",
                        Severity::Error,
                        ctx,
                        tok.line,
                        format!(
                            "slice indexing `{}[..]` can panic on adversarial input; use \
                             .get()/.get_mut() and propagate a CodecError",
                            prev.text
                        ),
                        out,
                    );
                }
            }
            continue;
        }
        if PANIC_METHODS.contains(&tok.text) {
            let is_method_call = prev_code(tokens, i).is_some_and(|p| p.text == ".")
                && next_code(tokens, i).is_some_and(|n| n.text == "(");
            if is_method_call {
                diag(
                    "panic-path",
                    Severity::Error,
                    ctx,
                    tok.line,
                    format!(
                        ".{}() aborts the party on byzantine input; return an error or \
                         document the invariant with a ca-lint pragma",
                        tok.text
                    ),
                    out,
                );
            }
        } else if PANIC_MACROS.contains(&tok.text) {
            let is_macro = next_code(tokens, i).is_some_and(|n| n.text == "!")
                && prev_code(tokens, i).is_none_or(|p| p.text != ".");
            if is_macro {
                diag(
                    "panic-path",
                    Severity::Error,
                    ctx,
                    tok.line,
                    format!(
                        "{}! aborts the party; handlers must fail closed, not crash",
                        tok.text
                    ),
                    out,
                );
            }
        }
    }
}

/// Idents inside a `with_capacity`/`reserve` argument list that mark the
/// size as clamped.
const CLAMP_MARKERS: &[&str] = &["min", "clamp", "MAX_DECODE_CAPACITY"];

fn check_unbounded_alloc(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    masked: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i]
            || tok.kind != TokenKind::Ident
            || (tok.text != "with_capacity" && tok.text != "reserve")
        {
            continue;
        }
        if next_code(tokens, i).is_none_or(|n| n.text != "(") {
            continue;
        }
        // A *definition* named `with_capacity`/`reserve` is not a call.
        if prev_code(tokens, i).is_some_and(|p| p.text == "fn") {
            continue;
        }
        // Collect the argument tokens up to the matching close paren.
        let mut depth = 0i32;
        let mut arg_tokens: Vec<&Token<'_>> = Vec::new();
        for t in &tokens[i + 1..] {
            if t.is_comment() {
                continue;
            }
            match t.text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if depth >= 1 && t.text != "(" {
                arg_tokens.push(t);
            }
        }
        let all_const = !arg_tokens.is_empty()
            && arg_tokens.iter().all(|t| {
                t.kind == TokenKind::Number
                    || matches!(
                        t.text,
                        "<" | ">" | "+" | "*" | "-" | "usize" | "u64" | "u32" | "as"
                    )
            });
        let clamped = arg_tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && CLAMP_MARKERS.contains(&t.text));
        if !all_const && !clamped {
            diag(
                "unbounded-alloc",
                Severity::Error,
                ctx,
                tok.line,
                format!(
                    "{}(..) sized by a value that is not visibly clamped; cap it with \
                     .min(MAX_DECODE_CAPACITY) (or justify with a ca-lint pragma)",
                    tok.text
                ),
                out,
            );
        }
    }
}

fn check_nondeterminism(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    masked: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text {
            "HashMap" | "HashSet" => diag(
                "nondeterminism",
                Severity::Error,
                ctx,
                tok.line,
                format!(
                    "{} iteration order is randomized per process; use BTreeMap/BTreeSet (or \
                     index by PartyId into a Vec) so honest parties behave identically",
                    tok.text
                ),
                out,
            ),
            "Instant" | "SystemTime" => {
                let calls_now = next_code(tokens, i).is_some_and(|n| n.text == ":")
                    && tokens[i + 1..]
                        .iter()
                        .filter(|t| !t.is_comment())
                        .take(3)
                        .any(|t| t.text == "now");
                if calls_now {
                    diag(
                        "nondeterminism",
                        Severity::Error,
                        ctx,
                        tok.line,
                        format!(
                            "{}::now() reads the wall clock; inject a Clock so simulated runs \
                             are reproducible",
                            tok.text
                        ),
                        out,
                    );
                }
            }
            "thread_rng" | "from_entropy" => diag(
                "nondeterminism",
                Severity::Error,
                ctx,
                tok.line,
                format!(
                    "{} produces unseeded randomness; derive an explicit seed instead",
                    tok.text
                ),
                out,
            ),
            _ => {}
        }
    }
}

/// Integer types a bare `as` must not narrow into inside ca-codec.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

fn check_wire_cast(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    masked: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i] || tok.kind != TokenKind::Ident || tok.text != "as" {
            continue;
        }
        let Some(target) = next_code(tokens, i) else {
            continue;
        };
        if target.kind == TokenKind::Ident && NARROW_TARGETS.contains(&target.text) {
            diag(
                "wire-cast",
                Severity::Warn,
                ctx,
                tok.line,
                format!(
                    "bare `as {}` silently truncates; use try_from (decoded values) or mask \
                     explicitly and justify with a ca-lint pragma",
                    target.text
                ),
                out,
            );
        }
    }
}

/// Macros that write to stdout/stderr.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

fn check_trace_discipline(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    masked: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i] || tok.kind != TokenKind::Ident || !PRINT_MACROS.contains(&tok.text) {
            continue;
        }
        // Macro invocation only: `println!(..)` — a local named `print`
        // or a path segment is not an output statement.
        let is_macro = next_code(tokens, i).is_some_and(|n| n.text == "!")
            && prev_code(tokens, i).is_none_or(|p| p.text != ".");
        if is_macro {
            diag(
                "trace-discipline",
                Severity::Error,
                ctx,
                tok.line,
                format!(
                    "{}! writes to the process streams from protocol code; emit a ca-trace \
                     event (Note/Input/Decide) through the Comm trace hooks instead",
                    tok.text
                ),
                out,
            );
        }
    }
}

/// Constructor idents that always build an unbounded queue.
const UNBOUNDED_CTORS: &[&str] = &["unbounded", "unbounded_channel"];

fn check_bounded_channels(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    masked: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        // A constructor is used when followed by `(` (call) or `::`
        // (turbofish); a bare mention or a field/binding named like one
        // (single `:`) is not.
        let used = {
            let mut next = tokens[i + 1..].iter().filter(|t| !t.is_comment());
            match next.next() {
                Some(n) if n.text == "(" => true,
                Some(n) if n.text == ":" => next.next().is_some_and(|n2| n2.text == ":"),
                _ => false,
            }
        };
        if !used {
            continue;
        }
        if UNBOUNDED_CTORS.contains(&tok.text) {
            diag(
                "bounded-channels",
                Severity::Error,
                ctx,
                tok.line,
                format!(
                    "{}() creates a queue with no depth limit; use a bounded channel \
                     (sync_channel) sized from EngineConfig so overload sheds instead of \
                     accumulating",
                    tok.text
                ),
                out,
            );
        } else if tok.text == "channel" {
            // `mpsc::channel` (std or tokio) is the unbounded constructor;
            // `sync_channel` is the bounded one and stays allowed.
            let after_mpsc = {
                let mut prev = tokens[..i].iter().rev().filter(|t| !t.is_comment());
                prev.next().is_some_and(|p| p.text == ":")
                    && prev.next().is_some_and(|p| p.text == ":")
                    && prev.next().is_some_and(|p| p.text == "mpsc")
            };
            if after_mpsc {
                diag(
                    "bounded-channels",
                    Severity::Error,
                    ctx,
                    tok.line,
                    "mpsc::channel() is unbounded; use mpsc::sync_channel(depth) with a depth \
                     derived from EngineConfig"
                        .to_owned(),
                    out,
                );
            }
        }
    }
}

fn check_unsafe_audit(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    _masked: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for tok in tokens {
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            diag(
                "unsafe-audit",
                Severity::Error,
                ctx,
                tok.line,
                "`unsafe` in consensus code must be individually audited and justified with a \
                 ca-lint pragma"
                    .to_owned(),
                out,
            );
        }
    }
}
