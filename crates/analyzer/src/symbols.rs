//! Workspace symbol table and call graph.
//!
//! Built from the per-file [`crate::parser`] items: every function body
//! is re-tokenized into an owned token vector so the dataflow passes can
//! walk it repeatedly without holding borrows on file contents, and a
//! name-resolved call graph connects the functions. Resolution is
//! intentionally *over-approximate* (a method call resolves to every
//! workspace method with that name): reachability-style checks stay
//! sound in the direction that matters — "unreachable from any round
//! scope" is only reported when no resolution could reach the site.

use std::collections::{BTreeMap, BTreeSet};

use crate::diagnostics::Suppressions;
use crate::engine::{is_test_path, mask_cfg_test};
use crate::lexer::{lex, TokenKind};
use crate::parser::{parse_items, StructDecl};

/// One source file handed to the semantic analyzer.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Owning package name (e.g. `ca-core`).
    pub crate_name: String,
    /// Workspace-relative path (diagnostics).
    pub path: String,
    /// Full source text.
    pub src: String,
}

/// An owned token inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind (comments are dropped at build time).
    pub kind: TokenKind,
    /// Token text.
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
}

/// One function in the workspace, with everything the passes need.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Owning package.
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Bare name.
    pub name: String,
    /// `crate::Type::name` or `crate::name` — stable display id.
    pub qualified: String,
    /// Parameter names (positional; destructured params are absent).
    pub params: Vec<String>,
    /// Body tokens, comments stripped.
    pub body: Vec<Tok>,
    /// Test code: `#[cfg(test)]` module or tests/benches/examples path.
    pub is_test: bool,
    /// Declared a metered send helper (`// ca-budget: metered`).
    pub metered: bool,
    /// Declared a round-scope root (`// ca-budget: scope(name)`).
    pub scope_ann: Option<String>,
    /// String literals passed to `.scoped(` / `.push_scope(` in this
    /// body, with the body-token index of the literal.
    pub scope_literals: Vec<(usize, String)>,
}

/// The workspace-wide symbol table plus call graph.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function, in (file, source order).
    pub fns: Vec<FnInfo>,
    /// Struct inventory (per file).
    pub structs: Vec<(String, StructDecl)>,
    /// `calls[f]` = indices of functions `f` may call (sorted, deduped).
    pub calls: Vec<Vec<usize>>,
    /// Reverse edges of [`SymbolTable::calls`].
    pub callers: Vec<Vec<usize>>,
    /// Suppression pragmas per file path.
    pub suppressions: BTreeMap<String, Suppressions>,
    /// `// ca-budget: raw-send(reason)` line pragmas per file path:
    /// (pragma line, standalone, reason).
    pub raw_send_pragmas: BTreeMap<String, Vec<(u32, bool, String)>>,
    by_bare: BTreeMap<String, Vec<usize>>,
}

/// Rust keywords and control-flow words that look like calls (`if (`,
/// `match (`) but never are.
const NOT_CALLS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "impl", "dyn", "where", "use", "pub", "mod", "struct",
    "enum", "trait", "type", "const", "static", "unsafe", "async", "await", "yield", "box",
];

impl SymbolTable {
    /// Builds the table from `files`. Deterministic: files are processed
    /// in the order given (the engine sorts paths), and every map is a
    /// `BTreeMap`.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut table = SymbolTable::default();
        for file in files {
            let tokens = lex(&file.src);
            let masked = mask_cfg_test(&tokens);
            table
                .suppressions
                .insert(file.path.clone(), Suppressions::collect(&tokens));
            let raws = collect_raw_send_pragmas(&tokens);
            if !raws.is_empty() {
                table.raw_send_pragmas.insert(file.path.clone(), raws);
            }
            let items = parse_items(&tokens, &masked);
            for s in items.structs {
                table.structs.push((file.path.clone(), s));
            }
            let file_is_test = is_test_path(&file.path);
            for f in items.fns {
                let body: Vec<Tok> = tokens[f.body.0..f.body.1.min(tokens.len())]
                    .iter()
                    .filter(|t| !t.is_comment())
                    .map(|t| Tok {
                        kind: t.kind,
                        text: t.text.to_owned(),
                        line: t.line,
                    })
                    .collect();
                let scope_literals = find_scope_literals(&body);
                let qualified = match &f.self_ty {
                    Some(ty) => format!("{}::{}::{}", file.crate_name, ty, f.name),
                    None => format!("{}::{}", file.crate_name, f.name),
                };
                let metered = f.annotations.iter().any(|a| a == "metered");
                let scope_ann = f.annotations.iter().find_map(|a| {
                    a.strip_prefix("scope(")
                        .and_then(|r| r.strip_suffix(')'))
                        .map(str::to_owned)
                });
                table.fns.push(FnInfo {
                    crate_name: file.crate_name.clone(),
                    file: file.path.clone(),
                    line: f.line,
                    name: f.name.clone(),
                    qualified,
                    params: f.params,
                    body,
                    is_test: file_is_test || f.in_cfg_test,
                    metered,
                    scope_ann,
                    scope_literals,
                });
            }
        }
        for (idx, f) in table.fns.iter().enumerate() {
            table.by_bare.entry(f.name.clone()).or_default().push(idx);
        }
        table.build_call_graph();
        table
    }

    /// All function indices with the given bare name.
    #[must_use]
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_bare.get(name).map_or(&[], Vec::as_slice)
    }

    fn build_call_graph(&mut self) {
        let mut calls: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (idx, f) in self.fns.iter().enumerate() {
            let mut out = BTreeSet::new();
            for name in called_names(&f.body) {
                let candidates = self.fns_named(&name);
                // Prefer same-crate targets for bare calls; methods (and
                // cross-crate calls) resolve to every candidate.
                let same_crate: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| self.fns[c].crate_name == f.crate_name)
                    .collect();
                let chosen: &[usize] = if same_crate.is_empty() {
                    candidates
                } else {
                    &same_crate
                };
                for &c in chosen {
                    if c != idx {
                        out.insert(c);
                    }
                }
            }
            calls[idx] = out.into_iter().collect();
        }
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (caller, callees) in calls.iter().enumerate() {
            for &callee in callees {
                callers[callee].push(caller);
            }
        }
        self.calls = calls;
        self.callers = callers;
    }

    /// Forward reachability over the call graph from `roots`.
    #[must_use]
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut stack: Vec<usize> = roots.iter().copied().filter(|&r| r < seen.len()).collect();
        for &r in &stack {
            seen[r] = true;
        }
        while let Some(f) = stack.pop() {
            for &c in &self.calls[f] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        seen
    }
}

/// Bare names of everything `body` may call: `name(…)`, `name::<T>(…)`,
/// and `.name(…)` method calls.
fn called_names(body: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        if call_open_paren(body, i).is_some() {
            names.insert(t.text.clone());
        }
    }
    names
}

/// If the ident at `i` is used as a call (`name(` or `name::<T>(`),
/// returns the index of the opening paren.
#[must_use]
pub fn call_open_paren(body: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if body.get(j).is_some_and(|t| t.text == ":")
        && body.get(j + 1).is_some_and(|t| t.text == ":")
        && body.get(j + 2).is_some_and(|t| t.text == "<")
    {
        // Turbofish: skip the balanced angles.
        let mut depth = 0i64;
        j += 2;
        while j < body.len() {
            match body[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "(" | ")" | "{" | "}" | ";" => return None,
                _ => {}
            }
            j += 1;
        }
    }
    body.get(j).filter(|t| t.text == "(").map(|_| j)
}

/// Matching close paren for the open paren at `open` in body-token
/// space (counts all bracket kinds so nested closures stay balanced).
#[must_use]
pub fn match_close(body: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let (open_text, close_text) = match body.get(open).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return open,
    };
    for (j, t) in body.iter().enumerate().skip(open) {
        if t.text == open_text {
            depth += 1;
        } else if t.text == close_text {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    body.len().saturating_sub(1)
}

/// `.scoped("name"` / `.push_scope("name"` literals, with positions.
fn find_scope_literals(body: &[Tok]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "scoped" && t.text != "push_scope") {
            continue;
        }
        let Some(open) = call_open_paren(body, i) else {
            continue;
        };
        if let Some(lit) = body.get(open + 1).filter(|l| l.kind == TokenKind::Literal) {
            let name = lit.text.trim_matches('"');
            if !name.is_empty() {
                out.push((open + 1, name.to_owned()));
            }
        }
    }
    out
}

/// `// ca-budget: raw-send(reason)` pragmas: `(line, standalone, reason)`.
/// Standalone pragmas cover the next line; trailing pragmas their own.
fn collect_raw_send_pragmas(tokens: &[crate::lexer::Token<'_>]) -> Vec<(u32, bool, String)> {
    let mut out = Vec::new();
    let mut last_code_line = 0u32;
    for t in tokens {
        if !t.is_comment() {
            last_code_line = t.line;
            continue;
        }
        let Some(idx) = t.text.find("ca-budget:") else {
            continue;
        };
        let rest = t.text[idx + "ca-budget:".len()..].trim_start();
        let Some(inner) = rest.strip_prefix("raw-send(") else {
            continue;
        };
        let Some(close) = inner.find(')') else {
            continue;
        };
        let reason = inner[..close].trim().to_owned();
        if !reason.is_empty() {
            out.push((t.line, last_code_line != t.line, reason));
        }
    }
    out
}

/// Whether a raw-send pragma in `pragmas` covers `line`.
#[must_use]
pub fn raw_send_reason(pragmas: &[(u32, bool, String)], line: u32) -> Option<&str> {
    pragmas
        .iter()
        .find(|(l, standalone, _)| {
            if *standalone {
                l.saturating_add(1) == line
            } else {
                *l == line
            }
        })
        .map(|(_, _, r)| r.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(krate, path, src)| SourceFile {
                crate_name: (*krate).to_owned(),
                path: (*path).to_owned(),
                src: (*src).to_owned(),
            })
            .collect()
    }

    #[test]
    fn call_graph_resolves_same_crate_first() {
        let table = SymbolTable::build(&files(&[
            (
                "ca-a",
                "a.rs",
                "pub fn top() { helper(); }\nfn helper() {}\n",
            ),
            ("ca-b", "b.rs", "fn helper() {}\n"),
        ]));
        let top = table.fns_named("top")[0];
        let callees: Vec<&str> = table.calls[top]
            .iter()
            .map(|&c| table.fns[c].qualified.as_str())
            .collect();
        assert_eq!(callees, vec!["ca-a::helper"]);
    }

    #[test]
    fn method_calls_resolve_cross_crate() {
        let table = SymbolTable::build(&files(&[
            ("ca-a", "a.rs", "fn top(x: &X) { x.helper(); }\n"),
            ("ca-b", "b.rs", "impl X { pub fn helper(&self) {} }\n"),
        ]));
        let top = table.fns_named("top")[0];
        assert_eq!(table.calls[top].len(), 1);
        assert_eq!(table.fns[table.calls[top][0]].qualified, "ca-b::X::helper");
    }

    #[test]
    fn scope_literals_found() {
        let table = SymbolTable::build(&files(&[(
            "ca-core",
            "p.rs",
            "fn pi(ctx: &mut dyn Comm) { ctx.scoped(\"pi_n\", |ctx| { go(ctx) }) }\n",
        )]));
        assert_eq!(table.fns[0].scope_literals.len(), 1);
        assert_eq!(table.fns[0].scope_literals[0].1, "pi_n");
    }

    #[test]
    fn reachability() {
        let table = SymbolTable::build(&files(&[(
            "ca-a",
            "a.rs",
            "fn root() { mid() }\nfn mid() { leaf() }\nfn leaf() {}\nfn island() {}\n",
        )]));
        let root = table.fns_named("root")[0];
        let seen = table.reachable_from(&[root]);
        assert!(seen[table.fns_named("leaf")[0]]);
        assert!(!seen[table.fns_named("island")[0]]);
    }

    #[test]
    fn raw_send_pragma_lines() {
        let toks = lex("// ca-budget: raw-send(batching)\nx.send_bytes(a, b);\ny.send_bytes(a, b); // ca-budget: raw-send(tail)\n");
        let pragmas = collect_raw_send_pragmas(&toks);
        assert_eq!(raw_send_reason(&pragmas, 2), Some("batching"));
        assert_eq!(raw_send_reason(&pragmas, 3), Some("tail"));
        assert_eq!(raw_send_reason(&pragmas, 1), None);
        assert_eq!(raw_send_reason(&pragmas, 4), None);
    }

    #[test]
    fn turbofish_call_detection() {
        let table = SymbolTable::build(&files(&[(
            "ca-a",
            "a.rs",
            "fn top(i: &Inbox) { i.decode_each::<u64>(); }\nfn decode_each() {}\n",
        )]));
        let top = table.fns_named("top")[0];
        assert_eq!(table.calls[top].len(), 1);
    }

    #[test]
    fn annotations_surface() {
        let table = SymbolTable::build(&files(&[(
            "ca-net",
            "comm.rs",
            "// ca-budget: metered\nfn send_all() {}\n// ca-budget: scope(engine)\nfn run_engine() {}\n",
        )]));
        assert!(table.fns[0].metered);
        assert_eq!(table.fns[1].scope_ann.as_deref(), Some("engine"));
    }
}
