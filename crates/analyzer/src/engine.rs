//! The analysis engine: walks the workspace, maps files to crates,
//! masks `#[cfg(test)]` modules, applies rules, and filters findings
//! through suppression pragmas.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diagnostics::{Diagnostic, Suppressions};
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{all_rules, FileContext, Rule};

/// Analysis options, mirrored by the CLI flags.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Run only the rule with this name (all rules when `None`).
    pub only_rule: Option<String>,
    /// Include `shims/` (vendored stand-ins) in the walk. Off by default:
    /// shims mimic external crates and are not protocol code.
    pub include_shims: bool,
}

/// Analyzes every Rust source file under `root` (a workspace checkout).
///
/// # Errors
///
/// Returns an error when the workspace layout cannot be read.
pub fn analyze_workspace(root: &Path, opts: &Options) -> Result<Vec<Diagnostic>, String> {
    if !root.is_dir() {
        return Err(format!("root `{}` is not a directory", root.display()));
    }
    let mut files = Vec::new();
    collect_workspace_files(root, opts, &mut files)?;
    files.sort();

    let mut diags = Vec::new();
    for file in &files {
        let src = fs::read_to_string(file)
            .map_err(|e| format!("failed to read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = crate_name_for(root, &rel);
        let ctx = FileContext {
            crate_name: &crate_name,
            path: &rel,
            is_test_code: is_test_path(&rel),
        };
        diags.extend(analyze_source(&ctx, &src, opts));
    }
    Ok(diags)
}

/// Loads every Rust source file under `root` as [`SourceFile`]s for the
/// semantic passes, using the same walk (and ordering) as
/// [`analyze_workspace`].
///
/// # Errors
///
/// Returns an error when the workspace layout cannot be read.
pub fn collect_sources(
    root: &Path,
    opts: &Options,
) -> Result<Vec<crate::symbols::SourceFile>, String> {
    if !root.is_dir() {
        return Err(format!("root `{}` is not a directory", root.display()));
    }
    let mut files = Vec::new();
    collect_workspace_files(root, opts, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for file in &files {
        let src = fs::read_to_string(file)
            .map_err(|e| format!("failed to read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = crate_name_for(root, &rel);
        out.push(crate::symbols::SourceFile {
            crate_name,
            path: rel,
            src,
        });
    }
    Ok(out)
}

/// Analyzes one source string. Public so fixture tests can drive a rule
/// against a snippet without touching the filesystem.
#[must_use]
pub fn analyze_source(ctx: &FileContext<'_>, src: &str, opts: &Options) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let masked = mask_cfg_test(&tokens);
    let sup = Suppressions::collect(&tokens);
    let mut out = Vec::new();
    for rule in applicable_rules(ctx, opts) {
        let before = out.len();
        (rule.check)(ctx, &tokens, &masked, &mut out);
        // Drop findings the file suppresses via pragmas.
        let mut i = before;
        while i < out.len() {
            if sup.allows(out[i].rule, out[i].line) {
                out.remove(i);
            } else {
                i += 1;
            }
        }
    }
    out
}

fn applicable_rules<'r>(
    ctx: &FileContext<'_>,
    opts: &Options,
) -> impl Iterator<Item = &'r Rule> + use<'r> {
    let crate_name = ctx.crate_name.to_owned();
    let is_test = ctx.is_test_code;
    let only = opts.only_rule.clone();
    all_rules().iter().filter(move |rule| {
        if let Some(only) = &only {
            if rule.name != only {
                return false;
            }
        }
        if is_test && !rule.check_test_code {
            return false;
        }
        rule.scope.is_empty() || rule.scope.contains(&crate_name.as_str())
    })
}

/// Marks tokens inside `#[cfg(test)] mod … { … }` blocks so most rules
/// skip them (unit tests may unwrap freely).
#[must_use]
pub fn mask_cfg_test(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut c = 0usize;
    while c < code.len() {
        if !is_cfg_test_attr(tokens, &code, c) {
            c += 1;
            continue;
        }
        // `#[cfg(test)]` spans 6 significant tokens: # [ cfg ( test ) ].
        let after_attr = c + 7;
        // Skip any further attributes, then expect `mod name {`.
        let mut m = after_attr;
        while m < code.len() && tokens[code[m]].text == "#" {
            // Skip a balanced `#[ … ]`.
            m += 1;
            if m < code.len() && tokens[code[m]].text == "[" {
                let mut depth = 0i32;
                while m < code.len() {
                    match tokens[code[m]].text {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                m += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
            }
        }
        let is_mod = m < code.len()
            && tokens[code[m]].text == "mod"
            && code
                .get(m + 1)
                .is_some_and(|&i| tokens[i].kind == TokenKind::Ident)
            && code.get(m + 2).is_some_and(|&i| tokens[i].text == "{");
        if !is_mod {
            c += 1;
            continue;
        }
        // Mask from the attribute through the matching close brace.
        let open = m + 2;
        let mut depth = 0i32;
        let mut end = open;
        while end < code.len() {
            match tokens[code[end]].text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        for &ti in &code[c..=end.min(code.len() - 1)] {
            masked[ti] = true;
        }
        c = end + 1;
    }
    masked
}

fn is_cfg_test_attr(tokens: &[Token<'_>], code: &[usize], c: usize) -> bool {
    let texts: Vec<&str> = code[c..].iter().take(7).map(|&i| tokens[i].text).collect();
    texts == ["#", "[", "cfg", "(", "test", ")", "]"]
}

/// Whether a workspace-relative path is test/bench/example code.
#[must_use]
pub fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Maps a workspace-relative file to its owning package name by reading
/// the nearest `Cargo.toml` on the path. Falls back to the directory name.
fn crate_name_for(root: &Path, rel: &str) -> String {
    let mut dir = PathBuf::from(rel);
    dir.pop();
    loop {
        let manifest = root.join(&dir).join("Cargo.toml");
        if let Ok(body) = fs::read_to_string(&manifest) {
            if let Some(name) = parse_package_name(&body) {
                return name;
            }
        }
        if !dir.pop() {
            return "unknown".to_owned();
        }
    }
}

/// Extracts `name = "…"` from the `[package]` section of a manifest.
fn parse_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_owned());
            }
        }
    }
    None
}

fn collect_workspace_files(
    root: &Path,
    opts: &Options,
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let mut top_dirs = vec![root.join("crates"), root.join("src"), root.join("tests")];
    if opts.include_shims {
        top_dirs.push(root.join("shims"));
    }
    for dir in top_dirs {
        if dir.is_dir() {
            walk_rs(&dir, out)?;
        }
    }
    Ok(())
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}\nfn c() { z.unwrap(); }\n";
        let tokens = lex(src);
        let masked = mask_cfg_test(&tokens);
        let unwraps: Vec<bool> = tokens
            .iter()
            .zip(&masked)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn cfg_test_with_extra_attribute() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn b() { y.unwrap(); } }\n";
        let tokens = lex(src);
        let masked = mask_cfg_test(&tokens);
        let idx = tokens.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(masked[idx]);
    }

    #[test]
    fn cfg_test_fn_attribute_does_not_mask_rest_of_file() {
        // `#[cfg(test)]` on a non-mod item: nothing is masked (rules stay
        // conservative), and analysis continues past it.
        let src = "#[cfg(test)]\nfn helper() {}\nfn real() { x.unwrap(); }\n";
        let tokens = lex(src);
        let masked = mask_cfg_test(&tokens);
        let idx = tokens.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!masked[idx]);
    }

    #[test]
    fn test_paths_classified() {
        assert!(is_test_path("crates/codec/tests/prop.rs"));
        assert!(is_test_path("crates/bench/benches/t5.rs"));
        assert!(!is_test_path("crates/codec/src/lib.rs"));
    }

    #[test]
    fn package_name_parsing() {
        let manifest = "[package]\nname = \"ca-codec\"\nversion = \"0.1.0\"\n\n[dependencies]\nname = \"decoy\"\n";
        assert_eq!(parse_package_name(manifest).as_deref(), Some("ca-codec"));
    }
}
