//! A lightweight Rust *item* parser over the token stream: just enough
//! structure (fn / impl / struct) for workspace-level semantic analysis.
//!
//! This is deliberately not a grammar-complete parser. It recovers the
//! item skeleton — function names, owning `impl` types, parameter names,
//! and body token ranges — by brace matching over the lexer's output,
//! and it must never panic or loop forever, whatever bytes it is fed
//! (the proptest suite fuzzes it with arbitrary input). Anything it
//! cannot make sense of it skips; the passes built on top are
//! deny-by-default only for the shapes the parser *does* recognize, so
//! parser conservatism translates to analysis conservatism, never to
//! crashes or false certainty.

use crate::lexer::{Token, TokenKind};

/// A parsed `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    /// Bare function name (`pi_n`, `send_bytes`, …).
    pub name: String,
    /// `impl` self type owning the method, if any (`TcpParty`, …).
    pub self_ty: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Parameter names recoverable from the signature (`self` and
    /// destructuring patterns are skipped).
    pub params: Vec<String>,
    /// Token index range `[start, end)` of the body, *including* the
    /// outer braces. Empty for bodyless declarations.
    pub body: (usize, usize),
    /// Whether the item sits inside a `#[cfg(test)]` module.
    pub in_cfg_test: bool,
    /// `ca-budget:` annotations from the comment block directly above
    /// the item (e.g. `metered`, `scope(engine)`).
    pub annotations: Vec<String>,
}

/// A parsed `struct` item (name inventory only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// 1-indexed line of the `struct` keyword.
    pub line: u32,
}

/// All items recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct Items {
    /// Functions (including methods and nested fns), in source order.
    pub fns: Vec<FnDecl>,
    /// Structs, in source order.
    pub structs: Vec<StructDecl>,
}

/// Keywords that can precede `fn`/`struct` as qualifiers, plus tokens
/// that legitimately appear in an attribute/visibility run above an item.
const ITEM_QUALIFIERS: &[&str] = &[
    "pub", "crate", "in", "super", "async", "unsafe", "const", "extern", "default",
];

/// Parses `tokens` (with the `#[cfg(test)]` mask from
/// [`crate::engine::mask_cfg_test`]) into items.
#[must_use]
pub fn parse_items(tokens: &[Token<'_>], masked: &[bool]) -> Items {
    let mut items = Items::default();
    // Impl block spans: (body_start, body_end, self_ty).
    let impls = collect_impl_spans(tokens);

    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match tok.text {
            "fn" => {
                if let Some((decl, next)) = parse_fn(tokens, masked, &impls, i) {
                    items.fns.push(decl);
                    // Continue *inside* the signature so nested fns are
                    // found too; bodies overlap their parent on purpose.
                    i = next;
                } else {
                    i += 1;
                }
            }
            "struct" => {
                if let Some(name_tok) = next_code_idx(tokens, i)
                    .map(|j| &tokens[j])
                    .filter(|t| t.kind == TokenKind::Ident)
                {
                    items.structs.push(StructDecl {
                        name: name_tok.text.to_owned(),
                        line: tok.line,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    items
}

/// Index of the next non-comment token after `i`.
fn next_code_idx(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    (i + 1..tokens.len()).find(|&j| !tokens[j].is_comment())
}

/// Parses one `fn` at token index `i` (the `fn` keyword). Returns the
/// declaration and the index to resume scanning from (just past the
/// signature, so nested items are still visited).
fn parse_fn(
    tokens: &[Token<'_>],
    masked: &[bool],
    impls: &[(usize, usize, String)],
    i: usize,
) -> Option<(FnDecl, usize)> {
    let name_idx = next_code_idx(tokens, i)?;
    let name_tok = &tokens[name_idx];
    if name_tok.kind != TokenKind::Ident {
        return None; // `fn(` pointer type, malformed input, …
    }

    // Optional generics, then the parameter list.
    let mut j = next_code_idx(tokens, name_idx)?;
    if tokens[j].text == "<" {
        j = skip_angles(tokens, j)?;
    }
    if tokens[j].text != "(" {
        return None;
    }
    let params_end = match_delim(tokens, j, "(", ")")?;
    let params = collect_params(tokens, j, params_end);

    // Scan forward for the body `{` (or `;` for a bodyless item).
    let mut k = params_end + 1;
    let mut body = (0usize, 0usize);
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_comment() {
            k += 1;
            continue;
        }
        match t.text {
            ";" => break,
            "{" => {
                let close = match_delim(tokens, k, "{", "}").unwrap_or(tokens.len() - 1);
                body = (k, close + 1);
                break;
            }
            // Skip over generic bounds in return types / where clauses.
            "<" => k = skip_angles(tokens, k).unwrap_or(k + 1),
            _ => k += 1,
        }
    }

    let self_ty = impls
        .iter()
        .rfind(|(start, end, _)| i >= *start && i < *end)
        .map(|(_, _, ty)| ty.clone());

    Some((
        FnDecl {
            name: name_tok.text.to_owned(),
            self_ty,
            line: tokens[i].line,
            params,
            body,
            in_cfg_test: masked.get(i).copied().unwrap_or(false),
            annotations: collect_annotations(tokens, i),
        },
        params_end + 1,
    ))
}

/// Matches `open` at index `from` to its closing `close`, counting only
/// those two delimiter texts. Returns the close index.
fn match_delim(tokens: &[Token<'_>], from: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(from) {
        if t.is_comment() {
            continue;
        }
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skips a balanced `< … >` run starting at `from` (which must be `<`).
/// Returns the index just past the matching `>`; bails out (returning
/// `None`) if the angles never balance — malformed input.
fn skip_angles(tokens: &[Token<'_>], from: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(from) {
        if t.is_comment() {
            continue;
        }
        match t.text {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return next_code_idx(tokens, j);
                }
            }
            // Angles never span these in a signature; treat as malformed.
            "{" | "}" | ";" => return None,
            _ => {}
        }
    }
    None
}

/// Parameter names: idents directly before a `:` at paren depth 1,
/// themselves preceded by `(`, `,`, or `mut`. Destructuring patterns
/// yield no name (conservative).
fn collect_params(tokens: &[Token<'_>], open: usize, close: usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut prev2: Option<&Token<'_>> = None; // token before `prev`
    let mut prev: Option<&Token<'_>> = None;
    for t in tokens[open..=close.min(tokens.len() - 1)].iter() {
        if t.is_comment() {
            continue;
        }
        match t.text {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 1 => {
                if let (Some(name), Some(before)) = (prev, prev2) {
                    let anchored = matches!(before.text, "(" | "," | "mut");
                    if anchored && name.kind == TokenKind::Ident && name.text != "self" {
                        params.push(name.text.to_owned());
                    }
                }
            }
            _ => {}
        }
        prev2 = prev;
        prev = Some(t);
    }
    params
}

/// Collects `ca-budget:` annotations from the contiguous run of
/// comments, attributes, and qualifiers directly above token `i`
/// (the `fn` keyword).
fn collect_annotations(tokens: &[Token<'_>], i: usize) -> Vec<String> {
    let mut anns = Vec::new();
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_comment() {
            if let Some(ann) = parse_budget_annotation(t.text) {
                anns.push(ann);
            }
            continue;
        }
        if t.kind == TokenKind::Ident && ITEM_QUALIFIERS.contains(&t.text) {
            continue;
        }
        // Walk backwards over a `#[ … ]` attribute.
        if t.text == "]" {
            let mut depth = 1i64;
            let mut k = j;
            while k > 0 && depth > 0 {
                k -= 1;
                match tokens[k].text {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            if k > 0 && tokens[k - 1].text == "#" {
                j = k - 1;
                continue;
            }
            break;
        }
        // `pub(crate)` / `extern "C"` leftovers.
        if matches!(t.text, "(" | ")") || t.kind == TokenKind::Literal {
            continue;
        }
        break;
    }
    anns.reverse();
    anns
}

/// Extracts the annotation body from a `// ca-budget: <body>` comment.
fn parse_budget_annotation(comment: &str) -> Option<String> {
    let idx = comment.find("ca-budget:")?;
    let rest = comment[idx + "ca-budget:".len()..].trim();
    // Cut an explanatory suffix after the annotation proper: the body
    // runs to the first `—` or ` -- ` separator, if any.
    let body = rest.split('—').next().unwrap_or(rest);
    let body = body.split(" -- ").next().unwrap_or(body).trim();
    if body.is_empty() {
        None
    } else {
        Some(body.to_owned())
    }
}

/// Finds every `impl … { … }` block: `(body_start, body_end, self_ty)`
/// token index ranges (end exclusive), innermost last for nested impls.
fn collect_impl_spans(tokens: &[Token<'_>]) -> Vec<(usize, usize, String)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "impl" {
            i += 1;
            continue;
        }
        // Header runs to the opening `{` (no braces can appear in it).
        let mut header_end = None;
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_comment() {
                j += 1;
                continue;
            }
            match t.text {
                "{" => {
                    header_end = Some(j);
                    break;
                }
                ";" | "}" => break, // `impl Trait` in a type position, or malformed
                _ => j += 1,
            }
        }
        let Some(open) = header_end else {
            i += 1;
            continue;
        };
        if let Some(ty) = impl_self_ty(tokens, i + 1, open) {
            let close = match_delim(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
            spans.push((open, close + 1, ty));
        }
        i = open + 1;
    }
    spans
}

/// Self type of an impl header (tokens in `(from, to)` exclusive):
/// the first type ident after `for` if present (`impl Tr for Ty`),
/// otherwise the first type ident after the optional generics.
fn impl_self_ty(tokens: &[Token<'_>], from: usize, to: usize) -> Option<String> {
    let code: Vec<&Token<'_>> = tokens[from..to]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();
    // Generic parameters directly after `impl`.
    let mut idx = 0usize;
    if code.first().is_some_and(|t| t.text == "<") {
        let mut depth = 0i64;
        while idx < code.len() {
            match code[idx].text {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        idx += 1;
                        break;
                    }
                }
                _ => {}
            }
            idx += 1;
        }
    }
    // `for` at angle depth 0 splits trait from self type.
    let mut depth = 0i64;
    let mut for_pos = None;
    for (k, t) in code.iter().enumerate().skip(idx) {
        match t.text {
            "<" => depth += 1,
            ">" => depth -= 1,
            "for" if depth == 0 => {
                for_pos = Some(k);
                break;
            }
            "where" if depth == 0 => break,
            _ => {}
        }
    }
    let start = for_pos.map_or(idx, |k| k + 1);
    code[start..]
        .iter()
        .find(|t| {
            t.kind == TokenKind::Ident && !matches!(t.text, "dyn" | "mut" | "const" | "where")
        })
        .map(|t| t.text.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::mask_cfg_test;
    use crate::lexer::lex;

    fn parse(src: &str) -> Items {
        let tokens = lex(src);
        let masked = mask_cfg_test(&tokens);
        parse_items(&tokens, &masked)
    }

    #[test]
    fn free_fn_with_params() {
        let items = parse("pub fn run(ctx: &mut dyn Comm, v_in: &Nat) -> Nat { body() }\n");
        assert_eq!(items.fns.len(), 1);
        let f = &items.fns[0];
        assert_eq!(f.name, "run");
        assert_eq!(f.params, vec!["ctx", "v_in"]);
        assert!(f.self_ty.is_none());
        assert!(f.body.1 > f.body.0);
    }

    #[test]
    fn impl_methods_get_self_ty() {
        let items = parse(
            "struct Foo;\nimpl Foo { fn a(&self) {} }\nimpl Comm for Foo { fn b(&mut self, x: u64) {} }\n",
        );
        assert_eq!(items.structs.len(), 1);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("Foo"));
        assert_eq!(items.fns[1].self_ty.as_deref(), Some("Foo"));
        assert_eq!(items.fns[1].params, vec!["x"]);
    }

    #[test]
    fn generic_impl_and_references() {
        let items = parse(
            "impl<'a, T: Clone> Comm for SilentAfter<'a, T> { fn n(&self) -> usize { 0 } }\n",
        );
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("SilentAfter"));
    }

    #[test]
    fn bodyless_trait_fn_skipped_body() {
        let items = parse("trait T { fn sig(&self); fn with_body(&self) { x() } }\n");
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].body, (0, 0));
        assert!(items.fns[1].body.1 > items.fns[1].body.0);
    }

    #[test]
    fn nested_fn_found() {
        let items = parse("fn outer() { fn inner(q: u8) {} inner(1); }\n");
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn cfg_test_mark() {
        let items = parse("fn real() {}\n#[cfg(test)]\nmod t { fn helper() {} }\n");
        assert!(!items.fns[0].in_cfg_test);
        assert!(items.fns[1].in_cfg_test);
    }

    #[test]
    fn budget_annotations_above_fn() {
        let items = parse(
            "// ca-budget: scope(engine) — batching layer\n#[allow(dead_code)]\npub fn run_engine() {}\n",
        );
        assert_eq!(items.fns[0].annotations, vec!["scope(engine)"]);
    }

    #[test]
    fn annotation_does_not_leak_across_items() {
        let items = parse("// ca-budget: metered\nfn a() {}\nfn b() {}\n");
        assert_eq!(items.fns[0].annotations, vec!["metered"]);
        assert!(items.fns[1].annotations.is_empty());
    }

    #[test]
    fn fn_pointer_type_not_an_item() {
        let items = parse("type Cb = fn(usize) -> bool;\nfn real() {}\n");
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "real");
    }

    #[test]
    fn malformed_input_is_survivable() {
        for src in [
            "fn",
            "fn {",
            "impl {",
            "fn f(",
            "fn f() {",
            "impl < for {}",
            "fn <",
        ] {
            let _ = parse(src); // must not panic
        }
    }

    #[test]
    fn generic_fn_signature() {
        let items =
            parse("fn lba_plus<V: Value>(ctx: &mut dyn Comm, input: &V) -> Option<V> { x }\n");
        assert_eq!(items.fns[0].name, "lba_plus");
        assert_eq!(items.fns[0].params, vec!["ctx", "input"]);
    }
}
