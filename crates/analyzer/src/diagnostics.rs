//! Diagnostics: severity, rendering (human and JSON), and the
//! `// ca-lint: allow(<rule>)` suppression pragma.

use std::fmt;

use crate::lexer::{Token, TokenKind};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious; fails the build only under `--deny`.
    Warn,
    /// A protocol-soundness violation; always fails the build.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding at a file:line location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that produced the finding (e.g. `panic-path`).
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// `file:line: severity [rule] message` — the human format.
    #[must_use]
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}: {} [{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }

    /// One JSON object (used by `--json` output).
    #[must_use]
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"severity\":{},\"rule\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            json_str(&self.severity.to_string()),
            json_str(self.rule),
            json_str(&self.message)
        )
    }
}

/// Escapes `s` as a JSON string literal (shared with the budget table).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Suppressions parsed from `// ca-lint: allow(rule, …)` comments.
///
/// Placement determines exactly one target line — a pragma never covers
/// two lines:
///
/// - **Standalone** (the comment is the first thing on its line):
///   suppresses findings on the *next* line only, so it sits above the
///   code it justifies.
/// - **Trailing** (code precedes the comment on the same line):
///   suppresses findings on *its own* line only.
///
/// A `//! ca-lint: allow(rule)` inner doc comment suppresses the rule
/// for the whole file.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// (rule, target line) pairs that are suppressed.
    line_allows: Vec<(String, u32)>,
    /// Rules suppressed for the entire file.
    file_allows: Vec<String>,
    /// Pragmas that never matched a finding (for `--unused-pragmas`).
    pub pragma_lines: Vec<(String, u32)>,
}

impl Suppressions {
    /// Scans the token stream for pragmas.
    #[must_use]
    pub fn collect(tokens: &[Token<'_>]) -> Self {
        let mut out = Self::default();
        let mut last_code_line = 0u32;
        for tok in tokens {
            if tok.kind != TokenKind::LineComment && tok.kind != TokenKind::BlockComment {
                last_code_line = tok.line;
                continue;
            }
            let Some(rules) = parse_pragma(tok.text) else {
                continue;
            };
            let file_wide = tok.text.starts_with("//!");
            // Trailing pragmas share a line with code; standalone ones
            // lead their line and apply to the following line instead.
            let target = if last_code_line == tok.line {
                tok.line
            } else {
                tok.line.saturating_add(1)
            };
            for rule in rules {
                if file_wide {
                    out.file_allows.push(rule);
                } else {
                    out.pragma_lines.push((rule.clone(), tok.line));
                    out.line_allows.push((rule, target));
                }
            }
        }
        out
    }

    /// Whether a finding of `rule` on `line` is suppressed.
    #[must_use]
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.file_allows.iter().any(|r| r == rule)
            || self
                .line_allows
                .iter()
                .any(|(r, l)| r == rule && *l == line)
    }
}

/// Parses `ca-lint: allow(a, b)` out of a comment, returning the rule
/// names, or `None` if the comment is not a pragma.
fn parse_pragma(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("ca-lint:")?;
    let rest = comment[idx + "ca-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn standalone_pragma_suppresses_next_line_only() {
        let src = "// ca-lint: allow(panic-path) — len checked above\nlet x = v.unwrap();\n";
        let sup = Suppressions::collect(&lex(src));
        assert!(!sup.allows("panic-path", 1));
        assert!(sup.allows("panic-path", 2));
        assert!(!sup.allows("panic-path", 3));
        assert!(!sup.allows("nondeterminism", 2));
    }

    #[test]
    fn trailing_pragma_suppresses_its_own_line_only() {
        let src = "let a = 0;\nlet x = v.unwrap(); // ca-lint: allow(panic-path) — invariant\nlet y = w.unwrap();\n";
        let sup = Suppressions::collect(&lex(src));
        assert!(sup.allows("panic-path", 2));
        assert!(!sup.allows("panic-path", 3));
    }

    #[test]
    fn pragma_never_leaks_two_lines_down() {
        // Regression: the old semantics accepted L or L+1 for every
        // pragma, letting a trailing pragma leak to the line below it.
        let src = "let x = v.unwrap(); // ca-lint: allow(panic-path)\nlet y = w.unwrap();\nlet z = u.unwrap();\n";
        let sup = Suppressions::collect(&lex(src));
        assert!(sup.allows("panic-path", 1));
        assert!(!sup.allows("panic-path", 2));
        assert!(!sup.allows("panic-path", 3));
    }

    #[test]
    fn file_level_pragma() {
        let src =
            "//! ca-lint: allow(nondeterminism) — this file is the clock boundary\nfn f() {}\n";
        let sup = Suppressions::collect(&lex(src));
        assert!(sup.allows("nondeterminism", 999));
    }

    #[test]
    fn multi_rule_pragma() {
        let src = "// ca-lint: allow(panic-path, wire-cast)\nx\n";
        let sup = Suppressions::collect(&lex(src));
        assert!(sup.allows("panic-path", 2));
        assert!(sup.allows("wire-cast", 2));
    }

    #[test]
    fn non_pragma_comments_ignored() {
        let sup = Suppressions::collect(&lex("// ordinary comment\n"));
        assert!(!sup.allows("panic-path", 1));
    }

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic {
            rule: "panic-path",
            severity: Severity::Error,
            file: "a\"b.rs".into(),
            line: 3,
            message: "msg".into(),
        };
        assert!(d.render_json().contains("a\\\"b.rs"));
        assert!(d.render_human().contains("error [panic-path]"));
    }
}
