//! Robustness properties for the semantic front end: the lexer, item
//! parser, symbol builder, and passes must never panic on arbitrary
//! input, and must be deterministic — the same bytes always produce the
//! same symbol table, diagnostics, and budget table. The analyzer runs
//! on every commit over code that is mid-edit more often than not, so
//! "malformed input" is its common case, not its edge case.

use ca_analyzer::{run_semantic, SemanticConfig, SourceFile, SymbolTable};
use proptest::prelude::*;

/// Tokens that stress the parser's bracket matching, annotation
/// scanning, and statement boundaries when shuffled into soup.
const SOUP: &[&str] = &[
    "fn",
    "impl",
    "struct",
    "pub",
    "let",
    "mut",
    "if",
    "else",
    "match",
    "for",
    "in",
    "while",
    "loop",
    "return",
    "move",
    "unsafe",
    "where",
    "self",
    "Self",
    "dyn",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    "::",
    ":",
    ";",
    ",",
    ".",
    "=",
    "=>",
    "->",
    "&",
    "&mut",
    "?",
    "#",
    "!",
    "'a",
    "..",
    "...",
    "0",
    "1",
    "0xff",
    "\"lit\"",
    "\"",
    "'",
    "//",
    "/*",
    "*/",
    "///",
    "//!",
    "// ca-lint: allow(panic-path)",
    "// ca-budget: metered",
    "// ca-budget: scope(s)",
    "// ca-budget: raw-send(r)",
    "ctx",
    "send",
    "send_all",
    "send_bytes",
    "exchange",
    "next_round",
    "scoped",
    "lock",
    "read",
    "write",
    "drop",
    "with_capacity",
    "vec",
    "from_be_bytes",
    "decode_from_slice",
    "x",
    "y",
    "foo",
    "Vec",
    "u32",
];

fn semantic_fingerprint(src: &str) -> String {
    let files = [SourceFile {
        crate_name: "ca-fuzz".to_owned(),
        path: "fuzz.rs".to_owned(),
        src: src.to_owned(),
    }];
    let out = run_semantic(&files, &SemanticConfig::uniform(&["ca-fuzz"]));
    let mut fp = String::new();
    for d in &out.diags {
        fp.push_str(&format!("{}:{} {} {}\n", d.file, d.line, d.rule, d.message));
    }
    fp.push_str(&out.budget.to_json());
    fp
}

fn table_fingerprint(src: &str) -> String {
    let files = [SourceFile {
        crate_name: "ca-fuzz".to_owned(),
        path: "fuzz.rs".to_owned(),
        src: src.to_owned(),
    }];
    let table = SymbolTable::build(&files);
    let mut fp = String::new();
    for (i, f) in table.fns.iter().enumerate() {
        fp.push_str(&format!(
            "{} @{} params={:?} test={} metered={} calls={:?}\n",
            f.qualified, f.line, f.params, f.is_test, f.metered, table.calls[i]
        ));
    }
    fp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded to UTF-8) never panic the
    /// lexer → parser → symbol builder → pass stack, and two runs over
    /// the same bytes agree exactly.
    #[test]
    fn byte_fuzz_never_panics_and_is_deterministic(
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = String::from_utf8_lossy(&data).into_owned();
        prop_assert_eq!(table_fingerprint(&src), table_fingerprint(&src));
        prop_assert_eq!(semantic_fingerprint(&src), semantic_fingerprint(&src));
    }

    /// Rust-shaped token soup — unbalanced brackets, stray pragmas,
    /// half-open strings and comments — never panics and stays
    /// deterministic. This hits the item parser's recovery paths far
    /// harder than raw bytes do.
    #[test]
    fn token_soup_never_panics_and_is_deterministic(
        picks in proptest::collection::vec(0..SOUP.len(), 0..128),
        newlines in proptest::collection::vec(any::<bool>(), 0..128),
    ) {
        let mut src = String::new();
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(SOUP[p]);
            src.push(if newlines.get(i).copied().unwrap_or(false) { '\n' } else { ' ' });
        }
        prop_assert_eq!(table_fingerprint(&src), table_fingerprint(&src));
        prop_assert_eq!(semantic_fingerprint(&src), semantic_fingerprint(&src));
    }

    /// A fn item buried in hostile surroundings is still found, and the
    /// prefix/suffix garbage never changes whether it parses.
    #[test]
    fn embedded_item_survives_garbage(
        prefix in proptest::collection::vec(0..SOUP.len(), 0..32),
        suffix in proptest::collection::vec(0..SOUP.len(), 0..32),
    ) {
        let mut src = String::new();
        for &p in &prefix {
            // A lone quote or `/*` opens a region whose end the static
            // recovery text below cannot guarantee; everything else is
            // bounded (line comments end at the recovery newline).
            if matches!(SOUP[p], "\"" | "'" | "/*") {
                continue;
            }
            src.push_str(SOUP[p]);
            src.push(' ');
        }
        // Close anything the garbage opened (the prefix holds at most 32
        // tokens, so 33 of each closer guarantees balance), then start
        // clean.
        src.push('\n');
        for _ in 0..33 {
            src.push_str(") ] } ");
        }
        src.push('\n');
        src.push_str("pub fn anchor_fn_for_prop(x: usize) -> usize { x + 1 }\n");
        for &p in &suffix {
            src.push_str(SOUP[p]);
            src.push(' ');
        }
        let files = [SourceFile {
            crate_name: "ca-fuzz".to_owned(),
            path: "fuzz.rs".to_owned(),
            src,
        }];
        let table = SymbolTable::build(&files);
        prop_assert!(
            table.fns.iter().any(|f| f.name == "anchor_fn_for_prop"),
            "anchor fn lost among {} parsed fns",
            table.fns.len()
        );
    }
}
