//! Fixture tests for the semantic workspace passes: for each pass, at
//! least one fixture that MUST fail the gate (the deny-by-default
//! direction — an unmetered send, a tainted allocation, a lock
//! inversion) and one that must stay clean, plus determinism, baseline
//! drift, suppression, and the self-hosting smoke test.
//!
//! Fixtures are in-memory [`SourceFile`]s, mirroring the PR 1 style of
//! `tests/fixtures.rs`: each one is the smallest program that exhibits
//! (or deliberately avoids) the property under test.

use std::path::Path;

use ca_analyzer::{
    collect_sources, run_semantic, BudgetTable, Options, SemanticConfig, SemanticOutput, SourceFile,
};

fn file(crate_name: &str, path: &str, src: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.to_owned(),
        path: path.to_owned(),
        src: src.to_owned(),
    }
}

/// Runs one fixture file under a config that points every pass at its
/// crate.
fn run_one(crate_name: &str, src: &str) -> SemanticOutput {
    run_semantic(
        &[file(crate_name, "fixture.rs", src)],
        &SemanticConfig::uniform(&[crate_name]),
    )
}

/// Runs a fixture with only the named pass crates enabled, so fixtures
/// for one pass can't trip another.
fn run_pass(pass: &str, src: &str) -> SemanticOutput {
    let mut config = SemanticConfig::uniform(&[]);
    match pass {
        "taint" => config.taint_crates = vec!["ca-fix".to_owned()],
        "budget" => config.budget_crates = vec!["ca-fix".to_owned()],
        "locks" => config.lock_crates = vec!["ca-fix".to_owned()],
        other => panic!("unknown pass {other}"),
    }
    run_semantic(&[file("ca-fix", "fixture.rs", src)], &config)
}

fn messages(out: &SemanticOutput) -> Vec<String> {
    out.diags
        .iter()
        .map(|d| format!("{}:{} [{}] {}", d.file, d.line, d.rule, d.message))
        .collect()
}

// ── wire-taint ──────────────────────────────────────────────────────

#[test]
fn taint_wire_length_into_with_capacity_is_an_error() {
    let out = run_pass(
        "taint",
        "fn handle(buf: [u8; 4]) -> Vec<u8> {\n\
         let len = u32::from_be_bytes(buf) as usize;\n\
         Vec::with_capacity(len)\n\
         }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("wire-taint"), "{msgs:?}");
}

#[test]
fn taint_validated_length_is_clean() {
    let out = run_pass(
        "taint",
        "fn handle(buf: [u8; 4]) -> Vec<u8> {\n\
         let len = validate_frame_len(u32::from_be_bytes(buf)).unwrap();\n\
         Vec::with_capacity(len)\n\
         }\n",
    );
    assert!(out.diags.is_empty(), "{:?}", messages(&out));
}

#[test]
fn taint_crosses_function_boundaries() {
    let out = run_pass(
        "taint",
        "fn claimed_len(buf: [u8; 4]) -> usize { u32::from_be_bytes(buf) as usize }\n\
         fn consume(buf: [u8; 4]) -> Vec<u8> {\n\
         let n = claimed_len(buf);\n\
         Vec::with_capacity(n)\n\
         }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("wire-taint"), "{msgs:?}");
}

#[test]
fn taint_wire_index_into_slice_is_an_error() {
    let out = run_pass(
        "taint",
        "fn pick(ctx: &mut dyn Comm, data: &[u8]) -> u8 {\n\
         let inbox = ctx.next_round();\n\
         let i = inbox.raw_from(0) as usize;\n\
         data[i]\n\
         }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("wire-taint"), "{msgs:?}");
}

#[test]
fn taint_vec_repeat_macro_is_an_error() {
    let out = run_pass(
        "taint",
        "fn alloc(buf: [u8; 4]) -> Vec<u8> {\n\
         let n = u32::from_be_bytes(buf) as usize;\n\
         vec![0u8; n]\n\
         }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("wire-taint"), "{msgs:?}");
}

#[test]
fn taint_decoded_inbox_is_clean() {
    let out = run_pass(
        "taint",
        "fn round(ctx: &mut dyn Comm) -> Vec<u64> {\n\
         let inbox = ctx.exchange(&0u64);\n\
         let vals = inbox.decode_each::<u64>();\n\
         let mut out = Vec::with_capacity(vals.len());\n\
         for v in vals { out.push(v); }\n\
         out\n\
         }\n",
    );
    assert!(out.diags.is_empty(), "{:?}", messages(&out));
}

// ── comm-budget ─────────────────────────────────────────────────────

#[test]
fn budget_unmetered_raw_send_fails_the_gate() {
    let out = run_pass(
        "budget",
        "fn pi(ctx: &mut dyn Comm) {\n\
         ctx.scoped(\"pi_n\", |c| { c.send_bytes(to, payload); })\n\
         }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("comm-budget"), "{msgs:?}");
    assert!(msgs[0].contains("raw `send_bytes`"), "{msgs:?}");
}

#[test]
fn budget_metered_scoped_send_is_clean_and_tabled() {
    let out = run_pass(
        "budget",
        "fn pi(ctx: &mut dyn Comm) {\n\
         ctx.scoped(\"pi_n\", |c| { c.send_all(&msg); })\n\
         }\n",
    );
    assert!(out.diags.is_empty(), "{:?}", messages(&out));
    assert_eq!(out.budget.sites.len(), 1);
    assert_eq!(out.budget.sites[0].scope, "pi_n");
    assert_eq!(out.budget.sites[0].helper, "send_all");
}

#[test]
fn budget_unscoped_send_fails_the_gate() {
    let out = run_pass(
        "budget",
        "fn lone(ctx: &mut dyn Comm) { ctx.send_all(&m); }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(
        msgs[0].contains("not reachable from any annotated round scope"),
        "{msgs:?}"
    );
}

#[test]
fn budget_baseline_drift_is_detected_both_ways() {
    let before = run_pass(
        "budget",
        "fn pi(ctx: &mut dyn Comm) { ctx.scoped(\"s\", |c| { c.send_all(&m); }) }\n",
    );
    let after = run_pass(
        "budget",
        "fn pi(ctx: &mut dyn Comm) { ctx.scoped(\"s\", |c| { c.send_all(&m); c.exchange(&m); }) }\n",
    );
    let drift = after.budget.diff_against(&before.budget);
    assert_eq!(drift.len(), 1, "{drift:?}");
    assert!(drift[0].message.contains("not in analyzer-baseline.json"));
    let reverse = before.budget.diff_against(&after.budget);
    assert_eq!(reverse.len(), 1, "{reverse:?}");
    assert!(reverse[0].message.contains("vanished"));
}

#[test]
fn budget_json_round_trips_and_is_stable() {
    let out = run_pass(
        "budget",
        "fn pi(ctx: &mut dyn Comm) { ctx.scoped(\"s\", |c| { c.send(to, &m); c.send_all(&m); }) }\n",
    );
    let json = out.budget.to_json();
    let parsed = BudgetTable::from_json(&json);
    assert_eq!(parsed.sites, out.budget.sites);
    assert_eq!(
        parsed.to_json(),
        json,
        "emit → parse → emit must be a fixed point"
    );
    assert!(out.budget.diff_against(&parsed).is_empty());
}

// ── concurrency-discipline ──────────────────────────────────────────

#[test]
fn locks_inversion_fails_the_gate_at_both_sites() {
    let out = run_pass(
        "locks",
        "impl S {\n\
         fn a(&self) { let g1 = self.inbox.lock(); let g2 = self.stats.lock(); }\n\
         fn b(&self) { let g2 = self.stats.lock(); let g1 = self.inbox.lock(); }\n\
         }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(
        msgs.iter().all(|m| m.contains("concurrency-discipline")),
        "{msgs:?}"
    );
    assert!(msgs.iter().all(|m| m.contains("order")), "{msgs:?}");
}

#[test]
fn locks_consistent_order_is_clean() {
    let out = run_pass(
        "locks",
        "impl S {\n\
         fn a(&self) { let g1 = self.inbox.lock(); let g2 = self.stats.lock(); }\n\
         fn b(&self) { let g1 = self.inbox.lock(); let g2 = self.stats.lock(); }\n\
         }\n",
    );
    assert!(out.diags.is_empty(), "{:?}", messages(&out));
}

#[test]
fn locks_channel_send_under_lock_fails_the_gate() {
    let out = run_pass(
        "locks",
        "impl S {\n\
         fn pump(&self, tx: &Sender<u8>) { let g = self.state.lock(); tx.send(1); }\n\
         }\n",
    );
    let msgs = messages(&out);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("concurrency-discipline"), "{msgs:?}");
}

#[test]
fn locks_double_acquisition_flagged_and_drop_releases() {
    let double = run_pass(
        "locks",
        "impl S { fn d(&self) { let a = self.m.lock(); let b = self.m.lock(); } }\n",
    );
    assert_eq!(double.diags.len(), 1, "{:?}", messages(&double));

    let released = run_pass(
        "locks",
        "impl S { fn d(&self) { let a = self.m.lock(); drop(a); let b = self.m.lock(); } }\n",
    );
    assert!(released.diags.is_empty(), "{:?}", messages(&released));
}

// ── cross-cutting ───────────────────────────────────────────────────

#[test]
fn standalone_pragma_suppresses_a_semantic_finding() {
    let out = run_pass(
        "taint",
        "fn handle(buf: [u8; 4]) -> Vec<u8> {\n\
         let len = u32::from_be_bytes(buf) as usize;\n\
         // ca-lint: allow(wire-taint)\n\
         Vec::with_capacity(len)\n\
         }\n",
    );
    assert!(out.diags.is_empty(), "{:?}", messages(&out));
}

#[test]
fn semantic_run_is_deterministic_across_invocations() {
    let files = [
        file(
            "ca-core",
            "a.rs",
            "fn pi(ctx: &mut dyn Comm) { ctx.scoped(\"pi_n\", |c| { c.send_all(&m); body(c); }) }\n\
             fn body(ctx: &mut dyn Comm) { ctx.send(to, &m); ctx.send_bytes(to, raw); }\n",
        ),
        file(
            "ca-core",
            "b.rs",
            "fn handle(buf: [u8; 4]) -> Vec<u8> {\n\
             let n = u32::from_be_bytes(buf) as usize;\n\
             vec![0u8; n]\n\
             }\n\
             impl S {\n\
             fn a(&self) { let g1 = self.x.lock(); let g2 = self.y.lock(); }\n\
             fn b(&self) { let g2 = self.y.lock(); let g1 = self.x.lock(); }\n\
             }\n",
        ),
    ];
    let config = SemanticConfig::uniform(&["ca-core"]);
    let first = run_semantic(&files, &config);
    let second = run_semantic(&files, &config);
    assert!(!first.diags.is_empty(), "fixture should produce findings");
    assert_eq!(messages(&first), messages(&second));
    assert_eq!(first.budget.to_json(), second.budget.to_json());
}

#[test]
fn mixed_fixture_reports_all_three_passes() {
    let out = run_one(
        "ca-core",
        "fn pi(ctx: &mut dyn Comm) { ctx.send_bytes(to, raw); }\n\
         fn alloc(buf: [u8; 4]) -> Vec<u8> { vec![0u8; u32::from_be_bytes(buf) as usize] }\n\
         impl S {\n\
         fn a(&self) { let g1 = self.x.lock(); let g2 = self.y.lock(); }\n\
         fn b(&self) { let g2 = self.y.lock(); let g1 = self.x.lock(); }\n\
         }\n",
    );
    let rules: std::collections::BTreeSet<&str> = out.diags.iter().map(|d| d.rule).collect();
    assert!(rules.contains("wire-taint"), "{:?}", messages(&out));
    assert!(rules.contains("comm-budget"), "{:?}", messages(&out));
    assert!(
        rules.contains("concurrency-discipline"),
        "{:?}",
        messages(&out)
    );
}

/// Self-hosting: the analyzer's own code must pass its own semantic
/// passes with zero findings — it allocates from trusted file sizes,
/// sends nothing, and holds no locks.
#[test]
fn analyzer_is_clean_under_its_own_semantic_passes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let sources = collect_sources(&root, &Options::default()).expect("workspace readable");
    let own: Vec<SourceFile> = sources
        .into_iter()
        .filter(|s| s.path.starts_with("crates/analyzer/"))
        .collect();
    assert!(
        !own.is_empty(),
        "self-hosting fixture found no analyzer sources"
    );
    let out = run_semantic(&own, &SemanticConfig::uniform(&["ca-analyzer"]));
    assert!(
        out.diags.is_empty(),
        "analyzer flags its own code: {:?}",
        messages(&out)
    );
}
