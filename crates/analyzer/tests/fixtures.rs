//! Fixture tests: every rule must fire on a known-bad snippet and stay
//! silent on the corresponding known-good snippet.

use ca_analyzer::{analyze_source, FileContext, Options, Severity};

fn codec_ctx() -> FileContext<'static> {
    FileContext {
        crate_name: "ca-codec",
        path: "crates/codec/src/lib.rs",
        is_test_code: false,
    }
}

fn runtime_ctx() -> FileContext<'static> {
    FileContext {
        crate_name: "ca-runtime",
        path: "crates/runtime/src/party.rs",
        is_test_code: false,
    }
}

fn run(ctx: &FileContext<'_>, src: &str) -> Vec<ca_analyzer::Diagnostic> {
    analyze_source(ctx, src, &Options::default())
}

fn rules_fired(ctx: &FileContext<'_>, src: &str) -> Vec<&'static str> {
    run(ctx, src).into_iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- panic-path

#[test]
fn panic_path_fires_on_unwrap() {
    let diags = run(&codec_ctx(), "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "panic-path");
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(diags[0].line, 1);
    assert_eq!(diags[0].file, "crates/codec/src/lib.rs");
}

#[test]
fn panic_path_fires_on_expect_and_panic_macro() {
    let fired = rules_fired(
        &codec_ctx(),
        "fn f(v: Option<u8>) -> u8 {\n    if v.is_none() { panic!(\"boom\") }\n    v.expect(\"checked\")\n}\n",
    );
    assert_eq!(fired, vec!["panic-path", "panic-path"]);
}

#[test]
fn panic_path_fires_on_slice_indexing_in_codec() {
    let diags = run(&codec_ctx(), "fn f(b: &[u8]) -> u8 { b[0] }\n");
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("slice indexing"));
}

#[test]
fn panic_path_allows_get_based_access() {
    let src = "fn f(b: &[u8]) -> Option<u8> { b.get(0).copied() }\n";
    assert!(run(&codec_ctx(), src).is_empty());
}

#[test]
fn panic_path_ignores_array_types_and_literals() {
    // `[u8; 4]` after `:`/`->`/keywords and array literals after `=` are
    // not index expressions.
    let src =
        "fn f(x: [u8; 4]) -> [u8; 4] { let y = [0u8; 4]; for v in [1, 2] { let _ = v; } x }\n";
    assert!(run(&codec_ctx(), src).is_empty());
}

#[test]
fn panic_path_does_not_apply_to_unscoped_crates() {
    let ctx = FileContext {
        crate_name: "ca-bench",
        path: "crates/bench/src/lib.rs",
        is_test_code: false,
    };
    assert!(run(&ctx, "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n").is_empty());
}

#[test]
fn panic_path_skips_cfg_test_modules() {
    let src = "fn good() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(run(&codec_ctx(), src).is_empty());
}

#[test]
fn panic_path_skips_comments_and_strings() {
    let src = "// v.unwrap() would panic\nfn f() { let s = \"x.unwrap()\"; let _ = s; }\n";
    assert!(run(&codec_ctx(), src).is_empty());
}

// ------------------------------------------------------------ unbounded-alloc

#[test]
fn unbounded_alloc_fires_on_unclamped_capacity() {
    let diags = run(
        &codec_ctx(),
        "fn f(len: usize) -> Vec<u8> { Vec::with_capacity(len) }\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "unbounded-alloc");
}

#[test]
fn unbounded_alloc_fires_on_reserve() {
    let fired = rules_fired(
        &runtime_ctx(),
        "fn f(v: &mut Vec<u8>, n: usize) { v.reserve(n); }\n",
    );
    assert_eq!(fired, vec!["unbounded-alloc"]);
}

#[test]
fn unbounded_alloc_ignores_fn_definitions() {
    let src = "pub fn with_capacity(cap: usize) -> Self { Self { buf: Vec::with_capacity(cap.min(1024)) } }\n";
    assert!(run(&codec_ctx(), src).is_empty());
}

#[test]
fn unbounded_alloc_allows_clamped_capacity() {
    let srcs = [
        "fn f(len: usize) -> Vec<u8> { Vec::with_capacity(len.min(MAX_DECODE_CAPACITY)) }\n",
        "fn f(len: usize) -> Vec<u8> { Vec::with_capacity(len.clamp(0, 1024)) }\n",
        "fn f() -> Vec<u8> { Vec::with_capacity(1024) }\n",
        "fn f() -> Vec<u8> { Vec::with_capacity(64 * 1024) }\n",
    ];
    for src in srcs {
        assert!(
            run(&codec_ctx(), src).is_empty(),
            "false positive on: {src}"
        );
    }
}

// ------------------------------------------------------------- nondeterminism

#[test]
fn nondeterminism_fires_on_hashmap_and_instant_now() {
    let fired = rules_fired(
        &runtime_ctx(),
        "use std::collections::HashMap;\nfn f() { let t = Instant::now(); let _ = t; }\n",
    );
    assert_eq!(fired, vec!["nondeterminism", "nondeterminism"]);
}

#[test]
fn nondeterminism_fires_on_thread_rng() {
    let fired = rules_fired(&runtime_ctx(), "fn f() { let mut r = thread_rng(); }\n");
    assert_eq!(fired, vec!["nondeterminism"]);
}

#[test]
fn nondeterminism_allows_btreemap_and_instant_arithmetic() {
    // `Instant` as a type (parameter, field) is fine — only `::now()` is
    // the nondeterministic entry point.
    let src = "use std::collections::BTreeMap;\nfn f(start: Instant) -> BTreeMap<u32, u32> { let _ = start; BTreeMap::new() }\n";
    assert!(run(&runtime_ctx(), src).is_empty());
}

#[test]
fn nondeterminism_not_checked_outside_deterministic_crates() {
    let ctx = FileContext {
        crate_name: "ca-bench",
        path: "crates/bench/src/lib.rs",
        is_test_code: false,
    };
    assert!(run(&ctx, "fn f() { let t = Instant::now(); let _ = t; }\n").is_empty());
}

// ----------------------------------------------------------------- wire-cast

#[test]
fn wire_cast_fires_on_narrowing_as() {
    let diags = run(&codec_ctx(), "fn f(v: u64) -> u8 { v as u8 }\n");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "wire-cast");
    assert_eq!(diags[0].severity, Severity::Warn);
}

#[test]
fn wire_cast_allows_widening_and_try_from() {
    let srcs = [
        "fn f(v: u8) -> u64 { v as u64 }\n",
        "fn f(v: u64) -> Result<u8, core::num::TryFromIntError> { u8::try_from(v) }\n",
    ];
    for src in srcs {
        assert!(
            run(&codec_ctx(), src).is_empty(),
            "false positive on: {src}"
        );
    }
}

#[test]
fn wire_cast_only_applies_to_codec() {
    assert!(run(&runtime_ctx(), "fn f(v: u64) -> u8 { v as u8 }\n").is_empty());
}

// --------------------------------------------------------- trace-discipline

#[test]
fn trace_discipline_fires_on_println_in_protocol_code() {
    let diags = run(
        &runtime_ctx(),
        "fn f(round: u64) { println!(\"round {round}\"); }\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "trace-discipline");
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("ca-trace"));
}

#[test]
fn trace_discipline_fires_on_eprintln_and_print() {
    let fired = rules_fired(
        &codec_ctx(),
        "fn f() {\n    eprint!(\"a\");\n    eprintln!(\"b\");\n    print!(\"c\");\n}\n",
    );
    assert_eq!(
        fired,
        vec!["trace-discipline", "trace-discipline", "trace-discipline"]
    );
}

#[test]
fn trace_discipline_allows_trace_events_and_writeln() {
    // The sanctioned paths: Comm trace hooks, and `writeln!` into an
    // explicit formatter/writer (report rendering, Display impls).
    let src = "fn f(ctx: &mut dyn Comm, out: &mut String) {\n    ctx.trace_note(\"k\", || \"v\".to_owned());\n    let _ = writeln!(out, \"table row\");\n}\n";
    assert!(run(&runtime_ctx(), src).is_empty());
}

#[test]
fn trace_discipline_skips_tests_and_reporting_crates() {
    let src = "fn f() { println!(\"dbg\"); }\n";
    for crate_name in ["ca-bench", "ca-trace", "ca-analyzer"] {
        let ctx = FileContext {
            crate_name,
            path: "crates/x/src/lib.rs",
            is_test_code: false,
        };
        assert!(run(&ctx, src).is_empty(), "false positive in {crate_name}");
    }
    let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"debugging a failure\"); }\n}\n";
    assert!(run(&runtime_ctx(), test_src).is_empty());
}

// ---------------------------------------------------------- bounded-channels

fn engine_ctx() -> FileContext<'static> {
    FileContext {
        crate_name: "ca-engine",
        path: "crates/engine/src/driver.rs",
        is_test_code: false,
    }
}

#[test]
fn bounded_channels_fires_on_mpsc_channel() {
    let diags = run(
        &engine_ctx(),
        "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); let _ = (tx, rx); }\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "bounded-channels");
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("sync_channel"));
}

#[test]
fn bounded_channels_fires_on_unbounded_constructors() {
    let fired = rules_fired(
        &engine_ctx(),
        "fn f() {\n    let a = crossbeam_channel::unbounded::<u8>();\n    let b = mpsc::unbounded_channel();\n    let _ = (a, b);\n}\n",
    );
    assert_eq!(fired, vec!["bounded-channels", "bounded-channels"]);
}

#[test]
fn bounded_channels_allows_sync_channel() {
    let src = "fn f(depth: usize) { let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(depth); let _ = (tx, rx); }\n";
    assert!(run(&engine_ctx(), src).is_empty());
}

#[test]
fn bounded_channels_ignores_bare_mentions_and_other_crates() {
    // A doc-comment or a variable named `channel` is not a constructor
    // call, and the rule stays scoped to the queue-bearing crates.
    let src = "// channel of unbounded capacity is the failure mode\nfn f(channel: u32) -> u32 { channel }\n";
    assert!(run(&engine_ctx(), src).is_empty());
    let src = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); let _ = (tx, rx); }\n";
    let bench_ctx = FileContext {
        crate_name: "ca-bench",
        path: "crates/bench/src/experiments.rs",
        is_test_code: false,
    };
    assert!(run(&bench_ctx, src).is_empty());
}

#[test]
fn bounded_channels_fires_in_the_tcp_runtime() {
    // The runtime's writer/event queues are its crash-tolerance
    // mechanism; an unbounded constructor there defeats the shedding
    // policy just as surely as in the engine.
    let src = "fn f() { let (tx, rx) = tokio::sync::mpsc::unbounded_channel::<u8>(); let _ = (tx, rx); }\n";
    let fired = rules_fired(&runtime_ctx(), src);
    assert_eq!(fired, vec!["bounded-channels"]);
    let src = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); let _ = (tx, rx); }\n";
    let fired = rules_fired(&runtime_ctx(), src);
    assert_eq!(fired, vec!["bounded-channels"]);
}

// -------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_audit_fires_everywhere_including_tests() {
    let ctx = FileContext {
        crate_name: "ca-bench",
        path: "crates/bench/tests/x.rs",
        is_test_code: true,
    };
    let fired = rules_fired(&ctx, "fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
    assert_eq!(fired, vec!["unsafe-audit"]);
}

#[test]
fn unsafe_audit_silent_on_safe_code() {
    assert!(run(&codec_ctx(), "fn f() -> u8 { 1 }\n").is_empty());
}

// ------------------------------------------------------------------- pragmas

#[test]
fn pragma_suppresses_next_line_finding() {
    let src = "// ca-lint: allow(panic-path) — value is produced two lines up\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    assert!(run(&codec_ctx(), src).is_empty());
}

#[test]
fn trailing_pragma_suppresses_same_line() {
    let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() } // ca-lint: allow(panic-path)\n";
    assert!(run(&codec_ctx(), src).is_empty());
}

#[test]
fn pragma_for_other_rule_does_not_suppress() {
    let src = "// ca-lint: allow(wire-cast)\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    assert_eq!(rules_fired(&codec_ctx(), src), vec!["panic-path"]);
}

#[test]
fn file_wide_pragma_suppresses_all_lines() {
    let src = "//! ca-lint: allow(nondeterminism) — clock injection boundary\nfn f() { let t = Instant::now(); let _ = t; }\nfn g() { let t = Instant::now(); let _ = t; }\n";
    assert!(run(&runtime_ctx(), src).is_empty());
}

// ------------------------------------------------------------- rule filtering

#[test]
fn only_rule_filter_restricts_findings() {
    let src = "fn f(v: Option<u64>) -> u8 { v.unwrap() as u8 }\n";
    let opts = Options {
        only_rule: Some("wire-cast".to_owned()),
        include_shims: false,
    };
    let fired: Vec<_> = analyze_source(&codec_ctx(), src, &opts)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    assert_eq!(fired, vec!["wire-cast"]);
}

#[test]
fn test_code_skips_all_but_unsafe_audit() {
    let ctx = FileContext {
        crate_name: "ca-codec",
        path: "crates/codec/tests/prop.rs",
        is_test_code: true,
    };
    let src =
        "fn f(v: Option<u64>) -> u8 { let t = Instant::now(); let _ = t; v.unwrap() as u8 }\n";
    assert!(run(&ctx, src).is_empty());
}
