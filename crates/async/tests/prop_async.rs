//! Property tests for the asynchronous building blocks: quorum tracking
//! and reliable broadcast must decide *identically* under arbitrary
//! seeded reorderings and drops (with ≤ t byzantine parties), and the
//! approximate-agreement instance must keep Definition 1's convexity
//! while reaching ε-agreement — for every sampled schedule.

use std::collections::BTreeMap;

use bytes::Bytes;
use ca_async::{
    Action, AsyncApprox, AsyncProtocol, DeliverySchedule, Executor, QuorumTracker, Rbc, RbcMsg,
    RbcTag, WitnessGather,
};
use ca_bits::Nat;
use ca_codec::{Decode, Encode};
use ca_net::{EdgeRule, PartyId};
use proptest::prelude::*;

const N: usize = 4;
const T: usize = 1;

/// splitmix64, for deterministic in-test shuffles.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffle<T2>(items: &mut [T2], seed: u64) {
    for i in (1..items.len()).rev() {
        let j = (mix(seed ^ i as u64) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// An honest RBC participant that broadcasts its own value (slot seq 0)
/// and decides once all `n − t` honest-origin slots have been delivered.
/// Output renders the honest-origin payloads — the quantity that must be
/// schedule-invariant.
struct RbcNode {
    me: PartyId,
    value: Vec<u8>,
    rbc: Rbc,
    delivered: BTreeMap<usize, Vec<u8>>,
    honest: usize,
}

impl RbcNode {
    fn new(me: PartyId, value: Vec<u8>) -> Self {
        Self {
            me,
            value,
            rbc: Rbc::new(N, T),
            delivered: BTreeMap::new(),
            honest: N - T,
        }
    }

    fn multicast(outgoing: Vec<RbcMsg>) -> Vec<Action> {
        outgoing
            .into_iter()
            .map(|m| Action::Broadcast {
                payload: Bytes::from(m.encode_to_vec()),
            })
            .collect()
    }
}

impl AsyncProtocol for RbcNode {
    type Output = String;

    fn on_start(&mut self) -> Vec<Action> {
        let out = self.rbc.broadcast(self.me, 0, self.value.clone());
        Self::multicast(out.outgoing)
    }

    fn on_message(&mut self, from: PartyId, payload: &Bytes) -> Vec<Action> {
        let Ok(msg) = RbcMsg::decode_from_slice(payload) else {
            return Vec::new();
        };
        let out = self.rbc.on_message(from, msg);
        for (tag, bytes) in out.delivered {
            self.delivered.insert(tag.origin.0, bytes);
        }
        Self::multicast(out.outgoing)
    }

    fn output(&self) -> Option<String> {
        // Decide on the honest origins' slots (0..n−t): those must land
        // under every schedule; the byzantine slot may or may not.
        if (0..self.honest).all(|o| self.delivered.contains_key(&o)) {
            Some(
                (0..self.honest)
                    .map(|o| format!("{o}:{:?}", self.delivered[&o]))
                    .collect::<Vec<_>>()
                    .join(","),
            )
        } else {
            None
        }
    }
}

/// Byzantine origin: equivocates slot `(me, 0)` — Init "a" to low-index
/// parties, Init "b" to the rest — and otherwise stays silent.
struct Equivocator {
    me: PartyId,
}

impl AsyncProtocol for Equivocator {
    type Output = String;
    fn on_start(&mut self) -> Vec<Action> {
        let tag = RbcTag {
            origin: self.me,
            seq: 0,
        };
        (0..N)
            .map(|to| {
                let payload = if to < N / 2 {
                    b"a".to_vec()
                } else {
                    b"b".to_vec()
                };
                Action::Send {
                    to: PartyId(to),
                    payload: Bytes::from(RbcMsg::Init { tag, payload }.encode_to_vec()),
                }
            })
            .collect()
    }
    fn on_message(&mut self, _from: PartyId, _payload: &Bytes) -> Vec<Action> {
        Vec::new()
    }
    fn output(&self) -> Option<String> {
        None
    }
}

/// Runs N−1 honest RBC nodes plus one equivocating byzantine origin
/// (party N−1) under `schedule`; returns each honest party's decision.
fn run_rbc_network(schedule: DeliverySchedule) -> Vec<Option<String>> {
    let mut parties: Vec<Box<dyn AsyncProtocol<Output = String>>> = Vec::new();
    for i in 0..N - 1 {
        parties.push(Box::new(RbcNode::new(PartyId(i), vec![i as u8; 3])));
    }
    parties.push(Box::new(Equivocator { me: PartyId(N - 1) }));
    let report = Executor::new(parties, schedule).run();
    report.outputs.into_iter().take(N - 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// RBC decisions are a pure function of the message set, not the
    /// schedule: arbitrary seeds (reorderings) and drops restricted to
    /// the byzantine party's edges all yield the same delivery.
    #[test]
    fn prop_rbc_decides_identically_under_schedules(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        drop_pct in 0u8..101,
    ) {
        let schedule = |seed: u64| {
            DeliverySchedule::uniform(seed, 3, 9)
                // Drops only on edges leaving the byzantine origin: honest
                // links must be reliable for RBC's totality to bind.
                .with_rule(EdgeRule {
                    from: Some(N - 1),
                    to: None,
                    extra_delay: 0,
                    drop_pct,
                })
        };
        let a = run_rbc_network(schedule(seed_a));
        let b = run_rbc_network(schedule(seed_b));
        for (i, out) in a.iter().enumerate() {
            prop_assert!(out.is_some(), "honest party {i} failed to deliver honest slots");
        }
        prop_assert_eq!(&a[0], &a[1]);
        prop_assert_eq!(&a[0], &a[2]);
        prop_assert_eq!(a, b, "decisions must not depend on the schedule seed");
    }

    /// Threshold crossings of the quorum tracker do not depend on the
    /// order support arrives in.
    #[test]
    fn prop_quorum_tracker_is_order_invariant(
        votes_raw in proptest::collection::vec(any::<u64>(), 1..60),
        threshold in 1usize..6,
        seed in any::<u64>(),
    ) {
        // The shim has no tuple strategies: derive (key, party) from bits.
        let votes: Vec<(u8, usize)> = votes_raw
            .iter()
            .map(|v| ((v % 6) as u8, ((v >> 8) % 7) as usize))
            .collect();
        let mut forward = QuorumTracker::new(threshold);
        for (key, party) in &votes {
            forward.support(*key, *party);
        }
        let mut shuffled_votes = votes.clone();
        shuffle(&mut shuffled_votes, seed);
        let mut shuffled = QuorumTracker::new(threshold);
        for (key, party) in &shuffled_votes {
            shuffled.support(*key, *party);
        }
        for key in 0u8..6 {
            prop_assert_eq!(forward.count(&key), shuffled.count(&key));
            prop_assert_eq!(forward.reached(&key), shuffled.reached(&key));
        }
    }

    /// Witness-gather completion is monotone in the event set: any
    /// interleaving of the same deliveries and claims completes alike.
    #[test]
    fn prop_witness_gather_is_order_invariant(
        item_mask in 0u8..16,
        claims_raw in proptest::collection::vec(any::<u64>(), 0..8),
        seed in any::<u64>(),
    ) {
        #[derive(Clone)]
        enum Ev {
            Deliver(usize),
            Claim(usize, Vec<usize>),
        }
        // Delivered items and witness claims are derived from raw bits
        // (the shim has no set/tuple strategies): claimant from the low
        // bits, the claimed set from a 4-bit membership mask.
        let mut events: Vec<Ev> = (0..N)
            .filter(|i| item_mask & (1 << i) != 0)
            .map(Ev::Deliver)
            .collect();
        for raw in &claims_raw {
            let claimant = (raw % N as u64) as usize;
            let set: Vec<usize> = (0..N).filter(|i| (raw >> (8 + i)) & 1 != 0).collect();
            events.push(Ev::Claim(claimant, set));
        }
        let run = |events: &[Ev]| {
            let mut g = WitnessGather::new(N, T);
            for ev in events {
                match ev {
                    Ev::Deliver(i) => {
                        g.deliver(*i);
                    }
                    Ev::Claim(c, set) => {
                        g.on_witness(*c, set);
                    }
                }
            }
            g.completed()
        };
        let forward = run(&events);
        let mut reversed = events.clone();
        reversed.reverse();
        let mut shuffled = events.clone();
        shuffle(&mut shuffled, seed);
        prop_assert_eq!(forward, run(&reversed));
        prop_assert_eq!(forward, run(&shuffled));
    }

    /// The async AAA instance: under arbitrary schedules (and an optional
    /// crash) surviving parties reach ε-agreement inside the input hull,
    /// and the run is deterministic per seed.
    #[test]
    fn prop_aaa_hull_agreement_determinism(
        seed in any::<u64>(),
        raw in proptest::collection::vec(0u64..1_000_000, N),
        crash_raw in any::<u64>(),
    ) {
        // Half the cases crash one party at a virtual time in [1, 60).
        let crash: Option<(usize, u64)> = if crash_raw.is_multiple_of(2) {
            None
        } else {
            Some((((crash_raw >> 1) % N as u64) as usize, 1 + (crash_raw >> 8) % 59))
        };
        let rounds = 21; // spread < 2^20, plus one
        let run = || {
            let parties: Vec<AsyncApprox> = (0..N)
                .map(|i| AsyncApprox::new(N, T, PartyId(i), Nat::from_u64(raw[i]), rounds))
                .collect();
            let mut exec = Executor::new(parties, DeliverySchedule::uniform(seed, 4, 11));
            if let Some((party, at)) = crash {
                exec = exec.crash_at(PartyId(party), at);
            }
            exec.run()
        };
        let report = run();
        let outs: Vec<Nat> = report.surviving_outputs().into_iter().cloned().collect();
        prop_assert_eq!(outs.len(), N - report.crashed.len(), "every survivor decides");
        let lo = outs.iter().min().unwrap();
        let hi = outs.iter().max().unwrap();
        let spread = hi.checked_sub(lo).unwrap();
        prop_assert!(spread <= Nat::one(), "ε-agreement violated: {:?}", outs);
        // Convexity against the hull of ALL inputs that participated
        // (a crashed party is a fault, not a hull member — but its value
        // only ever pulls outputs inward via trimming, so the honest
        // hull bound below uses survivors' inputs only).
        let honest_inputs: Vec<u64> = (0..N)
            .filter(|i| !report.crashed.contains(i))
            .map(|i| raw[i])
            .collect();
        let min_in = Nat::from_u64(*honest_inputs.iter().min().unwrap());
        let max_in = Nat::from_u64(*honest_inputs.iter().max().unwrap());
        prop_assert!(
            *lo >= min_in && *hi <= max_in,
            "outputs {:?} escape honest hull [{}, {}]",
            outs, min_in, max_in
        );
        // Byte-level determinism of the whole report.
        let again = run();
        prop_assert_eq!(report.outputs, again.outputs);
        prop_assert_eq!(report.decide_time, again.decide_time);
        prop_assert_eq!(report.final_time, again.final_time);
    }
}
