//! Bracha-style reliable broadcast (Init → Echo → Ready).
//!
//! Guarantees with `t < n/3` byzantine parties, on a purely asynchronous
//! network:
//!
//! * **Validity** — if the origin is honest, every honest party delivers
//!   its payload.
//! * **Consistency** — no two honest parties deliver different payloads
//!   for the same `(origin, seq)` slot, even if the origin equivocates.
//! * **Totality** — if any honest party delivers a slot, every honest
//!   party eventually does (Ready amplification at `t + 1`).
//!
//! Echo and Ready counts are kept **per payload** (keyed by the exact
//! bytes): an equivocating origin splits the echo vote and no payload
//! reaches the `n − t` echo quorum, so consistency never depends on
//! trusting the origin. Each sender gets one echo vote and one ready vote
//! per slot — later votes from the same sender are discarded.

use std::collections::{BTreeMap, BTreeSet};

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};
use ca_net::PartyId;

use crate::quorum::QuorumTracker;

/// Identifies one broadcast slot: `origin`'s `seq`-th broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RbcTag {
    /// The broadcasting party.
    pub origin: PartyId,
    /// Origin-local sequence number (the async round, for AAA).
    pub seq: u64,
}

impl Encode for RbcTag {
    fn encode(&self, w: &mut Writer) {
        self.origin.encode(w);
        self.seq.encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.origin.encoded_len() + self.seq.encoded_len()
    }
}

impl Decode for RbcTag {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RbcTag {
            origin: PartyId::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

/// Bracha's three message kinds. Every kind is multicast to all parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbcMsg {
    /// The origin's proposal for its slot.
    Init {
        /// Slot being broadcast.
        tag: RbcTag,
        /// Proposed payload.
        payload: Vec<u8>,
    },
    /// "I heard this Init" — sent once per slot.
    Echo {
        /// Slot being echoed.
        tag: RbcTag,
        /// Echoed payload.
        payload: Vec<u8>,
    },
    /// "An echo/ready quorum exists for this payload" — sent once per slot.
    Ready {
        /// Slot being confirmed.
        tag: RbcTag,
        /// Confirmed payload.
        payload: Vec<u8>,
    },
}

impl Encode for RbcMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            RbcMsg::Init { tag, payload } => {
                w.put_u8(0);
                tag.encode(w);
                payload.encode(w);
            }
            RbcMsg::Echo { tag, payload } => {
                w.put_u8(1);
                tag.encode(w);
                payload.encode(w);
            }
            RbcMsg::Ready { tag, payload } => {
                w.put_u8(2);
                tag.encode(w);
                payload.encode(w);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        let (tag, payload) = match self {
            RbcMsg::Init { tag, payload }
            | RbcMsg::Echo { tag, payload }
            | RbcMsg::Ready { tag, payload } => (tag, payload),
        };
        1 + tag.encoded_len() + payload.encoded_len()
    }
}

impl Decode for RbcMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let kind = r.get_u8()?;
        let tag = RbcTag::decode(r)?;
        let payload = Vec::<u8>::decode(r)?;
        match kind {
            0 => Ok(RbcMsg::Init { tag, payload }),
            1 => Ok(RbcMsg::Echo { tag, payload }),
            2 => Ok(RbcMsg::Ready { tag, payload }),
            value => Err(CodecError::InvalidDiscriminant {
                type_name: "RbcMsg",
                value: value.into(),
            }),
        }
    }
}

/// Per-slot voting state.
#[derive(Debug)]
struct Slot {
    /// Only the first Init from the origin is acted on.
    init_seen: bool,
    /// One echo vote per sender per slot.
    echo_voters: BTreeSet<usize>,
    /// One ready vote per sender per slot.
    ready_voters: BTreeSet<usize>,
    /// Echo quorum (`n − t`) per payload.
    echoes: QuorumTracker<Vec<u8>>,
    /// Ready amplification threshold (`t + 1`) per payload.
    ready_amplify: QuorumTracker<Vec<u8>>,
    /// Delivery threshold (`2t + 1`) per payload.
    ready_deliver: QuorumTracker<Vec<u8>>,
    echoed: bool,
    readied: bool,
    delivered: bool,
}

/// What a batch of RBC processing produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RbcOutcome {
    /// Messages to multicast to every party (self included).
    pub outgoing: Vec<RbcMsg>,
    /// Slots delivered by this step, with their payloads.
    pub delivered: Vec<(RbcTag, Vec<u8>)>,
}

/// One party's view of all reliable-broadcast slots.
#[derive(Debug)]
pub struct Rbc {
    n: usize,
    t: usize,
    slots: BTreeMap<(usize, u64), Slot>,
}

impl Rbc {
    /// An RBC participant among `n` parties tolerating `t` byzantine.
    pub fn new(n: usize, t: usize) -> Self {
        Self {
            n,
            t,
            slots: BTreeMap::new(),
        }
    }

    fn slot(&mut self, tag: RbcTag) -> &mut Slot {
        let (n, t) = (self.n, self.t);
        self.slots
            .entry((tag.origin.0, tag.seq))
            .or_insert_with(|| Slot {
                init_seen: false,
                echo_voters: BTreeSet::new(),
                ready_voters: BTreeSet::new(),
                echoes: QuorumTracker::new(n - t),
                ready_amplify: QuorumTracker::new(t + 1),
                ready_deliver: QuorumTracker::new(2 * t + 1),
                echoed: false,
                readied: false,
                delivered: false,
            })
    }

    /// Starts broadcasting `payload` in our slot `seq` (as `origin`).
    /// Returns the Init to multicast; the state machine advances when the
    /// host loops our own copy back through [`Rbc::on_message`].
    pub fn broadcast(&mut self, origin: PartyId, seq: u64, payload: Vec<u8>) -> RbcOutcome {
        RbcOutcome {
            outgoing: vec![RbcMsg::Init {
                tag: RbcTag { origin, seq },
                payload,
            }],
            delivered: Vec::new(),
        }
    }

    /// Processes one RBC message from `from` (already decoded).
    pub fn on_message(&mut self, from: PartyId, msg: RbcMsg) -> RbcOutcome {
        let mut out = RbcOutcome::default();
        if from.0 >= self.n {
            return out;
        }
        match msg {
            RbcMsg::Init { tag, payload } => {
                // Channels are authenticated: an Init is only meaningful
                // from the slot's origin, and only its first one counts.
                if from != tag.origin {
                    return out;
                }
                let slot = self.slot(tag);
                if slot.init_seen {
                    return out;
                }
                slot.init_seen = true;
                if !slot.echoed {
                    slot.echoed = true;
                    out.outgoing.push(RbcMsg::Echo { tag, payload });
                }
            }
            RbcMsg::Echo { tag, payload } => {
                let slot = self.slot(tag);
                if !slot.echo_voters.insert(from.0) {
                    return out;
                }
                if slot.echoes.support(payload.clone(), from.0) && !slot.readied {
                    slot.readied = true;
                    out.outgoing.push(RbcMsg::Ready { tag, payload });
                }
            }
            RbcMsg::Ready { tag, payload } => {
                let slot = self.slot(tag);
                if !slot.ready_voters.insert(from.0) {
                    return out;
                }
                if slot.ready_amplify.support(payload.clone(), from.0) && !slot.readied {
                    slot.readied = true;
                    out.outgoing.push(RbcMsg::Ready {
                        tag,
                        payload: payload.clone(),
                    });
                }
                if slot.ready_deliver.support(payload.clone(), from.0) && !slot.delivered {
                    slot.delivered = true;
                    out.delivered.push((tag, payload));
                }
            }
        }
        out
    }

    /// Whether the given slot has been delivered locally.
    pub fn is_delivered(&self, tag: RbcTag) -> bool {
        self.slots
            .get(&(tag.origin.0, tag.seq))
            .is_some_and(|s| s.delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 4;
    const T: usize = 1;

    /// Runs a fully-connected network of `Rbc` machines to quiescence,
    /// delivering every multicast to every party in FIFO order.
    fn settle(
        machines: &mut [Rbc],
        initial: Vec<(PartyId, RbcMsg)>,
    ) -> Vec<Vec<(RbcTag, Vec<u8>)>> {
        let mut delivered: Vec<Vec<(RbcTag, Vec<u8>)>> = vec![Vec::new(); machines.len()];
        let mut queue: Vec<(PartyId, RbcMsg)> = initial;
        while let Some((from, msg)) = queue.pop() {
            for (i, machine) in machines.iter_mut().enumerate() {
                let out = machine.on_message(from, msg.clone());
                delivered[i].extend(out.delivered);
                for m in out.outgoing {
                    queue.push((PartyId(i), m));
                }
            }
        }
        delivered
    }

    #[test]
    fn honest_broadcast_delivers_everywhere() {
        let mut machines: Vec<Rbc> = (0..N).map(|_| Rbc::new(N, T)).collect();
        let tag = RbcTag {
            origin: PartyId(0),
            seq: 7,
        };
        let init = machines[0]
            .broadcast(PartyId(0), 7, b"hello".to_vec())
            .outgoing
            .remove(0);
        let delivered = settle(&mut machines, vec![(PartyId(0), init)]);
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d, &vec![(tag, b"hello".to_vec())], "party {i}");
            assert!(machines[i].is_delivered(tag));
        }
    }

    #[test]
    fn equivocating_origin_cannot_split_delivery() {
        // Origin 3 (byzantine) sends Init "a" to half, Init "b" to the
        // other half. With per-payload echo counting neither payload can
        // reach the n − t echo quorum from honest parties alone… unless
        // one side's echoes dominate — in which case *all* honest parties
        // deliver that same payload. Never two different ones.
        let mut machines: Vec<Rbc> = (0..N).map(|_| Rbc::new(N, T)).collect();
        let tag = RbcTag {
            origin: PartyId(3),
            seq: 0,
        };
        // Hand-deliver conflicting Inits (bypassing the full mesh).
        let mut queue = Vec::new();
        for (i, machine) in machines.iter_mut().enumerate().take(3) {
            let payload = if i < 2 { b"a".to_vec() } else { b"b".to_vec() };
            let out = machine.on_message(PartyId(3), RbcMsg::Init { tag, payload });
            for m in out.outgoing {
                queue.push((PartyId(i), m));
            }
        }
        let delivered = settle(&mut machines, queue);
        let outputs: BTreeSet<Vec<u8>> = delivered
            .iter()
            .take(3) // honest parties
            .flat_map(|d| d.iter().map(|(_, p)| p.clone()))
            .collect();
        assert!(
            outputs.len() <= 1,
            "honest parties delivered conflicting payloads: {outputs:?}"
        );
    }

    #[test]
    fn forged_init_from_non_origin_is_ignored() {
        let mut rbc = Rbc::new(N, T);
        let tag = RbcTag {
            origin: PartyId(0),
            seq: 0,
        };
        let out = rbc.on_message(
            PartyId(2), // not the origin
            RbcMsg::Init {
                tag,
                payload: b"forged".to_vec(),
            },
        );
        assert_eq!(out, RbcOutcome::default());
    }

    #[test]
    fn duplicate_votes_do_not_advance_thresholds() {
        let mut rbc = Rbc::new(N, T);
        let tag = RbcTag {
            origin: PartyId(0),
            seq: 0,
        };
        // The same sender echoing three times is one vote, not a quorum.
        for _ in 0..3 {
            let out = rbc.on_message(
                PartyId(1),
                RbcMsg::Echo {
                    tag,
                    payload: b"x".to_vec(),
                },
            );
            assert!(out.outgoing.is_empty());
        }
    }

    #[test]
    fn wire_round_trip() {
        let tag = RbcTag {
            origin: PartyId(2),
            seq: 9,
        };
        for msg in [
            RbcMsg::Init {
                tag,
                payload: vec![1, 2, 3],
            },
            RbcMsg::Echo {
                tag,
                payload: vec![],
            },
            RbcMsg::Ready {
                tag,
                payload: vec![255; 40],
            },
        ] {
            let bytes = msg.encode_to_vec();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(RbcMsg::decode_from_slice(&bytes).unwrap(), msg);
        }
        assert!(RbcMsg::decode_from_slice(&[9, 0, 0, 0]).is_err());
    }
}
