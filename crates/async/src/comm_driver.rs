//! Hosting an [`AsyncProtocol`] on a round-based [`Comm`] substrate.
//!
//! The adapter lets the same state machine run under the lock-step
//! simulator (and therefore inside `ca-engine` sessions, next to
//! synchronous protocols): each `next_round` inbox becomes a batch of
//! `on_message` events, actions turn into `send_bytes` calls, and
//! [`Action::SetTimer`] fires at the next round boundary (a round *is*
//! the substrate's time unit). A quorum-driven protocol doesn't care —
//! it only sees messages arriving in some order — which is precisely the
//! point: round barriers are one legal asynchronous schedule.

use ca_net::{Comm, PartyId};
use ca_trace::Event as TraceEvent;

use crate::protocol::{Action, AsyncProtocol};

/// Drives `proto` over `ctx` until it decides or `max_rounds` barriers
/// pass, returning the decision (or `None` on round exhaustion).
///
/// Tracing rides the substrate: sends/deliveries are recorded by the
/// `Comm` executor under the caller's current scope, `Input`/`Decide`
/// are emitted here from the protocol's own reporting.
pub fn run_on_comm<P: AsyncProtocol>(
    ctx: &mut dyn Comm,
    mut proto: P,
    max_rounds: u64,
) -> Option<P::Output>
where
    P::Output: std::fmt::Display,
{
    if ctx.trace_enabled() {
        if let Some(value) = proto.input_repr() {
            ctx.trace(TraceEvent::Input { value });
        }
    }
    let me = ctx.me();
    // Timers set in round r fire when round r + ⌈after⌉ begins (minimum
    // one barrier — "later than now" has round granularity here).
    let mut timers: Vec<(u64, u64)> = Vec::new();
    let mut self_inbox: Vec<bytes::Bytes> = Vec::new();
    let actions = proto.on_start();
    apply(ctx, me, 0, actions, &mut timers, &mut self_inbox);

    let mut round: u64 = 0;
    while proto.output().is_none() && round < max_rounds {
        // Self-deliveries are local: hand them over before the barrier.
        for payload in std::mem::take(&mut self_inbox) {
            let actions = proto.on_message(me, &payload);
            apply(ctx, me, round, actions, &mut timers, &mut self_inbox);
            if proto.output().is_some() {
                break;
            }
        }
        if proto.output().is_some() {
            break;
        }
        let inbox = ctx.next_round();
        round += 1;
        for from in inbox.senders().collect::<Vec<_>>() {
            if from == me {
                continue; // already handled pre-barrier
            }
            for payload in inbox.raw_from(from).to_vec() {
                let actions = proto.on_message(from, &payload);
                apply(ctx, me, round, actions, &mut timers, &mut self_inbox);
            }
        }
        let due: Vec<u64> = {
            let (fire, keep): (Vec<_>, Vec<_>) = timers.iter().partition(|(at, _)| *at <= round);
            timers = keep;
            fire.into_iter().map(|(_, id)| id).collect()
        };
        for id in due {
            let actions = proto.on_timer(id);
            apply(ctx, me, round, actions, &mut timers, &mut self_inbox);
        }
    }

    let output = proto.output();
    if ctx.trace_enabled() {
        if let Some(value) = &output {
            ctx.trace(TraceEvent::Decide {
                value: value.to_string(),
            });
        }
    }
    output
}

fn apply(
    ctx: &mut dyn Comm,
    me: PartyId,
    round: u64,
    actions: Vec<Action>,
    timers: &mut Vec<(u64, u64)>,
    self_inbox: &mut Vec<bytes::Bytes>,
) {
    for action in actions {
        match action {
            Action::Send { to, payload } => {
                if to == me {
                    self_inbox.push(payload);
                } else {
                    // ca-budget: metered — substrate executor meters per-scope
                    ctx.send_bytes(to, payload);
                }
            }
            Action::Broadcast { payload } => {
                for i in 0..ctx.n() {
                    let to = PartyId(i);
                    if to == me {
                        self_inbox.push(payload.clone());
                    } else {
                        // ca-budget: metered — substrate executor meters per-scope
                        ctx.send_bytes(to, payload.clone());
                    }
                }
            }
            Action::SetTimer { id, after } => {
                timers.push((round + after.max(1), id));
            }
            Action::Note { label, value } => {
                ctx.trace(TraceEvent::Note { label, value });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aaa::AsyncApprox;
    use ca_bits::Nat;
    use ca_net::{CommExt, Sim};

    #[test]
    fn aaa_runs_on_the_lockstep_simulator() {
        let inputs = [0u64, 10, 20, 30];
        let report = Sim::new(4).run(|ctx, id| {
            ctx.scoped("aaa", |ctx| {
                let proto = AsyncApprox::new(ctx.n(), ctx.t(), id, Nat::from_u64(inputs[id.0]), 8);
                run_on_comm(ctx, proto, 200)
            })
        });
        let outs: Vec<Nat> = report
            .honest_outputs()
            .into_iter()
            .map(|o| o.clone().expect("decided"))
            .collect();
        assert_eq!(outs.len(), 4);
        let lo = outs.iter().min().unwrap().clone();
        let hi = outs.iter().max().unwrap().clone();
        let spread = hi.checked_sub(&lo).unwrap();
        assert!(
            spread <= Nat::one(),
            "ε-agreement (ε = 1) expected, got {outs:?}"
        );
        // Convexity: outputs inside [0, 30].
        assert!(lo >= Nat::zero() && hi <= Nat::from_u64(30));
    }

    #[test]
    fn timer_fires_after_a_barrier() {
        use crate::protocol::AsyncProtocol;
        struct TimerProto {
            out: Option<u64>,
        }
        impl AsyncProtocol for TimerProto {
            type Output = u64;
            fn on_start(&mut self) -> Vec<Action> {
                vec![Action::SetTimer { id: 5, after: 1 }]
            }
            fn on_message(&mut self, _f: PartyId, _p: &bytes::Bytes) -> Vec<Action> {
                Vec::new()
            }
            fn on_timer(&mut self, id: u64) -> Vec<Action> {
                self.out = Some(id);
                Vec::new()
            }
            fn output(&self) -> Option<u64> {
                self.out
            }
        }
        let report = Sim::new(3).run(|ctx, _id| run_on_comm(ctx, TimerProto { out: None }, 10));
        for out in report.honest_outputs() {
            assert_eq!(*out, Some(5));
        }
    }
}
