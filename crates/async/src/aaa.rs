//! Asynchronous approximate agreement over [`Nat`] values.
//!
//! The Erbes–Wattenhofer/AAD-style iteration, driven entirely by quorums
//! (no Δ anywhere):
//!
//! 1. **Disperse** — each async round `r`, reliably broadcast the current
//!    value ([`crate::Rbc`] slot `(me, r)`), so byzantine parties are
//!    bound to a single value per round.
//! 2. **Gather** — after delivering `n − t` round-`r` values, announce
//!    *which* origins were seen and collect `n − t` witness claims each
//!    covered by the local delivered set ([`crate::WitnessGather`]). Any
//!    two honest parties then share ≥ `n − 2t ≥ t + 1` witnesses, which
//!    keeps their value sets close enough for the update rule to contract.
//! 3. **Update** — sort the delivered values, trim the `t` lowest and `t`
//!    highest, and move to the midpoint of the trimmed extremes. With
//!    ≤ `t` byzantine values in any delivered set, the trimmed range is
//!    contained in the honest hull — so every honest value stays in the
//!    hull (convexity) while the honest spread halves round over round.
//! 4. After a fixed number of rounds, decide the current value.
//!
//! Over the integers the spread contraction floors at 1 (`⌊(a+b)/2⌋`
//! cannot split adjacent naturals), so "decide" here means ε-agreement
//! with ε = 1 — the async analogue of the approximate core the exact
//! paper stack sharpens with byzantine agreement.

use std::collections::BTreeMap;

use bytes::Bytes;
use ca_bits::Nat;
use ca_codec::{CodecError, Decode, Encode, Reader, Writer};
use ca_net::PartyId;

use crate::protocol::{Action, AsyncProtocol};
use crate::quorum::WitnessGather;
use crate::rbc::{Rbc, RbcMsg};

/// Wire envelope for the AAA instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AaaMsg {
    /// A reliable-broadcast step (value dispersal).
    Rbc(RbcMsg),
    /// "My round-`round` delivered set is exactly `set`."
    Witness {
        /// Async round the claim is about.
        round: u64,
        /// Origins whose round-`round` values the claimant delivered.
        set: Vec<u64>,
    },
}

impl Encode for AaaMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            AaaMsg::Rbc(msg) => {
                w.put_u8(0);
                msg.encode(w);
            }
            AaaMsg::Witness { round, set } => {
                w.put_u8(1);
                round.encode(w);
                set.encode(w);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            AaaMsg::Rbc(msg) => msg.encoded_len(),
            AaaMsg::Witness { round, set } => round.encoded_len() + set.encoded_len(),
        }
    }
}

impl Decode for AaaMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(AaaMsg::Rbc(RbcMsg::decode(r)?)),
            1 => Ok(AaaMsg::Witness {
                round: u64::decode(r)?,
                set: Vec::<u64>::decode(r)?,
            }),
            value => Err(CodecError::InvalidDiscriminant {
                type_name: "AaaMsg",
                value: value.into(),
            }),
        }
    }
}

/// Rounds needed to shrink an input spread of `spread` to ≤ 1: the
/// trimmed-midpoint update halves the honest spread each round.
pub fn rounds_for_spread(spread: &Nat) -> u64 {
    spread.bit_len() as u64 + 1
}

/// One party's asynchronous approximate-agreement instance.
#[derive(Debug)]
pub struct AsyncApprox {
    n: usize,
    t: usize,
    me: PartyId,
    /// Total async rounds before deciding.
    rounds: u64,
    /// Current async round (= RBC seq of our in-flight broadcast).
    round: u64,
    input: Nat,
    value: Nat,
    rbc: Rbc,
    /// Values delivered per round, by origin. RBC consistency makes this
    /// map identical (eventually) at all honest parties.
    delivered: BTreeMap<u64, BTreeMap<usize, Nat>>,
    gathers: BTreeMap<u64, WitnessGather>,
    decided: Option<Nat>,
}

impl AsyncApprox {
    /// A party with the given `input`, running `rounds` async rounds
    /// among `n` parties with corruption budget `t`.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n` (the witness technique's requirement).
    pub fn new(n: usize, t: usize, me: PartyId, input: Nat, rounds: u64) -> Self {
        assert!(3 * t < n, "async AA requires t < n/3 (t = {t}, n = {n})");
        Self {
            n,
            t,
            me,
            rounds,
            round: 0,
            value: input.clone(),
            input,
            rbc: Rbc::new(n, t),
            delivered: BTreeMap::new(),
            gathers: BTreeMap::new(),
            decided: None,
        }
    }

    /// The async round this party is currently in.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    fn wrap_rbc(outgoing: Vec<RbcMsg>, actions: &mut Vec<Action>) {
        for msg in outgoing {
            actions.push(Action::Broadcast {
                payload: Bytes::from(AaaMsg::Rbc(msg).encode_to_vec()),
            });
        }
    }

    fn gather_for(
        gathers: &mut BTreeMap<u64, WitnessGather>,
        n: usize,
        t: usize,
        round: u64,
    ) -> &mut WitnessGather {
        gathers
            .entry(round)
            .or_insert_with(|| WitnessGather::new(n, t))
    }

    /// Folds a [`WitnessGather`] step for `round` into `actions`, then
    /// advances through any rounds whose gathers are complete.
    fn absorb_step(
        &mut self,
        round: u64,
        step: crate::quorum::WitnessStep,
        actions: &mut Vec<Action>,
    ) {
        if let Some(set) = step.announce {
            let set: Vec<u64> = set.into_iter().map(|i| i as u64).collect();
            actions.push(Action::Broadcast {
                payload: Bytes::from(AaaMsg::Witness { round, set }.encode_to_vec()),
            });
        }
        self.advance_ready_rounds(actions);
    }

    /// While the *current* round's gather is complete, apply the trimmed
    /// midpoint update and move on (future rounds may already be complete
    /// when witnesses raced ahead of our own deliveries).
    fn advance_ready_rounds(&mut self, actions: &mut Vec<Action>) {
        while self.decided.is_none()
            && self
                .gathers
                .get(&self.round)
                .is_some_and(WitnessGather::completed)
        {
            let mut vals: Vec<Nat> = self
                .delivered
                .get(&self.round)
                .map(|m| m.values().cloned().collect())
                .unwrap_or_default();
            vals.sort();
            // Completion implies n − t ≥ 2t + 1 delivered values, so the
            // trim indices are always in range.
            let lo = &vals[self.t];
            let hi = &vals[vals.len() - 1 - self.t];
            self.value = lo.midpoint(hi);
            actions.push(Action::Note {
                label: format!("aaa_round_{}", self.round),
                value: self.value.to_string(),
            });
            self.round += 1;
            if self.round >= self.rounds {
                self.decided = Some(self.value.clone());
            } else {
                let out = self
                    .rbc
                    .broadcast(self.me, self.round, self.value.encode_to_vec());
                Self::wrap_rbc(out.outgoing, actions);
            }
        }
    }
}

impl AsyncProtocol for AsyncApprox {
    type Output = Nat;

    fn on_start(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.rounds == 0 {
            self.decided = Some(self.value.clone());
            return actions;
        }
        let out = self.rbc.broadcast(self.me, 0, self.value.encode_to_vec());
        Self::wrap_rbc(out.outgoing, &mut actions);
        actions
    }

    fn on_message(&mut self, from: PartyId, payload: &Bytes) -> Vec<Action> {
        let mut actions = Vec::new();
        // Byzantine bytes decode to garbage or nothing: both are silence.
        let Ok(msg) = AaaMsg::decode_from_slice(payload) else {
            return actions;
        };
        match msg {
            AaaMsg::Rbc(rbc_msg) => {
                let tag = match &rbc_msg {
                    RbcMsg::Init { tag, .. }
                    | RbcMsg::Echo { tag, .. }
                    | RbcMsg::Ready { tag, .. } => *tag,
                };
                // Slots beyond the fixed round count can never matter;
                // dropping them bounds state against byzantine flooding.
                if tag.seq >= self.rounds {
                    return actions;
                }
                let out = self.rbc.on_message(from, rbc_msg);
                Self::wrap_rbc(out.outgoing, &mut actions);
                for (tag, bytes) in out.delivered {
                    let Ok(value) = Nat::decode_from_slice(&bytes) else {
                        // An unparsable value is a provably-faulty origin;
                        // its slot simply never lands.
                        continue;
                    };
                    self.delivered
                        .entry(tag.seq)
                        .or_default()
                        .insert(tag.origin.0, value);
                    let step = Self::gather_for(&mut self.gathers, self.n, self.t, tag.seq)
                        .deliver(tag.origin.0);
                    self.absorb_step(tag.seq, step, &mut actions);
                }
            }
            AaaMsg::Witness { round, set } => {
                if round >= self.rounds {
                    return actions;
                }
                let set: Vec<usize> = set.into_iter().map(|i| i as usize).collect();
                let step = Self::gather_for(&mut self.gathers, self.n, self.t, round)
                    .on_witness(from.0, &set);
                self.absorb_step(round, step, &mut actions);
            }
        }
        actions
    }

    fn output(&self) -> Option<Nat> {
        self.decided.clone()
    }

    fn input_repr(&self) -> Option<String> {
        Some(self.input.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let witness = AaaMsg::Witness {
            round: 3,
            set: vec![0, 2, 3],
        };
        let bytes = witness.encode_to_vec();
        assert_eq!(bytes.len(), witness.encoded_len());
        assert_eq!(AaaMsg::decode_from_slice(&bytes).unwrap(), witness);

        let rbc = AaaMsg::Rbc(RbcMsg::Init {
            tag: crate::rbc::RbcTag {
                origin: PartyId(1),
                seq: 0,
            },
            payload: Nat::from_u64(42).encode_to_vec(),
        });
        let bytes = rbc.encode_to_vec();
        assert_eq!(AaaMsg::decode_from_slice(&bytes).unwrap(), rbc);
        assert!(AaaMsg::decode_from_slice(&[7]).is_err());
    }

    #[test]
    fn zero_rounds_decides_input_immediately() {
        let mut p = AsyncApprox::new(4, 1, PartyId(0), Nat::from_u64(9), 0);
        assert!(p.on_start().is_empty());
        assert_eq!(p.output(), Some(Nat::from_u64(9)));
    }

    #[test]
    fn rounds_for_spread_covers_halving() {
        assert_eq!(rounds_for_spread(&Nat::zero()), 1);
        assert_eq!(rounds_for_spread(&Nat::from_u64(1)), 2);
        assert_eq!(rounds_for_spread(&Nat::from_u64(100)), 8);
        // 2^R must dominate the spread.
        for s in [1u64, 2, 3, 100, 1000, u64::MAX / 2] {
            let r = rounds_for_spread(&Nat::from_u64(s));
            assert!(r < 66 && (r >= 64 || (1u64 << r) > s));
        }
    }
}
