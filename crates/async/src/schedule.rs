//! Seeded delivery schedules for the deterministic executor.

use ca_net::{EdgeDelays, EdgeRule};

/// Decides, per message, when (or whether) the network delivers it.
///
/// A thin wrapper over [`ca_net::EdgeDelays`] — the *same* sampler the
/// synchronous `DelayedSim` uses — so the AS1 benchmark can subject both
/// backends to the identical delay distribution. Delays are virtual time
/// units; reordering falls out naturally (a later message with a smaller
/// sampled delay overtakes an earlier one in the executor's priority
/// queue). Self-deliveries are immediate and never dropped.
#[derive(Debug, Clone)]
pub struct DeliverySchedule {
    edges: EdgeDelays,
}

impl DeliverySchedule {
    /// Schedule driven by an existing sampler.
    pub fn new(edges: EdgeDelays) -> Self {
        Self { edges }
    }

    /// Every edge delivers after `base + U[0, jitter]` virtual time.
    pub fn uniform(seed: u64, base: u64, jitter: u64) -> Self {
        Self::new(EdgeDelays::uniform(seed, base, jitter))
    }

    /// Adds a targeted delay/drop rule (see [`ca_net::EdgeRule`]).
    #[must_use]
    pub fn with_rule(mut self, rule: EdgeRule) -> Self {
        self.edges = self.edges.with_rule(rule);
        self
    }

    /// Delay of message `seq` on edge `from → to`; `None` = dropped.
    pub fn delay(&self, from: usize, to: usize, seq: u64) -> Option<u64> {
        self.edges.sample(from, to, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_can_reorder() {
        let s = DeliverySchedule::uniform(11, 5, 10);
        let mut reordered = false;
        let mut prev = 0;
        for seq in 0..64 {
            let d = s.delay(0, 1, seq).unwrap();
            assert_eq!(s.delay(0, 1, seq), Some(d), "stateless sampling");
            // Message seq sent at time seq: arrival seq + d. Reordering
            // means some later send arrives before an earlier one.
            if seq > 0 && seq + d < prev {
                reordered = true;
            }
            prev = seq + d;
        }
        assert!(reordered, "jitter of 10 over send gaps of 1 must reorder");
    }

    #[test]
    fn self_delivery_is_immediate() {
        let s = DeliverySchedule::uniform(3, 50, 50);
        assert_eq!(s.delay(2, 2, 0), Some(0));
    }
}
