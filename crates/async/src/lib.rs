//! Event-driven asynchronous agreement backend.
//!
//! Everything else in this workspace advances in lock-step rounds — the
//! `ca-net` simulator barriers and the Δ-timeout TCP runtime both bake in
//! the synchronous model of the source paper (§2). This crate is the
//! asynchronous counterpart, following "Asynchronous Approximate
//! Agreement with Quadratic Communication" (Erbes–Wattenhofer; see
//! PAPERS.md): protocols are explicit state machines ([`AsyncProtocol`])
//! advanced by *delivery events*, progress is gated on message-arrival
//! **quorums** (`n − t` out of `n`), and no Δ appears anywhere.
//!
//! Building blocks:
//!
//! * [`Rbc`] — Bracha-style reliable broadcast (Init/Echo/Ready, echo
//!   counting per payload), binding byzantine senders to one value per
//!   slot.
//! * [`QuorumTracker`] / [`WitnessGather`] — order-invariant threshold
//!   counting and the (n−t)-witness technique that keeps honest parties'
//!   delivered sets overlapping.
//! * [`AsyncApprox`] — asynchronous approximate agreement over [`ca_bits::Nat`]:
//!   per-round RBC dispersal, witness gather, trimmed-midpoint update.
//! * [`Executor`] + [`DeliverySchedule`] — a deterministic single-threaded
//!   scheduler over a seeded priority event queue (per-edge delay /
//!   reorder / drop), producing byte-identical traces across reruns.
//! * [`run_on_comm`] — hosts any [`AsyncProtocol`] on a round-based
//!   [`ca_net::Comm`] substrate (the simulator, and thereby `ca-engine`
//!   sessions). `ca-runtime` adds the event-driven TCP driver.

mod aaa;
mod comm_driver;
mod executor;
mod protocol;
mod quorum;
mod rbc;
mod schedule;

pub use aaa::{rounds_for_spread, AaaMsg, AsyncApprox};
pub use comm_driver::run_on_comm;
pub use executor::{ExecReport, Executor};
pub use protocol::{Action, AsyncProtocol};
pub use quorum::{QuorumTracker, WitnessGather, WitnessStep};
pub use rbc::{Rbc, RbcMsg, RbcOutcome, RbcTag};
pub use schedule::DeliverySchedule;
