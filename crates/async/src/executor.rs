//! The deterministic single-threaded event executor.
//!
//! All `n` protocol instances run in one thread, advanced by a virtual-
//! time priority queue of delivery/timer/crash events. Event order is a
//! pure function of `(protocol logic, DeliverySchedule seed, crash plan)`
//! — there are no threads, no wall clocks, and no iteration over
//! unordered containers — so two runs with the same configuration produce
//! **byte-identical** traces. That determinism is what lets the chaos
//! tests diff reruns and `ca-trace` check invariants on async executions.
//!
//! Virtual time doubles as the trace `round` stamp: each party's records
//! carry the virtual time of the event that produced them, which is
//! non-decreasing per party (the round-monotone invariant) while the
//! round-alternation invariant is vacuous — an async run emits no
//! `RoundStart`/`RoundEnd` at all. There is no Δ anywhere in this module:
//! time only orders deliveries, nothing ever waits it out.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::Arc;

use bytes::Bytes;
use ca_net::PartyId;
use ca_trace::{Event as TraceEvent, NullSink, Record, TraceSink, ROOT_SCOPE};

use crate::protocol::{Action, AsyncProtocol};
use crate::schedule::DeliverySchedule;

/// What the event queue can dispatch.
#[derive(Debug)]
enum EventKind {
    Deliver {
        from: usize,
        to: usize,
        payload: Bytes,
    },
    Timer {
        party: usize,
        id: u64,
    },
    Crash {
        party: usize,
    },
}

/// Everything measured about one async execution.
#[derive(Debug)]
pub struct ExecReport<O> {
    /// Per-party outputs (`None` for crashed or undecided parties).
    pub outputs: Vec<Option<O>>,
    /// Virtual time at which each party decided.
    pub decide_time: Vec<Option<u64>>,
    /// Parties crashed by the schedule.
    pub crashed: Vec<usize>,
    /// Non-self protocol messages handed to the network.
    pub messages: u64,
    /// Payload bytes across those messages.
    pub payload_bytes: u64,
    /// Messages the schedule dropped on the wire.
    pub dropped: u64,
    /// Delivery events actually dispatched.
    pub delivered_events: u64,
    /// Virtual time of the last dispatched event.
    pub final_time: u64,
}

impl<O> ExecReport<O> {
    /// Outputs of surviving (non-crashed) parties.
    pub fn surviving_outputs(&self) -> Vec<&O> {
        self.outputs.iter().filter_map(Option::as_ref).collect()
    }

    /// Virtual time by which every surviving party had decided.
    pub fn last_decide_time(&self) -> Option<u64> {
        self.decide_time.iter().flatten().copied().max()
    }
}

/// Deterministic executor over `n` instances of one protocol type.
pub struct Executor<P: AsyncProtocol> {
    parties: Vec<P>,
    schedule: DeliverySchedule,
    crash_plan: BTreeMap<usize, u64>,
    sink: Arc<dyn TraceSink>,
    scope: String,
    max_events: u64,
}

impl<P: AsyncProtocol> Executor<P> {
    /// An executor over the given instances (`parties[i]` is party `i`).
    ///
    /// # Panics
    ///
    /// Panics if `parties` is empty.
    pub fn new(parties: Vec<P>, schedule: DeliverySchedule) -> Self {
        assert!(!parties.is_empty(), "need at least one party");
        Self {
            parties,
            schedule,
            crash_plan: BTreeMap::new(),
            sink: Arc::new(NullSink),
            scope: "async".to_owned(),
            max_events: 10_000_000,
        }
    }

    /// Crashes `party` at virtual time `at`: events already in flight
    /// from it still deliver, but it processes and sends nothing after.
    #[must_use]
    pub fn crash_at(mut self, party: PartyId, at: u64) -> Self {
        self.crash_plan.insert(party.0, at);
        self
    }

    /// Attaches a trace sink (same contract as `Sim::with_trace`:
    /// identical configurations yield byte-identical record streams).
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Scope name stamped on the run's records (default `"async"`).
    #[must_use]
    pub fn with_scope(mut self, scope: &str) -> Self {
        self.scope = scope.to_owned();
        self
    }

    /// Overrides the runaway-protocol safety valve (default 10 000 000
    /// dispatched events).
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Runs the execution to completion: until every surviving party has
    /// decided or the event queue drains.
    ///
    /// # Panics
    ///
    /// Panics if the event limit is exceeded (runaway protocol).
    pub fn run(mut self) -> ExecReport<P::Output>
    where
        P::Output: Display,
    {
        let n = self.parties.len();
        let tracing = self.sink.enabled();
        let mut report = ExecReport {
            outputs: (0..n).map(|_| None).collect(),
            decide_time: vec![None; n],
            crashed: Vec::new(),
            messages: 0,
            payload_bytes: 0,
            dropped: 0,
            delivered_events: 0,
            final_time: 0,
        };
        let mut crashed = vec![false; n];
        let mut decided = vec![false; n];
        // The queue: (virtual time, tie-break seq) → event. BTreeMap keys
        // are unique and iterate in order, giving a deterministic total
        // order without a hand-rolled heap.
        let mut queue: BTreeMap<(u64, u64), EventKind> = BTreeMap::new();
        let mut next_seq: u64 = 0;
        let mut msg_seq: u64 = 0;

        let record =
            |sink: &Arc<dyn TraceSink>, party: usize, time: u64, scope: &str, event: TraceEvent| {
                sink.record(&Record {
                    party: Some(party as u64),
                    round: time,
                    scope: scope.to_owned(),
                    event,
                });
            };

        // Opening ceremony, in party order: enter the scope, declare the
        // input (these anchor the decide-in-hull check).
        if tracing {
            for (i, party) in self.parties.iter().enumerate() {
                record(
                    &self.sink,
                    i,
                    0,
                    &self.scope,
                    TraceEvent::ScopeEnter {
                        name: self.scope.clone(),
                    },
                );
                if let Some(value) = party.input_repr() {
                    record(&self.sink, i, 0, &self.scope, TraceEvent::Input { value });
                }
            }
        }
        for (&party, &at) in &self.crash_plan {
            if party < n {
                queue.insert((at, next_seq), EventKind::Crash { party });
                next_seq += 1;
            }
        }

        // A macro rather than a closure: applying actions needs mutable
        // access to the queue, counters, and report at once.
        macro_rules! apply_actions {
            ($party:expr, $now:expr, $actions:expr) => {
                for action in $actions {
                    match action {
                        Action::Send { to, payload } => {
                            enqueue_send!($party, $now, to.0, payload);
                        }
                        Action::Broadcast { payload } => {
                            for to in 0..n {
                                enqueue_send!($party, $now, to, payload.clone());
                            }
                        }
                        Action::SetTimer { id, after } => {
                            queue.insert(
                                ($now + after, next_seq),
                                EventKind::Timer { party: $party, id },
                            );
                            next_seq += 1;
                        }
                        Action::Note { label, value } => {
                            if tracing {
                                record(
                                    &self.sink,
                                    $party,
                                    $now,
                                    &self.scope,
                                    TraceEvent::Note { label, value },
                                );
                            }
                        }
                    }
                }
            };
        }
        macro_rules! enqueue_send {
            ($from:expr, $now:expr, $to:expr, $payload:expr) => {
                if $to < n {
                    let payload: Bytes = $payload;
                    if $from != $to {
                        report.messages += 1;
                        report.payload_bytes += payload.len() as u64;
                        if tracing {
                            record(
                                &self.sink,
                                $from,
                                $now,
                                &self.scope,
                                TraceEvent::Send {
                                    to: $to as u64,
                                    bytes: payload.len() as u64,
                                },
                            );
                        }
                    }
                    match self.schedule.delay($from, $to, msg_seq) {
                        Some(delay) => {
                            queue.insert(
                                ($now + delay, next_seq),
                                EventKind::Deliver {
                                    from: $from,
                                    to: $to,
                                    payload,
                                },
                            );
                            next_seq += 1;
                        }
                        None => report.dropped += 1,
                    }
                    msg_seq += 1;
                }
            };
        }
        macro_rules! check_decided {
            ($party:expr, $now:expr) => {
                if !decided[$party] && !crashed[$party] {
                    if let Some(output) = self.parties[$party].output() {
                        decided[$party] = true;
                        report.decide_time[$party] = Some($now);
                        if tracing {
                            record(
                                &self.sink,
                                $party,
                                $now,
                                &self.scope,
                                TraceEvent::Decide {
                                    value: output.to_string(),
                                },
                            );
                        }
                        report.outputs[$party] = Some(output);
                    }
                }
            };
        }

        for i in 0..n {
            let actions = self.parties[i].on_start();
            apply_actions!(i, 0, actions);
            check_decided!(i, 0);
        }

        let mut dispatched: u64 = 0;
        while let Some(((time, _), event)) = queue.pop_first() {
            if (0..n).all(|i| decided[i] || crashed[i]) {
                break;
            }
            dispatched += 1;
            assert!(
                dispatched <= self.max_events,
                "event limit {} exceeded (runaway protocol?)",
                self.max_events
            );
            report.final_time = time;
            match event {
                EventKind::Crash { party } => {
                    if !crashed[party] {
                        crashed[party] = true;
                        decided[party] = false;
                        report.outputs[party] = None;
                        report.decide_time[party] = None;
                        report.crashed.push(party);
                        if tracing {
                            record(
                                &self.sink,
                                party,
                                time,
                                ROOT_SCOPE,
                                TraceEvent::FaultInjected {
                                    strategy: "crash:async".to_owned(),
                                },
                            );
                        }
                    }
                }
                EventKind::Deliver { from, to, payload } => {
                    if crashed[to] {
                        continue;
                    }
                    report.delivered_events += 1;
                    if tracing {
                        record(
                            &self.sink,
                            to,
                            time,
                            &self.scope,
                            TraceEvent::Deliver {
                                from: from as u64,
                                bytes: payload.len() as u64,
                            },
                        );
                    }
                    let actions = self.parties[to].on_message(PartyId(from), &payload);
                    if !crashed[to] {
                        apply_actions!(to, time, actions);
                        check_decided!(to, time);
                    }
                }
                EventKind::Timer { party, id } => {
                    if crashed[party] {
                        continue;
                    }
                    let actions = self.parties[party].on_timer(id);
                    apply_actions!(party, time, actions);
                    check_decided!(party, time);
                }
            }
        }

        if tracing {
            for (i, _) in crashed.iter().enumerate().filter(|(_, c)| !**c) {
                record(
                    &self.sink,
                    i,
                    report.final_time,
                    ROOT_SCOPE,
                    TraceEvent::ScopeExit {
                        name: self.scope.clone(),
                    },
                );
            }
        }
        self.sink.flush();
        report
    }
}

impl<P: AsyncProtocol> std::fmt::Debug for Executor<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("n", &self.parties.len())
            .field("scope", &self.scope)
            .field("crash_plan", &self.crash_plan)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo-count protocol: broadcasts one byte, decides after hearing
    /// from `quorum` distinct parties (itself included).
    struct CountQuorum {
        me: usize,
        quorum: usize,
        heard: std::collections::BTreeSet<usize>,
        out: Option<u64>,
    }

    impl CountQuorum {
        fn new(me: usize, quorum: usize) -> Self {
            Self {
                me,
                quorum,
                heard: std::collections::BTreeSet::new(),
                out: None,
            }
        }
    }

    impl AsyncProtocol for CountQuorum {
        type Output = u64;
        fn on_start(&mut self) -> Vec<Action> {
            vec![Action::Broadcast {
                payload: Bytes::from(vec![self.me as u8]),
            }]
        }
        fn on_message(&mut self, from: PartyId, _payload: &Bytes) -> Vec<Action> {
            self.heard.insert(from.0);
            if self.out.is_none() && self.heard.len() >= self.quorum {
                self.out = Some(self.heard.len() as u64);
            }
            Vec::new()
        }
        fn output(&self) -> Option<u64> {
            self.out
        }
        fn input_repr(&self) -> Option<String> {
            Some(self.me.to_string())
        }
    }

    fn quorum_exec(seed: u64) -> Executor<CountQuorum> {
        let parties = (0..4).map(|i| CountQuorum::new(i, 3)).collect();
        Executor::new(parties, DeliverySchedule::uniform(seed, 5, 10))
    }

    #[test]
    fn quorum_decides_without_timeouts() {
        let report = quorum_exec(1).run();
        for out in &report.outputs {
            assert_eq!(*out, Some(3));
        }
        assert!(report.last_decide_time().unwrap() > 0);
        assert_eq!(report.messages, 4 * 4 - 4);
    }

    #[test]
    fn crash_before_start_silences_party() {
        let report = quorum_exec(2).crash_at(PartyId(3), 0).run();
        assert_eq!(report.crashed, vec![3]);
        assert_eq!(report.outputs[3], None);
        // Survivors still reach the 3-quorum among themselves… but P3's
        // on_start ran at vt 0 before the crash event? No: the crash is
        // queued at (0, seq 0), before any delivery, yet on_start runs
        // outside the queue — its messages are in flight and deliver.
        for i in 0..3 {
            assert_eq!(report.outputs[i], Some(3), "party {i}");
        }
    }

    #[test]
    fn executions_are_deterministic_and_seed_sensitive() {
        let a = quorum_exec(7).run();
        let b = quorum_exec(7).run();
        assert_eq!(a.decide_time, b.decide_time);
        assert_eq!(a.final_time, b.final_time);
        let c = quorum_exec(8).run();
        assert!(
            a.decide_time != c.decide_time || a.final_time != c.final_time,
            "different seeds should schedule differently"
        );
    }

    #[test]
    fn traces_are_byte_identical_across_reruns() {
        let run = || {
            let sink = Arc::new(ca_trace::RingBufferSink::new(1 << 16));
            quorum_exec(3)
                .crash_at(PartyId(2), 7)
                .with_trace(sink.clone())
                .run();
            sink.records()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(ca_trace::first_divergence(&a, &b), None);
        assert_eq!(ca_trace::check(&a), vec![]);
    }

    #[test]
    fn timers_fire_at_virtual_time() {
        struct TimerOnly {
            fired_at: Option<u64>,
            out: Option<u64>,
        }
        impl AsyncProtocol for TimerOnly {
            type Output = u64;
            fn on_start(&mut self) -> Vec<Action> {
                vec![Action::SetTimer { id: 42, after: 17 }]
            }
            fn on_message(&mut self, _from: PartyId, _payload: &Bytes) -> Vec<Action> {
                Vec::new()
            }
            fn on_timer(&mut self, id: u64) -> Vec<Action> {
                self.fired_at = Some(id);
                self.out = Some(id);
                Vec::new()
            }
            fn output(&self) -> Option<u64> {
                self.out
            }
        }
        let report = Executor::new(
            vec![TimerOnly {
                fired_at: None,
                out: None,
            }],
            DeliverySchedule::uniform(0, 1, 0),
        )
        .run();
        assert_eq!(report.outputs[0], Some(42));
        assert_eq!(report.decide_time[0], Some(17));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn runaway_protocol_hits_event_limit() {
        struct PingPong;
        impl AsyncProtocol for PingPong {
            type Output = u8;
            fn on_start(&mut self) -> Vec<Action> {
                vec![Action::Broadcast {
                    payload: Bytes::from_static(b"x"),
                }]
            }
            fn on_message(&mut self, _from: PartyId, _payload: &Bytes) -> Vec<Action> {
                vec![Action::Broadcast {
                    payload: Bytes::from_static(b"x"),
                }]
            }
            fn output(&self) -> Option<u8> {
                None
            }
        }
        Executor::new(vec![PingPong, PingPong], DeliverySchedule::uniform(0, 1, 0))
            .with_max_events(1000)
            .run();
    }
}
