//! Quorum counting and the (n−t)-witness/gather primitive.
//!
//! Both building blocks are *order-invariant*: they expose only
//! threshold-crossing facts ("n−t distinct parties support key k"),
//! which are monotone in the set of received messages — the same final
//! message set yields the same decisions regardless of arrival order.
//! That is the property the proptests in `tests/prop_async.rs` pin down,
//! and the reason the asynchronous protocols built on top decide
//! identically under arbitrary seeded reorderings.

use std::collections::{BTreeMap, BTreeSet};

/// Counts distinct supporters per key and reports each key's threshold
/// crossing exactly once.
#[derive(Debug, Clone)]
pub struct QuorumTracker<K: Ord + Clone> {
    threshold: usize,
    support: BTreeMap<K, BTreeSet<usize>>,
    fired: BTreeSet<K>,
}

impl<K: Ord + Clone> QuorumTracker<K> {
    /// A tracker that fires when `threshold` distinct parties support a key.
    pub fn new(threshold: usize) -> Self {
        Self {
            threshold: threshold.max(1),
            support: BTreeMap::new(),
            fired: BTreeSet::new(),
        }
    }

    /// Records that `party` supports `key`. Returns `true` exactly when
    /// this call brings `key` to threshold for the first time; duplicate
    /// support from the same party never advances the count.
    pub fn support(&mut self, key: K, party: usize) -> bool {
        let supporters = self.support.entry(key.clone()).or_default();
        supporters.insert(party);
        if supporters.len() >= self.threshold && !self.fired.contains(&key) {
            self.fired.insert(key);
            return true;
        }
        false
    }

    /// Distinct supporters recorded for `key`.
    pub fn count(&self, key: &K) -> usize {
        self.support.get(key).map_or(0, BTreeSet::len)
    }

    /// Whether `key` has reached threshold.
    pub fn reached(&self, key: &K) -> bool {
        self.fired.contains(key)
    }
}

/// What one [`WitnessGather`] step produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WitnessStep {
    /// `Some(set)` exactly once: our own delivered-set reached `n − t`
    /// items and should be multicast as our witness claim.
    pub announce: Option<Vec<usize>>,
    /// Witness claims (by claimant id) newly accepted this step.
    pub newly_accepted: Vec<usize>,
    /// `true` exactly once: `n − t` witnesses accepted — the gather is
    /// complete and the caller may act on its delivered set.
    pub completed: bool,
}

/// The witness technique of asynchronous approximate agreement
/// (Abraham–Amit–Dolev; Erbes–Wattenhofer): before using its first
/// `n − t` delivered items, a party announces *which* items it saw and
/// waits until `n − t` parties' announcements are each covered by its own
/// delivered set. Any two honest parties then share ≥ `n − 2t ≥ t + 1`
/// witnesses, which bounds how far their item sets can drift — the
/// combinatorial core that lets trimmed-midpoint iteration contract.
#[derive(Debug, Clone)]
pub struct WitnessGather {
    n: usize,
    t: usize,
    delivered: BTreeSet<usize>,
    announced: bool,
    /// Pending witness claims, keyed by claimant; re-checked against
    /// `delivered` every time a new item lands.
    pending: BTreeMap<usize, BTreeSet<usize>>,
    accepted: BTreeSet<usize>,
    completed: bool,
}

impl WitnessGather {
    /// A gather over item ids `0..n` with corruption budget `t`.
    pub fn new(n: usize, t: usize) -> Self {
        Self {
            n,
            t,
            delivered: BTreeSet::new(),
            announced: false,
            pending: BTreeMap::new(),
            accepted: BTreeSet::new(),
            completed: false,
        }
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// The item ids delivered so far.
    pub fn delivered(&self) -> impl Iterator<Item = usize> + '_ {
        self.delivered.iter().copied()
    }

    /// Whether the gather has completed.
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Records that item `item` (party `item`'s contribution) has been
    /// delivered locally.
    pub fn deliver(&mut self, item: usize) -> WitnessStep {
        if item < self.n {
            self.delivered.insert(item);
        }
        self.advance()
    }

    /// Records a witness claim from `claimant` asserting it delivered
    /// exactly the items in `set`. Accepted once `set ⊆ delivered`.
    pub fn on_witness(&mut self, claimant: usize, set: &[usize]) -> WitnessStep {
        if claimant >= self.n || self.accepted.contains(&claimant) {
            return WitnessStep::default();
        }
        let set: BTreeSet<usize> = set.iter().copied().filter(|i| *i < self.n).collect();
        // A claim naming fewer than n − t items can never legitimize a
        // quorum; ignoring it here keeps byzantine claimants from being
        // accepted "for free" with an empty set.
        if set.len() >= self.quorum() {
            self.pending.insert(claimant, set);
        }
        self.advance()
    }

    /// Re-evaluates announcements, pending claims, and completion.
    fn advance(&mut self) -> WitnessStep {
        let mut step = WitnessStep::default();
        if !self.announced && self.delivered.len() >= self.quorum() {
            self.announced = true;
            step.announce = Some(self.delivered.iter().copied().collect());
        }
        let ready: Vec<usize> = self
            .pending
            .iter()
            .filter(|(_, set)| set.is_subset(&self.delivered))
            .map(|(claimant, _)| *claimant)
            .collect();
        for claimant in ready {
            self.pending.remove(&claimant);
            self.accepted.insert(claimant);
            step.newly_accepted.push(claimant);
        }
        if !self.completed && self.accepted.len() >= self.quorum() {
            self.completed = true;
            step.completed = true;
        }
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_fires_once_and_dedups_supporters() {
        let mut q = QuorumTracker::new(3);
        assert!(!q.support("k", 0));
        assert!(!q.support("k", 0)); // duplicate party
        assert!(!q.support("k", 1));
        assert_eq!(q.count(&"k"), 2);
        assert!(q.support("k", 2)); // crossing
        assert!(!q.support("k", 3)); // already fired
        assert!(q.reached(&"k"));
        assert!(!q.reached(&"other"));
    }

    #[test]
    fn gather_announces_then_completes() {
        // n = 4, t = 1, quorum = 3.
        let mut g = WitnessGather::new(4, 1);
        assert_eq!(g.deliver(0), WitnessStep::default());
        assert_eq!(g.deliver(1), WitnessStep::default());
        let step = g.deliver(2);
        assert_eq!(step.announce, Some(vec![0, 1, 2]));
        assert!(!step.completed);
        // Witnesses covered by our delivered set are accepted immediately.
        assert_eq!(g.on_witness(0, &[0, 1, 2]).newly_accepted, vec![0]);
        assert_eq!(g.on_witness(1, &[0, 1, 2]).newly_accepted, vec![1]);
        let done = g.on_witness(2, &[0, 1, 2]);
        assert_eq!(done.newly_accepted, vec![2]);
        assert!(done.completed);
        assert!(g.completed());
    }

    #[test]
    fn gather_holds_uncovered_witness_until_delivery() {
        let mut g = WitnessGather::new(4, 1);
        g.deliver(0);
        g.deliver(1);
        g.deliver(2);
        // Claimant 3 saw item 3, which we have not delivered yet.
        assert_eq!(g.on_witness(3, &[1, 2, 3]).newly_accepted, vec![]);
        let step = g.deliver(3);
        assert_eq!(step.newly_accepted, vec![3]);
    }

    #[test]
    fn gather_rejects_undersized_and_duplicate_claims() {
        let mut g = WitnessGather::new(4, 1);
        g.deliver(0);
        g.deliver(1);
        g.deliver(2);
        assert_eq!(g.on_witness(1, &[0, 1]).newly_accepted, vec![]); // < quorum
        assert_eq!(g.on_witness(1, &[0, 1, 2]).newly_accepted, vec![1]);
        assert_eq!(g.on_witness(1, &[0, 1, 2]).newly_accepted, vec![]); // dup
        assert_eq!(g.on_witness(9, &[0, 1, 2]).newly_accepted, vec![]); // bogus id
    }
}
