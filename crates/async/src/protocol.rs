//! The asynchronous protocol abstraction: explicit state machines
//! advanced by delivery events.
//!
//! Where the synchronous stack writes protocol code as straight-line
//! round loops against [`ca_net::Comm`], the asynchronous model inverts
//! control: a protocol instance is a state machine that *reacts* to each
//! message (or timer) as it arrives and answers with a batch of
//! [`Action`]s. No call ever blocks, no Δ appears anywhere — progress is
//! driven purely by which quorums of messages have landed.

use bytes::Bytes;
use ca_net::PartyId;

/// What a protocol instance asks its host to do in response to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send `payload` to one party (point-to-point, authenticated).
    Send {
        /// Recipient.
        to: PartyId,
        /// Opaque wire bytes (the protocol's own codec).
        payload: Bytes,
    },
    /// Send `payload` to *every* party, self included (self-delivery is
    /// local and free; hosts must deliver it like any other message so
    /// protocol logic never special-cases `me`).
    Broadcast {
        /// Opaque wire bytes.
        payload: Bytes,
    },
    /// Ask for an `on_timer(id)` callback `after` time units from now.
    /// Quorum-driven protocols don't need timers for safety or liveness;
    /// the hook exists for optimistic fast paths and diagnostics.
    SetTimer {
        /// Echoed back in the callback.
        id: u64,
        /// Virtual-time delay (host-defined units).
        after: u64,
    },
    /// Record a labelled note into the trace timeline.
    Note {
        /// Note label.
        label: String,
        /// Rendered value.
        value: String,
    },
}

/// An event-driven protocol instance.
///
/// Implementations are plain deterministic state machines: same events in
/// the same order ⇒ same actions and output. All scheduling, delivery,
/// fault injection, and tracing live in the host (the deterministic
/// [`crate::Executor`], the TCP driver in `ca-runtime`, or the round-based
/// adapter in [`crate::run_on_comm`]).
pub trait AsyncProtocol {
    /// What the instance decides.
    type Output: Clone;

    /// Called once before any delivery; returns the opening actions
    /// (typically the initial broadcast).
    fn on_start(&mut self) -> Vec<Action>;

    /// A message from `from` has been delivered. Malformed payloads must
    /// be ignored (byzantine senders can emit arbitrary bytes).
    fn on_message(&mut self, from: PartyId, payload: &Bytes) -> Vec<Action>;

    /// A timer set via [`Action::SetTimer`] has fired.
    fn on_timer(&mut self, _id: u64) -> Vec<Action> {
        Vec::new()
    }

    /// `Some` once the instance has irrevocably decided. Hosts poll this
    /// after every event batch; further events may still arrive (and must
    /// be tolerated) but cannot change the output.
    fn output(&self) -> Option<Self::Output>;

    /// Decimal rendering of this party's input, if the protocol has one —
    /// used by hosts to emit the `Input` trace event that anchors the
    /// decide-in-hull invariant.
    fn input_repr(&self) -> Option<String> {
        None
    }
}

/// Boxed instances forward, so heterogeneous networks (honest machines
/// beside byzantine ones) can run under one executor as
/// `Vec<Box<dyn AsyncProtocol<Output = O>>>`.
impl<P: AsyncProtocol + ?Sized> AsyncProtocol for Box<P> {
    type Output = P::Output;
    fn on_start(&mut self) -> Vec<Action> {
        (**self).on_start()
    }
    fn on_message(&mut self, from: PartyId, payload: &Bytes) -> Vec<Action> {
        (**self).on_message(from, payload)
    }
    fn on_timer(&mut self, id: u64) -> Vec<Action> {
        (**self).on_timer(id)
    }
    fn output(&self) -> Option<Self::Output> {
        (**self).output()
    }
    fn input_repr(&self) -> Option<String> {
        (**self).input_repr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal protocol: decides on the first byte it hears.
    struct FirstByte {
        out: Option<u8>,
    }

    impl AsyncProtocol for FirstByte {
        type Output = u8;
        fn on_start(&mut self) -> Vec<Action> {
            vec![Action::Broadcast {
                payload: Bytes::from_static(b"\x2a"),
            }]
        }
        fn on_message(&mut self, _from: PartyId, payload: &Bytes) -> Vec<Action> {
            if self.out.is_none() {
                self.out = payload.first().copied();
            }
            Vec::new()
        }
        fn output(&self) -> Option<u8> {
            self.out
        }
    }

    #[test]
    fn default_hooks_are_inert() {
        let mut p = FirstByte { out: None };
        assert_eq!(p.on_timer(3), Vec::new());
        assert_eq!(p.input_repr(), None);
        assert_eq!(p.output(), None);
        p.on_message(PartyId(1), &Bytes::from_static(b"\x07"));
        assert_eq!(p.output(), Some(7));
    }
}
