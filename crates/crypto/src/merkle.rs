//! Merkle-tree accumulator (paper §7, `MT.BUILD` / `MT.VERIFY`).
//!
//! The tree compresses a sequence of `n` leaves into one κ-bit root and
//! yields, for each leaf, a witness of `O(κ · log n)` bits proving membership
//! at a *specific index*. Leaf and interior hashes are domain-separated so a
//! leaf hash cannot be replayed as an interior node (second-preimage
//! hardening), and leaves are committed together with their index and the
//! total leaf count, so a witness for one position cannot be replayed at
//! another.

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::{sha256, Hash256, Sha256};

const DOMAIN_LEAF: u8 = 0x00;
const DOMAIN_NODE: u8 = 0x01;
const DOMAIN_EMPTY: u8 = 0x02;

/// A membership witness: the sibling hashes along the path from a leaf to the
/// root, bottom-up (the paper's `wᵢ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Total number of leaves in the tree (needed to recompute the shape).
    leaf_count: u32,
    /// Sibling hashes from the leaf level up to just below the root.
    path: Vec<Hash256>,
}

impl Witness {
    /// Number of leaves of the tree this witness belongs to.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count as usize
    }

    /// The sibling path (bottom-up).
    pub fn path(&self) -> &[Hash256] {
        &self.path
    }
}

impl Encode for Witness {
    fn encode(&self, w: &mut Writer) {
        self.leaf_count.encode(w);
        self.path.encode(w);
    }

    fn encoded_len(&self) -> usize {
        self.leaf_count.encoded_len() + self.path.encoded_len()
    }
}

impl Decode for Witness {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let leaf_count = u32::decode(r)?;
        let path: Vec<Hash256> = Vec::decode(r)?;
        // A tree over 2^32 leaves has a path of at most 32; reject absurd
        // adversarial witnesses early.
        if path.len() > 33 {
            return Err(CodecError::Invalid("merkle path too long"));
        }
        Ok(Self { leaf_count, path })
    }
}

/// A built Merkle tree over a sequence of byte-string leaves.
///
/// `MerkleTree::build(S)` is the paper's `MT.BUILD(S)`: it returns (via
/// accessors) the root hash `z` and the witnesses `w₁ … wₙ`.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes (padded to a power of two), levels.last() = [root].
    levels: Vec<Vec<Hash256>>,
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds the tree over `leaves` (`MT.BUILD`).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty or holds more than `u32::MAX` entries.
    pub fn build<L: AsRef<[u8]>>(leaves: &[L]) -> Self {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        assert!(u32::try_from(leaves.len()).is_ok(), "too many leaves");
        let leaf_count = leaves.len();
        let width = leaf_count.next_power_of_two();

        let mut level: Vec<Hash256> = Vec::with_capacity(width);
        for (i, leaf) in leaves.iter().enumerate() {
            level.push(hash_leaf(i as u32, leaf_count as u32, leaf.as_ref()));
        }
        level.resize(width, empty_leaf());

        let mut levels = vec![level];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let next: Vec<Hash256> = prev
                .chunks(2)
                .map(|pair| hash_node(&pair[0], &pair[1]))
                .collect();
            levels.push(next);
        }
        Self { levels, leaf_count }
    }

    /// The root hash `z`.
    pub fn root(&self) -> Hash256 {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of (real, unpadded) leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The witness `wᵢ` for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.leaf_count()`.
    pub fn witness(&self, index: usize) -> Witness {
        assert!(index < self.leaf_count, "leaf index {index} out of range");
        let mut path = Vec::with_capacity(self.levels.len().saturating_sub(1));
        let mut pos = index;
        for level in &self.levels[..self.levels.len() - 1] {
            path.push(level[pos ^ 1]);
            pos >>= 1;
        }
        Witness {
            leaf_count: self.leaf_count as u32,
            path,
        }
    }

    /// All witnesses, in leaf order (the `w₁, …, wₙ` of `MT.BUILD`).
    pub fn witnesses(&self) -> Vec<Witness> {
        (0..self.leaf_count).map(|i| self.witness(i)).collect()
    }

    /// `MT.VERIFY(z, i, leaf, w)`: checks that `leaf` is committed at
    /// position `index` of the tree with root `root`.
    ///
    /// Returns `false` (never panics) on any inconsistency, including
    /// adversarial witnesses with wrong shapes.
    pub fn verify<L: AsRef<[u8]>>(root: Hash256, index: usize, leaf: L, witness: &Witness) -> bool {
        let leaf_count = witness.leaf_count as usize;
        if leaf_count == 0 || index >= leaf_count {
            return false;
        }
        let expected_depth = leaf_count.next_power_of_two().trailing_zeros() as usize;
        if witness.path.len() != expected_depth {
            return false;
        }
        let mut acc = hash_leaf(index as u32, witness.leaf_count, leaf.as_ref());
        let mut pos = index;
        for sibling in &witness.path {
            acc = if pos & 1 == 0 {
                hash_node(&acc, sibling)
            } else {
                hash_node(sibling, &acc)
            };
            pos >>= 1;
        }
        acc == root
    }
}

fn hash_leaf(index: u32, leaf_count: u32, data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[DOMAIN_LEAF]);
    h.update(&index.to_be_bytes());
    h.update(&leaf_count.to_be_bytes());
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[DOMAIN_NODE]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

fn empty_leaf() -> Hash256 {
    sha256(&[DOMAIN_EMPTY])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn witnesses_verify_for_all_sizes() {
        for n in 1..=17 {
            let data = leaves(n);
            let tree = MerkleTree::build(&data);
            for (i, leaf) in data.iter().enumerate() {
                let w = tree.witness(i);
                assert!(MerkleTree::verify(tree.root(), i, leaf, &w), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::build(&data);
        let w = tree.witness(3);
        assert!(!MerkleTree::verify(tree.root(), 3, b"forged", &w));
    }

    #[test]
    fn wrong_index_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::build(&data);
        let w = tree.witness(3);
        assert!(!MerkleTree::verify(tree.root(), 4, &data[3], &w));
        // Even with the matching leaf content of the other index.
        assert!(!MerkleTree::verify(tree.root(), 4, &data[4], &w));
    }

    #[test]
    fn wrong_root_rejected() {
        let data = leaves(5);
        let tree = MerkleTree::build(&data);
        let other = MerkleTree::build(&leaves(6));
        let w = tree.witness(0);
        assert!(!MerkleTree::verify(other.root(), 0, &data[0], &w));
    }

    #[test]
    fn malformed_witness_shapes_rejected() {
        let data = leaves(4);
        let tree = MerkleTree::build(&data);
        let mut w = tree.witness(1);
        w.path.push(Hash256::default());
        assert!(!MerkleTree::verify(tree.root(), 1, &data[1], &w));
        let mut w2 = tree.witness(1);
        w2.path.pop();
        assert!(!MerkleTree::verify(tree.root(), 1, &data[1], &w2));
        let w3 = Witness {
            leaf_count: 0,
            path: vec![],
        };
        assert!(!MerkleTree::verify(tree.root(), 0, &data[0], &w3));
    }

    #[test]
    fn duplicate_leaves_bind_to_positions() {
        // Identical leaf contents at two positions still yield
        // position-specific witnesses.
        let data = vec![b"same".to_vec(), b"same".to_vec()];
        let tree = MerkleTree::build(&data);
        let w0 = tree.witness(0);
        assert!(MerkleTree::verify(tree.root(), 0, &data[0], &w0));
        assert!(!MerkleTree::verify(tree.root(), 1, &data[1], &w0));
    }

    #[test]
    fn leaf_count_is_committed() {
        // A 2-leaf tree and the first two leaves of a 3-leaf tree differ.
        let t2 = MerkleTree::build(&leaves(2));
        let t3 = MerkleTree::build(&leaves(3));
        assert_ne!(t2.root(), t3.root());
        let w = t2.witness(0);
        assert!(!MerkleTree::verify(t3.root(), 0, &leaves(3)[0], &w));
    }

    #[test]
    fn witness_codec_round_trip() {
        let tree = MerkleTree::build(&leaves(9));
        let w = tree.witness(5);
        let bytes = ca_codec::Encode::encode_to_vec(&w);
        let back = <Witness as ca_codec::Decode>::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn witness_size_is_logarithmic() {
        use ca_codec::Encode;
        let t16 = MerkleTree::build(&leaves(16));
        let t256 = MerkleTree::build(&leaves(256));
        let s16 = t16.witness(0).encode_to_vec().len();
        let s256 = t256.witness(0).encode_to_vec().len();
        // 4 extra levels of 32-byte hashes.
        assert_eq!(s256 - s16, 4 * 32 + 1); // +1 varint growth for leaf_count
    }

    proptest! {
        #[test]
        fn prop_build_verify(n in 1usize..40, tamper in any::<u64>()) {
            let data: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; (i % 7) + 1]).collect();
            let tree = MerkleTree::build(&data);
            let idx = (tamper as usize) % n;
            let w = tree.witness(idx);
            prop_assert!(MerkleTree::verify(tree.root(), idx, &data[idx], &w));
            let mut bad = data[idx].clone();
            bad[0] ^= 1;
            prop_assert!(!MerkleTree::verify(tree.root(), idx, &bad, &w));
        }
    }
}
