//! Merkle-tree accumulator (paper §7, `MT.BUILD` / `MT.VERIFY`).
//!
//! The tree compresses a sequence of `n` leaves into one κ-bit root and
//! yields, for each leaf, a witness of `O(κ · log n)` bits proving membership
//! at a *specific index*. Leaf and interior hashes are domain-separated so a
//! leaf hash cannot be replayed as an interior node (second-preimage
//! hardening), and leaves are committed together with their index and the
//! total leaf count, so a witness for one position cannot be replayed at
//! another.

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::{sha256, Hash256, Sha256};

const DOMAIN_LEAF: u8 = 0x00;
const DOMAIN_NODE: u8 = 0x01;
const DOMAIN_EMPTY: u8 = 0x02;

/// A membership witness: the sibling hashes along the path from a leaf to the
/// root, bottom-up (the paper's `wᵢ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Total number of leaves in the tree (needed to recompute the shape).
    leaf_count: u32,
    /// Sibling hashes from the leaf level up to just below the root.
    path: Vec<Hash256>,
}

impl Witness {
    /// Number of leaves of the tree this witness belongs to.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count as usize
    }

    /// The sibling path (bottom-up).
    pub fn path(&self) -> &[Hash256] {
        &self.path
    }
}

impl Encode for Witness {
    fn encode(&self, w: &mut Writer) {
        self.leaf_count.encode(w);
        self.path.encode(w);
    }

    fn encoded_len(&self) -> usize {
        self.leaf_count.encoded_len() + self.path.encoded_len()
    }
}

impl Decode for Witness {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let leaf_count = u32::decode(r)?;
        if leaf_count == 0 {
            return Err(CodecError::Invalid("merkle witness over zero leaves"));
        }
        let path: Vec<Hash256> = Vec::decode(r)?;
        // The tree shape is fully determined by leaf_count: the path must
        // have exactly ⌈log₂(leaf_count)⌉ siblings. Anything else is an
        // adversarial witness that verify() would reject anyway — failing
        // at decode keeps malformed shapes out of protocol state entirely.
        if path.len() != expected_depth(leaf_count) {
            return Err(CodecError::Invalid(
                "merkle path length mismatches leaf count",
            ));
        }
        Ok(Self { leaf_count, path })
    }
}

/// Path length of every witness in a tree over `leaf_count` leaves:
/// `log₂(leaf_count.next_power_of_two())`.
fn expected_depth(leaf_count: u32) -> usize {
    // Widened so leaf_count close to u32::MAX cannot overflow
    // next_power_of_two (2^32 needs 33 bits).
    u64::from(leaf_count).next_power_of_two().trailing_zeros() as usize
}

/// A built Merkle tree over a sequence of byte-string leaves.
///
/// `MerkleTree::build(S)` is the paper's `MT.BUILD(S)`: it returns (via
/// accessors) the root hash `z` and the witnesses `w₁ … wₙ`.
///
/// The tree is stored as a single heap-layout arena (`nodes[1]` is the
/// root, children of `i` at `2i`/`2i + 1`, leaves at `width .. 2·width`),
/// so a build is one allocation and the batched hashing below reuses one
/// [`Sha256`] state across every leaf and every interior level instead of
/// constructing a fresh hasher per node.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// Heap-layout node arena of size `2 · width`; index 0 is unused.
    nodes: Vec<Hash256>,
    /// Padded leaf width (`leaf_count.next_power_of_two()`).
    width: usize,
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds the tree over `leaves` (`MT.BUILD`).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty or holds more than `u32::MAX` entries.
    pub fn build<L: AsRef<[u8]>>(leaves: &[L]) -> Self {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        assert!(u32::try_from(leaves.len()).is_ok(), "too many leaves");
        let leaf_count = leaves.len();
        let width = leaf_count.next_power_of_two();

        let mut nodes = vec![Hash256::default(); 2 * width];
        let mut hasher = Sha256::new();
        // Batched leaf hashing: one reused state across all leaves.
        for (i, leaf) in leaves.iter().enumerate() {
            hasher.update(&[DOMAIN_LEAF]);
            hasher.update(&(i as u32).to_be_bytes());
            hasher.update(&(leaf_count as u32).to_be_bytes());
            hasher.update(leaf.as_ref());
            nodes[width + i] = hasher.finalize_reset();
        }
        let pad = empty_leaf();
        for node in &mut nodes[width + leaf_count..] {
            *node = pad;
        }
        // Interior levels bottom-up, same reused state.
        for i in (1..width).rev() {
            hasher.update(&[DOMAIN_NODE]);
            hasher.update(nodes[2 * i].as_bytes());
            hasher.update(nodes[2 * i + 1].as_bytes());
            nodes[i] = hasher.finalize_reset();
        }
        Self {
            nodes,
            width,
            leaf_count,
        }
    }

    /// Level-by-level reference build with a fresh hasher per node,
    /// retained as the differential oracle for the batched arena build.
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn build_reference<L: AsRef<[u8]>>(leaves: &[L]) -> Self {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        assert!(u32::try_from(leaves.len()).is_ok(), "too many leaves");
        let leaf_count = leaves.len();
        let width = leaf_count.next_power_of_two();

        let mut level: Vec<Hash256> = Vec::with_capacity(width);
        for (i, leaf) in leaves.iter().enumerate() {
            level.push(hash_leaf(i as u32, leaf_count as u32, leaf.as_ref()));
        }
        level.resize(width, empty_leaf());

        let mut levels = vec![level];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let next: Vec<Hash256> = prev
                .chunks(2)
                .map(|pair| hash_node(&pair[0], &pair[1]))
                .collect();
            levels.push(next);
        }
        // Re-pack the levels into the arena layout for comparison.
        let mut nodes = vec![Hash256::default(); 2 * width];
        for (depth, level) in levels.iter().enumerate() {
            let base = width >> depth;
            nodes[base..base + level.len()].copy_from_slice(level);
        }
        Self {
            nodes,
            width,
            leaf_count,
        }
    }

    /// The root hash `z`.
    pub fn root(&self) -> Hash256 {
        self.nodes[1]
    }

    /// Number of (real, unpadded) leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The witness `wᵢ` for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.leaf_count()`.
    pub fn witness(&self, index: usize) -> Witness {
        assert!(index < self.leaf_count, "leaf index {index} out of range");
        let mut path = Vec::with_capacity(self.width.trailing_zeros() as usize);
        let mut pos = self.width + index;
        while pos > 1 {
            path.push(self.nodes[pos ^ 1]);
            pos >>= 1;
        }
        Witness {
            leaf_count: self.leaf_count as u32,
            path,
        }
    }

    /// All witnesses, in leaf order (the `w₁, …, wₙ` of `MT.BUILD`).
    pub fn witnesses(&self) -> Vec<Witness> {
        (0..self.leaf_count).map(|i| self.witness(i)).collect()
    }

    /// `MT.VERIFY(z, i, leaf, w)`: checks that `leaf` is committed at
    /// position `index` of the tree with root `root`.
    ///
    /// Returns `false` (never panics) on any inconsistency, including
    /// adversarial witnesses with wrong shapes.
    pub fn verify<L: AsRef<[u8]>>(root: Hash256, index: usize, leaf: L, witness: &Witness) -> bool {
        let leaf_count = witness.leaf_count as usize;
        if leaf_count == 0 || index >= leaf_count {
            return false;
        }
        if witness.path.len() != expected_depth(witness.leaf_count) {
            return false;
        }
        let mut acc = hash_leaf(index as u32, witness.leaf_count, leaf.as_ref());
        let mut pos = index;
        for sibling in &witness.path {
            acc = if pos & 1 == 0 {
                hash_node(&acc, sibling)
            } else {
                hash_node(sibling, &acc)
            };
            pos >>= 1;
        }
        acc == root
    }
}

fn hash_leaf(index: u32, leaf_count: u32, data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[DOMAIN_LEAF]);
    h.update(&index.to_be_bytes());
    h.update(&leaf_count.to_be_bytes());
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[DOMAIN_NODE]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

fn empty_leaf() -> Hash256 {
    sha256(&[DOMAIN_EMPTY])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn witnesses_verify_for_all_sizes() {
        for n in 1..=17 {
            let data = leaves(n);
            let tree = MerkleTree::build(&data);
            for (i, leaf) in data.iter().enumerate() {
                let w = tree.witness(i);
                assert!(MerkleTree::verify(tree.root(), i, leaf, &w), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::build(&data);
        let w = tree.witness(3);
        assert!(!MerkleTree::verify(tree.root(), 3, b"forged", &w));
    }

    #[test]
    fn wrong_index_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::build(&data);
        let w = tree.witness(3);
        assert!(!MerkleTree::verify(tree.root(), 4, &data[3], &w));
        // Even with the matching leaf content of the other index.
        assert!(!MerkleTree::verify(tree.root(), 4, &data[4], &w));
    }

    #[test]
    fn wrong_root_rejected() {
        let data = leaves(5);
        let tree = MerkleTree::build(&data);
        let other = MerkleTree::build(&leaves(6));
        let w = tree.witness(0);
        assert!(!MerkleTree::verify(other.root(), 0, &data[0], &w));
    }

    #[test]
    fn malformed_witness_shapes_rejected() {
        let data = leaves(4);
        let tree = MerkleTree::build(&data);
        let mut w = tree.witness(1);
        w.path.push(Hash256::default());
        assert!(!MerkleTree::verify(tree.root(), 1, &data[1], &w));
        let mut w2 = tree.witness(1);
        w2.path.pop();
        assert!(!MerkleTree::verify(tree.root(), 1, &data[1], &w2));
        let w3 = Witness {
            leaf_count: 0,
            path: vec![],
        };
        assert!(!MerkleTree::verify(tree.root(), 0, &data[0], &w3));
    }

    #[test]
    fn duplicate_leaves_bind_to_positions() {
        // Identical leaf contents at two positions still yield
        // position-specific witnesses.
        let data = vec![b"same".to_vec(), b"same".to_vec()];
        let tree = MerkleTree::build(&data);
        let w0 = tree.witness(0);
        assert!(MerkleTree::verify(tree.root(), 0, &data[0], &w0));
        assert!(!MerkleTree::verify(tree.root(), 1, &data[1], &w0));
    }

    #[test]
    fn leaf_count_is_committed() {
        // A 2-leaf tree and the first two leaves of a 3-leaf tree differ.
        let t2 = MerkleTree::build(&leaves(2));
        let t3 = MerkleTree::build(&leaves(3));
        assert_ne!(t2.root(), t3.root());
        let w = t2.witness(0);
        assert!(!MerkleTree::verify(t3.root(), 0, &leaves(3)[0], &w));
    }

    #[test]
    fn witness_decode_rejects_malformed_shapes() {
        use ca_codec::{Decode, Encode};
        // A legitimate 9-leaf witness has depth ⌈log₂ 9⌉ = 4.
        let tree = MerkleTree::build(&leaves(9));
        let good = tree.witness(5);
        let encode = |w: &Witness| w.encode_to_vec();

        // Short path: one sibling stripped.
        let mut short = good.clone();
        short.path.pop();
        assert!(Witness::decode_from_slice(&encode(&short)).is_err());

        // Long path: one extra sibling appended (this decoded fine before
        // the depth cross-check — anything up to 33 was accepted).
        let mut long = good.clone();
        long.path.push(Hash256::default());
        assert!(Witness::decode_from_slice(&encode(&long)).is_err());

        // Mismatched leaf_count: same 4-sibling path, claimed tree of 3
        // leaves (depth 2).
        let mismatched = Witness {
            leaf_count: 3,
            path: good.path.clone(),
        };
        assert!(Witness::decode_from_slice(&encode(&mismatched)).is_err());

        // Zero leaves is shapeless.
        let zero = Witness {
            leaf_count: 0,
            path: vec![],
        };
        assert!(Witness::decode_from_slice(&encode(&zero)).is_err());

        // The untampered witness still round-trips.
        assert_eq!(Witness::decode_from_slice(&encode(&good)).unwrap(), good);
    }

    #[test]
    fn witness_decode_depth_tracks_leaf_count_boundaries() {
        use ca_codec::{Decode, Encode};
        // Powers of two and their neighbours: depth(2^k) = k but
        // depth(2^k + 1) = k + 1.
        for leaf_count in [1u32, 2, 3, 4, 5, 7, 8, 9, 255, 256, 257] {
            let depth = u64::from(leaf_count).next_power_of_two().trailing_zeros() as usize;
            let ok = Witness {
                leaf_count,
                path: vec![Hash256::default(); depth],
            };
            assert!(
                Witness::decode_from_slice(&ok.encode_to_vec()).is_ok(),
                "leaf_count = {leaf_count}, depth = {depth}"
            );
            for bad_depth in [depth.wrapping_sub(1), depth + 1] {
                if bad_depth > 40 {
                    continue; // wrapped below zero
                }
                let bad = Witness {
                    leaf_count,
                    path: vec![Hash256::default(); bad_depth],
                };
                assert!(
                    Witness::decode_from_slice(&bad.encode_to_vec()).is_err(),
                    "leaf_count = {leaf_count}, bad_depth = {bad_depth}"
                );
            }
        }
    }

    #[test]
    fn batched_build_matches_reference_at_n_256() {
        let data: Vec<Vec<u8>> = (0..256usize).map(|i| vec![i as u8; (i % 53) + 1]).collect();
        let batched = MerkleTree::build(&data);
        let reference = MerkleTree::build_reference(&data);
        assert_eq!(batched.root(), reference.root());
        for i in 0..data.len() {
            assert_eq!(batched.witness(i), reference.witness(i), "leaf {i}");
        }
    }

    #[test]
    fn witness_codec_round_trip() {
        let tree = MerkleTree::build(&leaves(9));
        let w = tree.witness(5);
        let bytes = ca_codec::Encode::encode_to_vec(&w);
        let back = <Witness as ca_codec::Decode>::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn witness_size_is_logarithmic() {
        use ca_codec::Encode;
        let t16 = MerkleTree::build(&leaves(16));
        let t256 = MerkleTree::build(&leaves(256));
        let s16 = t16.witness(0).encode_to_vec().len();
        let s256 = t256.witness(0).encode_to_vec().len();
        // 4 extra levels of 32-byte hashes.
        assert_eq!(s256 - s16, 4 * 32 + 1); // +1 varint growth for leaf_count
    }

    proptest! {
        #[test]
        fn prop_batched_matches_reference(n in 1usize..70, seed in any::<u64>()) {
            // The arena build with one reused Sha256 state must be
            // byte-identical to the fresh-hasher level-by-level reference.
            let data: Vec<Vec<u8>> = (0..n)
                .map(|i| {
                    let len = ((seed >> (i % 8)) as usize % 97) + 1;
                    vec![(i as u8).wrapping_mul(seed as u8); len]
                })
                .collect();
            let batched = MerkleTree::build(&data);
            let reference = MerkleTree::build_reference(&data);
            prop_assert_eq!(batched.root(), reference.root());
            prop_assert_eq!(batched.witnesses(), reference.witnesses());
        }

        #[test]
        fn prop_build_verify(n in 1usize..40, tamper in any::<u64>()) {
            let data: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; (i % 7) + 1]).collect();
            let tree = MerkleTree::build(&data);
            let idx = (tamper as usize) % n;
            let w = tree.witness(idx);
            prop_assert!(MerkleTree::verify(tree.root(), idx, &data[idx], &w));
            let mut bad = data[idx].clone();
            bad[0] ^= 1;
            prop_assert!(!MerkleTree::verify(tree.root(), idx, &bad, &w));
        }
    }
}
