//! The κ-bit digest type.

use std::fmt;

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

/// A 256-bit digest: the output of the paper's `Hκ` with κ = 256.
///
/// `Π_BA+` runs byzantine agreement on values of this type, and Merkle roots
/// (`z`, `z*` in §7) are of this type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash256([u8; 32]);

impl Hash256 {
    /// Wraps raw digest bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex rendering (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses 64 hex characters.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let s = std::str::from_utf8(chunk).ok()?;
            out[i] = u8::from_str_radix(s, 16).ok()?;
        }
        Some(Self(out))
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({}…)", &self.to_hex()[..12])
    }
}

impl Encode for Hash256 {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for Hash256 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self(<[u8; 32]>::decode(r)?))
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let h = Hash256::from_bytes([0xab; 32]);
        assert_eq!(Hash256::from_hex(&h.to_hex()), Some(h));
        assert_eq!(Hash256::from_hex("zz"), None);
        assert_eq!(Hash256::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn codec_round_trip() {
        let h = Hash256::from_bytes(std::array::from_fn(|i| i as u8));
        let bytes = h.encode_to_vec();
        assert_eq!(bytes.len(), 32);
        assert_eq!(Hash256::decode_from_slice(&bytes).unwrap(), h);
    }

    #[test]
    fn ordering_is_bytewise() {
        let lo = Hash256::from_bytes([0; 32]);
        let hi = Hash256::from_bytes([1; 32]);
        assert!(lo < hi);
    }
}
