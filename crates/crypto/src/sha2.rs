//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This instantiates the paper's collision-resistant hash `Hκ` with κ = 256.
//! The implementation is a straightforward, allocation-free translation of
//! the standard; it is validated against the NIST short/long message vectors
//! in the tests below.

use crate::Hash256;

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the square
/// roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use ca_crypto::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Resets the hasher to its initial state.
    ///
    /// Batch hashing (e.g. a Merkle build over thousands of leaves) reuses
    /// one hasher instead of constructing a fresh state per item.
    pub fn reset(&mut self) {
        self.state = H0;
        self.buf_len = 0;
        self.total_len = 0;
    }

    /// Finishes the computation, returns the digest, and resets the hasher
    /// for the next message.
    pub fn finalize_reset(&mut self) -> Hash256 {
        let digest = self.finalize_in_place();
        self.reset();
        digest
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> Hash256 {
        self.finalize_in_place()
    }

    fn finalize_in_place(&mut self) -> Hash256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeroes, then the 64-bit big-endian bit length.
        self.update_padding_byte();
        while self.buf_len != 56 {
            self.update_zero_byte();
        }
        self.total_len = 0; // neutralize further length tracking
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256::from_bytes(out)
    }

    fn update_padding_byte(&mut self) {
        self.push_pad_byte(0x80);
    }

    fn update_zero_byte(&mut self) {
        self.push_pad_byte(0x00);
    }

    fn push_pad_byte(&mut self, b: u8) {
        self.buf[self.buf_len] = b;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data` — the paper's `Hκ(data)`.
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 / CAVP test vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn nist_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(&sha256(input).to_hex(), expected);
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        for _ in 0..1_000_000 {
            h.update(b"a");
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn finalize_reset_matches_fresh_hasher() {
        let mut h = Sha256::new();
        for (input, expected) in VECTORS {
            h.update(input);
            assert_eq!(&h.finalize_reset().to_hex(), expected);
        }
        // Interleave buffered state: a partial block before reset must not
        // leak into the next message.
        h.update(b"garbage that never gets finalized");
        h.reset();
        h.update(b"abc");
        assert_eq!(
            h.finalize_reset().to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the padding boundaries must all be distinct hashes
        // and deterministic.
        let mut seen = std::collections::HashSet::new();
        for len in 0..200 {
            let data = vec![0x5a; len];
            let h = sha256(&data);
            assert_eq!(h, sha256(&data));
            assert!(seen.insert(h), "collision at length {len} (impossible)");
        }
    }
}
