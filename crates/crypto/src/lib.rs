//! Cryptographic substrate for the convex-agreement protocol suite.
//!
//! The paper (§2) assumes a collision-resistant hash function
//! `Hκ : {0,1}* → {0,1}^κ` and (§7) a collision-free cryptographic
//! accumulator instantiated with Merkle trees. This crate provides both:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4) implemented from scratch and verified
//!   against the NIST test vectors; `κ = 256`.
//! * [`Hash256`] — the `κ`-bit digest type used as `Π_BA+` input values.
//! * [`MerkleTree`] — the accumulator: [`MerkleTree::build`] is the paper's
//!   `MT.BUILD` (returning the root and all witnesses) and
//!   [`MerkleTree::verify`] is `MT.VERIFY`. Witnesses are `O(κ · log n)`
//!   bits, as required by Theorem 1's communication accounting.
//!
//! # Examples
//!
//! ```
//! use ca_crypto::{MerkleTree, sha256};
//!
//! let leaves: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 4]).collect();
//! let tree = MerkleTree::build(&leaves);
//! let witness = tree.witness(2);
//! assert!(MerkleTree::verify(tree.root(), 2, &leaves[2], &witness));
//! assert!(!MerkleTree::verify(tree.root(), 1, &leaves[2], &witness));
//! assert_eq!(sha256(b"abc").to_hex().len(), 64);
//! ```

mod digest;
mod merkle;
mod sha2;

pub use digest::Hash256;
pub use merkle::{MerkleTree, Witness};
pub use sha2::{sha256, Sha256};

/// The security parameter κ in bits (digest width of [`sha256`]).
pub const KAPPA_BITS: usize = 256;
