//! Experiment T5: criterion micro-benchmarks of the substrates —
//! SHA-256 throughput, Merkle build/verify, Reed–Solomon encode/decode,
//! and `BitString`/`Nat` hot operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ca_bits::{BitString, Nat};
use ca_crypto::{sha256, MerkleTree};
use ca_erasure::ReedSolomon;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(data));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for n in [8usize, 32, 128] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 64]).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::build(leaves));
        });
        let tree = MerkleTree::build(&leaves);
        let w = tree.witness(n / 2);
        group.bench_with_input(BenchmarkId::new("verify", n), &w, |b, w| {
            b.iter(|| MerkleTree::verify(tree.root(), n / 2, &leaves[n / 2], w));
        });
    }
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut group = c.benchmark_group("reed_solomon");
    for (n, size) in [(7usize, 16 * 1024usize), (13, 16 * 1024), (31, 64 * 1024)] {
        let t = (n - 1) / 3;
        let rs = ReedSolomon::new(n, n - t).unwrap();
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("encode", format!("n{n}_{size}B")),
            &data,
            |b, data| {
                b.iter(|| rs.encode(data));
            },
        );
        let shares = rs.encode(&data);
        let subset: Vec<_> = shares.iter().cloned().enumerate().skip(t).collect();
        group.bench_with_input(
            BenchmarkId::new("decode", format!("n{n}_{size}B")),
            &subset,
            |b, subset| {
                b.iter(|| rs.decode(subset).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("bits");
    let ell = 1 << 16;
    let a = BitString::from_bits((0..ell).map(|i| i % 3 == 0));
    let b = {
        let mut b = a.clone();
        b.set(ell / 2, !b.get(ell / 2));
        b
    };
    group.bench_function("common_prefix_64k", |bch| {
        bch.iter(|| a.common_prefix_len(&b));
    });
    group.bench_function("slice_unaligned_64k", |bch| {
        bch.iter(|| a.slice(3, ell - 5));
    });
    group.bench_function("cmp_val_64k", |bch| {
        bch.iter(|| a.cmp_val(&b));
    });
    let nat = Nat::all_ones(1 << 14);
    group.bench_function("nat_bits_round_trip_16k", |bch| {
        bch.iter(|| nat.to_bits_len(1 << 14).unwrap().val());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_merkle,
    bench_reed_solomon,
    bench_bits
);
criterion_main!(benches);
