//! Bench target for experiment F3 (see DESIGN.md §3). Prints the
//! table; honors CA_BENCH_QUICK=1 for a reduced sweep.
fn main() {
    let quick = std::env::var("CA_BENCH_QUICK").is_ok();
    assert!(ca_bench::experiments::run_by_name("f3", quick));
}
