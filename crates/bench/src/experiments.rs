//! The experiment suite: one function per table/figure of `DESIGN.md` §3.
//!
//! Every function prints its table(s) to stdout; `EXPERIMENTS.md` records
//! the claim-vs-measured discussion. `quick` shrinks sweeps for CI.

use ca_adversary::{Attack, AttackKind};
use ca_ba::{ba_plus, lba_plus, turpin_coan, BaKind};
use ca_bits::BitString;
use ca_core::find_prefix;
use ca_crypto::sha256;
use ca_net::Sim;

use std::path::Path;

use crate::summary::BenchSummary;
use crate::table::{fmt_bits, Table};
use crate::workload::{apply_lies, clustered_nats};
use crate::{run_nat_protocol, runner::run_nat_protocol_traced, Protocol};

/// Runs one experiment by id (`"t1"`, `"f1"`, …, or `"all"`).
///
/// Returns `false` if the id is unknown.
pub fn run_by_name(name: &str, quick: bool) -> bool {
    run_by_name_opts(name, quick, None)
}

/// [`run_by_name`] with an optional artifact directory: experiments that
/// support machine-readable output (F3, S1, R1) additionally write a
/// `BENCH_<exp>.json` claim-vs-measured summary — and, for F3, a
/// `run.jsonl` event timeline — into `artifacts`.
pub fn run_by_name_opts(name: &str, quick: bool, artifacts: Option<&Path>) -> bool {
    let started = std::time::Instant::now();
    let ok = run_inner(name, quick, artifacts);
    if ok && name != "all" {
        eprintln!("[{name} finished in {:.1?}]", started.elapsed());
    }
    ok
}

fn run_inner(name: &str, quick: bool, artifacts: Option<&Path>) -> bool {
    match name {
        "t1" => t1_protocol_comparison(quick),
        "f1" => f1_scaling_ell(quick),
        "f2" => f2_scaling_n(quick),
        "t2" => t2_rounds(quick),
        "f3" => f3_breakdown(quick, artifacts),
        "t3" => t3_extension(quick),
        "t4" => t4_adversarial(quick),
        "f4" => f4_ba_ablation(quick),
        "f5" => f5_findprefix(quick),
        "e1" => e1_approx_vs_exact(quick),
        "s1" => s1_service_throughput(quick, artifacts),
        "r1" => r1_crash_resilience(quick, artifacts),
        "a1" => a1_adaptive_sweep(quick, artifacts),
        "as1" => as1_async_vs_sync(quick, artifacts),
        "p1" => p1_kernel_grid(quick, artifacts),
        "all" => {
            for id in [
                "t1", "f1", "f2", "t2", "f3", "t3", "t4", "f4", "f5", "e1", "s1", "r1", "a1",
                "as1", "p1",
            ] {
                run_by_name_opts(id, quick, artifacts);
            }
        }
        _ => return false,
    }
    true
}

/// **T1** — Corollary 2: `Π_ℕ` vs the `O(ℓn²)` and `O(ℓn³)` baselines at a
/// fixed large `ℓ`. Expected shape: ours wins, by a factor growing ≈
/// linearly (vs broadcast) resp. ≈ quadratically (vs high-cost) in `n`.
pub fn t1_protocol_comparison(quick: bool) {
    let ns: &[usize] = if quick { &[4, 7] } else { &[4, 7, 10, 13] };
    let ell = 1 << 14;
    let mut table = Table::new(
        "T1: communication at ℓ = 2^14 (honest bits; paper Cor. 2 vs §1 baselines)",
        &[
            "n", "protocol", "BITS_l", "rounds", "vs pi_n", "agree", "convex",
        ],
    );
    for &n in ns {
        let inputs = clustered_nats(0x71 ^ n as u64, n, ell, ell / 2);
        let mut ours_bits = 0u64;
        for proto in Protocol::lineup() {
            let stats = run_nat_protocol(proto, &inputs, Attack::none());
            if matches!(proto, Protocol::PiN(_)) {
                ours_bits = stats.honest_bits;
            }
            let ratio = stats.honest_bits as f64 / ours_bits.max(1) as f64;
            table.row_strings(vec![
                n.to_string(),
                stats.protocol.to_string(),
                fmt_bits(stats.honest_bits),
                stats.rounds.to_string(),
                format!("{ratio:.2}x"),
                stats.agreement.to_string(),
                stats.validity.to_string(),
            ]);
        }
    }
    table.print();
}

/// **F1** — §1/§8: `Π_ℕ` is communication-optimal for
/// `ℓ = Ω(κ·n·log²n)`; below that threshold the additive `poly(n, κ)` term
/// dominates and the simpler baselines can be cheaper — the crossover.
pub fn f1_scaling_ell(quick: bool) {
    let n = 7;
    let exps: &[usize] = if quick {
        &[6, 10, 14]
    } else {
        &[6, 8, 10, 12, 14, 16, 18]
    };
    let mut table = Table::new(
        "F1: honest bits vs ℓ at n = 7 (series; crossover where pi_n wins)",
        &["l=2^k", "pi_n", "broadcast_ca", "high_cost_ca", "winner"],
    );
    for &k in exps {
        let ell = 1usize << k;
        let inputs = clustered_nats(0xF1 ^ k as u64, n, ell, ell / 2);
        let mut bits = Vec::new();
        for proto in Protocol::lineup() {
            bits.push(run_nat_protocol(proto, &inputs, Attack::none()).honest_bits);
        }
        let winner = Protocol::lineup()[bits
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| **b)
            .map(|(i, _)| i)
            .unwrap_or(0)]
        .name();
        table.row_strings(vec![
            format!("2^{k}"),
            fmt_bits(bits[0]),
            fmt_bits(bits[1]),
            fmt_bits(bits[2]),
            winner.to_string(),
        ]);
    }
    table.print();
}

/// **F2** — asymptotic slope in `n` of the **value term** `∂BITS/∂ℓ`.
///
/// Total bits mix the value term with the additive `κ·poly(n)` term, which
/// dominates at practical `ℓ` and hides the slopes; the *marginal* cost of
/// one extra input bit isolates the value term exactly: the paper claims
/// `Θ(n)` for `Π_ℕ` vs `Θ(n²)` for broadcast-based CA vs `Θ(n³)` for
/// `HighCostCA`.
pub fn f2_scaling_n(quick: bool) {
    let (ell_lo, ell_hi) = (1usize << 13, 1usize << 14);
    let ns: &[usize] = if quick {
        &[4, 7, 10]
    } else {
        &[4, 7, 10, 13, 16]
    };
    let mut series: Vec<(Protocol, Vec<(usize, f64)>)> = Protocol::lineup()
        .into_iter()
        .map(|p| (p, Vec::new()))
        .collect();
    let mut table = Table::new(
        "F2: marginal bits per input bit, (BITS(2^14) − BITS(2^13)) / 2^13",
        &["n", "pi_n", "broadcast_ca", "high_cost_ca"],
    );
    for &n in ns {
        let inputs_lo = clustered_nats(0xF2 ^ n as u64, n, ell_lo, ell_lo / 2);
        let inputs_hi = clustered_nats(0xF2 ^ n as u64, n, ell_hi, ell_hi / 2);
        let mut row = vec![n.to_string()];
        for (proto, points) in series.iter_mut() {
            let lo = run_nat_protocol(*proto, &inputs_lo, Attack::none()).honest_bits;
            let hi = run_nat_protocol(*proto, &inputs_hi, Attack::none()).honest_bits;
            let marginal = hi.saturating_sub(lo) as f64 / (ell_hi - ell_lo) as f64;
            points.push((n, marginal));
            row.push(format!("{marginal:.1}"));
        }
        table.row_strings(row);
    }
    table.print();

    let mut fit = Table::new(
        "F2 (fit): log-log exponent of the marginal cost in n (paper: 1 / 2 / 3)",
        &["protocol", "exponent"],
    );
    for (proto, points) in &series {
        if points.len() >= 2 {
            let (n1, b1) = points[0];
            let (n2, b2) = points[points.len() - 1];
            let slope = (b2 / b1).ln() / ((n2 as f64) / (n1 as f64)).ln();
            fit.row_strings(vec![proto.name().to_string(), format!("{slope:.2}")]);
        }
    }
    fit.print();
}

/// **T2** — round complexity: Cor. 2 claims `ROUNDSℓ(Π_ℤ) = O(n log n)`;
/// with phase-king `Π_BA` the dominant term is
/// `O(log n)` BA invocations × `O(n)` rounds each.
pub fn t2_rounds(quick: bool) {
    let ns: &[usize] = if quick {
        &[4, 7, 10]
    } else {
        &[4, 7, 10, 13, 16]
    };
    let ell = 1 << 10;
    let mut table = Table::new(
        "T2: rounds vs n at ℓ = 2^10 (paper: O(n log n) for pi_n)",
        &[
            "n",
            "pi_n",
            "rounds/(n·log2 n)",
            "high_cost_ca",
            "broadcast_ca(seq)",
            "broadcast_ca(par)",
        ],
    );
    for &n in ns {
        let inputs = clustered_nats(0x72 ^ n as u64, n, ell, ell / 2);
        let ours = run_nat_protocol(Protocol::PiN(BaKind::TurpinCoan), &inputs, Attack::none());
        let hc = run_nat_protocol(Protocol::HighCostCa, &inputs, Attack::none());
        let bc = run_nat_protocol(Protocol::BroadcastCa, &inputs, Attack::none());
        let bcp = run_nat_protocol(Protocol::BroadcastCaParallel, &inputs, Attack::none());
        let norm = ours.rounds as f64 / (n as f64 * (n as f64).log2());
        table.row_strings(vec![
            n.to_string(),
            ours.rounds.to_string(),
            format!("{norm:.1}"),
            hc.rounds.to_string(),
            bc.rounds.to_string(),
            bcp.rounds.to_string(),
        ]);
    }
    table.print();
}

/// **F3** — Theorem 5's cost decomposition: which subprotocol pays what.
///
/// With `artifacts` set, the short-path run is re-emitted as a structured
/// trace (`<dir>/run.jsonl`, one event per line — `ca-trace report/check`
/// consume it) and both runs land in `<dir>/BENCH_f3.json`.
pub fn f3_breakdown(quick: bool, artifacts: Option<&Path>) {
    let n: usize = if quick { 7 } else { 10 };
    // The short path requires ℓ ≤ n²; pick the largest power of two below.
    let short_ell = 1usize << ((n * n).ilog2() - 1);
    let mut summary = BenchSummary::new("f3");
    for (idx, (label, ell)) in [
        (format!("short path, ℓ = {short_ell}"), short_ell),
        ("long path, ℓ = 2^16".to_owned(), 1 << 16),
    ]
    .into_iter()
    .enumerate()
    {
        let inputs = clustered_nats(0xF3, n, ell, ell / 2);
        let proto = Protocol::PiN(BaKind::TurpinCoan);
        // Trace the (small) short-path run; the long-path timeline would be
        // tens of MB for no extra check coverage.
        let traced_sink = match (idx, artifacts) {
            (0, Some(dir)) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("warning: cannot create {}: {e}", dir.display());
                    None
                } else {
                    match ca_trace::JsonlSink::create(&dir.join("run.jsonl")) {
                        Ok(sink) => Some(std::sync::Arc::new(sink)),
                        Err(e) => {
                            eprintln!("warning: cannot create run.jsonl: {e}");
                            None
                        }
                    }
                }
            }
            _ => None,
        };
        let stats = match traced_sink {
            Some(sink) => run_nat_protocol_traced(proto, &inputs, Attack::none(), sink),
            None => run_nat_protocol(proto, &inputs, Attack::none()),
        };
        summary.push_run(&label, &stats);
        let mut table = Table::new(
            &format!("F3: per-subprotocol breakdown, n = {n}, {label}"),
            &["scope", "bits", "share", "rounds"],
        );
        let total = stats.metrics.honest_bits.max(1);
        for scope in [
            "pi_n/path_ba",
            "pi_n/len_est",
            "pi_n/blocksize",
            "pi_n/flca/find_prefix",
            "pi_n/flca/add_last_bit",
            "pi_n/flca/get_output",
            "pi_n/flcab/find_prefix",
            "pi_n/flcab/add_last_block",
            "pi_n/flcab/get_output",
        ] {
            let m = stats.metrics.scope_subtree(scope);
            if m.honest_bits == 0 && m.rounds == 0 {
                continue;
            }
            table.row_strings(vec![
                scope.to_string(),
                fmt_bits(m.honest_bits),
                format!("{:.1}%", 100.0 * m.honest_bits as f64 / total as f64),
                m.rounds.to_string(),
            ]);
        }
        table.row_strings(vec![
            "TOTAL".to_string(),
            fmt_bits(stats.honest_bits),
            "100%".to_string(),
            stats.rounds.to_string(),
        ]);
        table.print();
    }
    if let Some(dir) = artifacts {
        match summary.write(dir) {
            Ok(path) => eprintln!("[f3 artifacts: {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_f3.json: {e}"),
        }
    }
}

/// **T3** — Theorem 1: the extension protocol `Π_ℓBA+` vs running the
/// multi-valued BA directly on ℓ-bit values (`O(ℓn + κn²log n)` vs
/// `O(ℓn²)`); the gap should grow ≈ linearly in ℓ·n.
pub fn t3_extension(quick: bool) {
    let n = 7;
    let exps: &[usize] = if quick {
        &[10, 14]
    } else {
        &[8, 10, 12, 14, 16]
    };
    let mut table = Table::new(
        "T3: Π_ℓBA+ vs direct multi-valued BA on ℓ-bit inputs, n = 7",
        &["l=2^k", "lba+ bits", "direct tc bits", "ratio"],
    );
    for &k in exps {
        let ell = 1usize << k;
        let inputs: Vec<BitString> = clustered_nats(0x73 ^ k as u64, n, ell, ell / 2)
            .iter()
            .map(|v| v.to_bits_len(ell).expect("sized"))
            .collect();
        let a = {
            let inputs = inputs.clone();
            Sim::new(n)
                .run(move |ctx, id| lba_plus(ctx, &inputs[id.index()], BaKind::TurpinCoan))
                .metrics
                .honest_bits
        };
        let b = {
            let inputs = inputs.clone();
            Sim::new(n)
                .run(move |ctx, id| turpin_coan(ctx, inputs[id.index()].clone()))
                .metrics
                .honest_bits
        };
        table.row_strings(vec![
            format!("2^{k}"),
            fmt_bits(a),
            fmt_bits(b),
            format!("{:.2}x", b as f64 / a as f64),
        ]);
    }
    table.print();
}

/// **T4** — Definition 1 under the full adversary matrix: every protocol ×
/// every attack × seeds; all cells must read `ok`.
pub fn t4_adversarial(quick: bool) {
    let n = 7;
    let t = ca_net::max_faults(n);
    let ell = 256;
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
    let mut table = Table::new(
        "T4: Termination ∧ Agreement ∧ Convex Validity, n = 7, ℓ = 256",
        &["attack", "pi_n", "broadcast_ca", "high_cost_ca"],
    );
    for attack in Attack::standard_suite(0) {
        let mut row = vec![attack.name().to_string()];
        for proto in Protocol::lineup() {
            let mut ok = true;
            let mut worst_bits = 0u64;
            for &seed in seeds {
                let attack = attack.with_seed(seed);
                let mut inputs = clustered_nats(0x74 ^ seed, n, ell, ell / 2);
                apply_lies(&mut inputs, &attack, n, t, ell);
                let stats = run_nat_protocol(proto, &inputs, attack);
                ok &= stats.agreement && stats.validity;
                worst_bits = worst_bits.max(stats.honest_bits);
            }
            row.push(if ok {
                format!("ok ({})", fmt_bits(worst_bits))
            } else {
                "VIOLATION".to_string()
            });
        }
        table.row_strings(row);
    }
    table.print();
}

/// **F4** — ablation: `Π_BA` instantiation (Turpin–Coan reduction vs direct
/// multi-valued phase-king) inside the full stack and inside `Π_BA+`.
pub fn f4_ba_ablation(quick: bool) {
    let ns: &[usize] = if quick { &[4, 7] } else { &[4, 7, 10, 13] };
    let ell = 1 << 10;
    let mut table = Table::new(
        "F4: Π_BA ablation (Turpin–Coan vs phase-king)",
        &[
            "n",
            "pi_n[tc] bits",
            "pi_n[pk] bits",
            "ba+[tc] bits",
            "ba+[pk] bits",
        ],
    );
    for &n in ns {
        let inputs = clustered_nats(0xF4 ^ n as u64, n, ell, ell / 2);
        let tc = run_nat_protocol(Protocol::PiN(BaKind::TurpinCoan), &inputs, Attack::none());
        let pk = run_nat_protocol(Protocol::PiN(BaKind::PhaseKing), &inputs, Attack::none());
        let hashes: Vec<_> = (0..n).map(|i| sha256(&[i as u8, (i / 3) as u8])).collect();
        let bap_tc = {
            let hashes = hashes.clone();
            Sim::new(n)
                .run(move |ctx, id| ba_plus(ctx, hashes[id.index() / 3], BaKind::TurpinCoan))
                .metrics
                .honest_bits
        };
        let bap_pk = {
            let hashes = hashes.clone();
            Sim::new(n)
                .run(move |ctx, id| ba_plus(ctx, hashes[id.index() / 3], BaKind::PhaseKing))
                .metrics
                .honest_bits
        };
        table.row_strings(vec![
            n.to_string(),
            fmt_bits(tc.honest_bits),
            fmt_bits(pk.honest_bits),
            fmt_bits(bap_tc),
            fmt_bits(bap_pk),
        ]);
    }
    table.print();
}

/// **F5** — Lemma 1/8 behaviour of `FindPrefix`: iteration count is
/// `≤ ⌈log₂ ℓ⌉ + 1` and the agreed prefix is never shorter than the honest
/// inputs' longest common prefix, with and without a splitting input
/// attack.
pub fn f5_findprefix(quick: bool) {
    let n = 7;
    let t = ca_net::max_faults(n);
    let exps: &[usize] = if quick { &[6, 10] } else { &[4, 6, 8, 10, 12] };
    let mut table = Table::new(
        "F5: FindPrefix iterations and agreed-prefix length vs ℓ, n = 7",
        &[
            "l=2^k",
            "attack",
            "iters",
            "log2(l)+1",
            "|PREFIX*|",
            "honest LCP",
        ],
    );
    for &k in exps {
        let ell = 1usize << k;
        for attack in [
            Attack::none(),
            Attack::new(AttackKind::Lying(ca_adversary::LieKind::Split)),
        ] {
            let mut inputs = clustered_nats(0xF5 ^ k as u64, n, ell, ell / 4);
            apply_lies(&mut inputs, &attack, n, t, ell);
            let bits: Vec<BitString> = inputs
                .iter()
                .map(|v| v.to_bits_len(ell).expect("sized"))
                .collect();
            let honest_bits_strs: Vec<&BitString> = (0..n)
                .filter(|i| {
                    !attack
                        .corrupted_parties(n, t)
                        .iter()
                        .any(|p| p.index() == *i)
                })
                .map(|i| &bits[i])
                .collect();
            let lcp = honest_bits_strs
                .windows(2)
                .map(|w| w[0].common_prefix_len(w[1]))
                .min()
                .unwrap_or(ell);
            let sim = attack.install(Sim::new(n), n, t);
            let bits_owned = bits.clone();
            let report = sim.run(move |ctx, id| {
                find_prefix(ctx, ell, &bits_owned[id.index()], BaKind::TurpinCoan)
            });
            let out = report.honest_outputs()[0].clone();
            table.row_strings(vec![
                format!("2^{k}"),
                attack.name().to_string(),
                out.iterations.to_string(),
                (k + 1).to_string(),
                out.prefix.len().to_string(),
                lcp.to_string(),
            ]);
        }
    }
    table.print();
}

/// **E1** (extra, beyond the paper) — exact CA vs the classical relaxation
/// it strengthens: Approximate Agreement [16]. AA pays `O(ℓ'n²)` per
/// halving round for ε-agreement on bounded integers; CA pays once for
/// exact agreement on unbounded integers.
pub fn e1_approx_vs_exact(quick: bool) {
    use ca_core::approx_agreement;
    let ns: &[usize] = if quick { &[7] } else { &[4, 7, 10, 13] };
    let mut table = Table::new(
        "E1: Approximate Agreement [16] vs exact CA (inputs in [0, 2^20), ε = 1)",
        &["n", "aa bits", "aa rounds", "pi_n bits", "pi_n rounds"],
    );
    for &n in ns {
        let inputs: Vec<i64> = (0..n as i64).map(|i| 500_000 + i * 1_000).collect();
        let aa = {
            let inputs = inputs.clone();
            Sim::new(n)
                .run(move |ctx, id| approx_agreement(ctx, inputs[id.index()], (0, 1 << 20), 1))
        };
        let ca_inputs: Vec<_> = inputs
            .iter()
            .map(|&v| ca_bits::Nat::from_u64(v as u64))
            .collect();
        let ca = run_nat_protocol(
            Protocol::PiN(BaKind::TurpinCoan),
            &ca_inputs,
            Attack::none(),
        );
        table.row_strings(vec![
            n.to_string(),
            fmt_bits(aa.metrics.honest_bits),
            aa.metrics.rounds.to_string(),
            fmt_bits(ca.honest_bits),
            ca.rounds.to_string(),
        ]);
    }
    table.print();
}

/// **S1** (service layer, beyond the paper) — multiplexing amortization:
/// `K` CA sessions through one `ca-engine` deployment vs `K` isolated
/// runs. The per-instance `BITSℓ` payload is identical by construction
/// (the equivalence tests pin it); what amortizes is everything *around*
/// the payload — per-round `Eor` markers, per-connection `Hello`/`Bye`,
/// and per-message `Frame::Msg` framing shared by batched envelopes — so
/// per-session **wire** bits fall strictly below the `K = 1` cost as `K`
/// grows.
pub fn s1_service_throughput(quick: bool, artifacts: Option<&Path>) {
    use ca_engine::loadgen::{run_load_timed, LoadProfile};
    use ca_runtime::MonotonicClock;

    let n: usize = if quick { 4 } else { 7 };
    let ell: usize = if quick { 64 } else { 256 };
    let mut summary = BenchSummary::new("s1");
    let mut table = Table::new(
        &format!("S1: K sessions multiplexed through one engine, n = {n}, ℓ = {ell}"),
        &[
            "K",
            "attack",
            "sess/s",
            "rounds",
            "payload/sess",
            "wire/sess",
            "vs K=1",
            "batch p50",
            "ok",
        ],
    );
    let clock = MonotonicClock::default();
    let mut single_wire_per_session = 0u64;
    for (k, attack) in [
        (1usize, Attack::none()),
        (16, Attack::new(AttackKind::Garbage).with_seed(7)),
        (64, Attack::none()),
    ] {
        let mut profile = LoadProfile::closed(n, k, ell);
        profile.attack = attack;
        profile.config.max_sessions = k;
        let report = run_load_timed(&profile, &clock);
        let decided = report.sessions_decided.max(1);
        let wire_per_session = report.stats.wire_bits / decided;
        if k == 1 {
            single_wire_per_session = wire_per_session;
        }
        let label = format!("K={k}");
        summary.push_throughput(&label, profile.attack.name(), &report);
        table.row_strings(vec![
            k.to_string(),
            profile.attack.name().to_string(),
            report
                .sessions_per_sec()
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.0}")),
            report.stats.engine_rounds.to_string(),
            fmt_bits(report.payload_bits / decided),
            fmt_bits(wire_per_session),
            format!(
                "{:.2}x",
                wire_per_session as f64 / single_wire_per_session.max(1) as f64
            ),
            report
                .stats
                .batch_occupancy
                .quantile_permille(500)
                .to_string(),
            (report.agreement && report.validity).to_string(),
        ]);
    }
    table.print();
    if let Some(dir) = artifacts {
        match summary.write(dir) {
            Ok(path) => eprintln!("[s1 artifacts: {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_s1.json: {e}"),
        }
    }
}

/// **R1** (runtime resilience, beyond the paper) — crash-fault tolerance
/// of the TCP runtime: an n = 4 cluster runs a fixed-schedule iterated
/// midpoint over real sockets, once fault-free and once with `t = 1`
/// party crashed mid-protocol via a scripted [`ca_runtime::FaultPlan`].
/// The survivors must still agree on a value inside the honest input
/// hull, in the same number of rounds; the crashed run additionally
/// shows what the outage costs on the wire (fewer frames, `peers_gone`
/// observations). A frozen [`ca_runtime::ManualClock`] keeps both runs
/// off the `Δ`-timeout path, so the byte counts are reproducible.
pub fn r1_crash_resilience(quick: bool, artifacts: Option<&Path>) {
    use ca_net::{Comm, CommExt, PartyId};
    use ca_runtime::{Clock, FaultPlan, ManualClock, TcpCluster};

    let n: usize = 4;
    let t = ca_net::max_faults(n);
    let rounds: u64 = if quick { 6 } else { 12 };
    let crash_round: u64 = 3;
    let inputs: [u64; 4] = [10, 40, 20, 30];

    let run = |crashed: usize| {
        let mut cluster = TcpCluster::new(n)
            // Huge Δ: with frozen clocks the timeout path never fires, so
            // rounds end on markers/EOFs alone and byte counts reproduce.
            .with_delta(std::time::Duration::from_secs(3600))
            .with_clock_factory(|_| -> Box<dyn Clock> { Box::new(ManualClock::new()) });
        for p in 0..crashed {
            cluster = cluster.with_fault_plan(n - 1 - p, FaultPlan::new().crash_at(crash_round));
        }
        cluster.run_report(move |ctx: &mut dyn Comm, id: PartyId| {
            let mut v = inputs[id.index()];
            for _ in 0..rounds {
                let inbox = ctx.exchange(&v);
                let vals: Vec<u64> = inbox
                    .decode_each::<u64>()
                    .into_iter()
                    .map(|(_, x)| x)
                    .collect();
                if let (Some(&min), Some(&max)) = (vals.iter().min(), vals.iter().max()) {
                    v = min + (max - min) / 2;
                }
            }
            v
        })
    };

    let mut summary = BenchSummary::new("r1");
    let mut table = Table::new(
        &format!(
            "R1: crash resilience over TCP, n = {n}, {rounds} rounds, crash at round {crash_round}"
        ),
        &[
            "crashed",
            "rounds",
            "agree",
            "convex",
            "frames",
            "wire bytes",
            "shed",
            "gone",
        ],
    );
    for crashed in [0usize, t] {
        let report = match run(crashed) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("warning: r1 cluster run failed: {e}");
                return;
            }
        };
        let honest: Vec<u64> = (0..n - crashed).map(|i| report.outputs[i]).collect();
        let agreement = honest.windows(2).all(|w| w[0] == w[1]);
        let (lo, hi) = inputs[..n - crashed]
            .iter()
            .fold((u64::MAX, 0), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let validity = honest.iter().all(|&v| (lo..=hi).contains(&v));
        let rounds_to_decide = report.rounds.iter().copied().max().unwrap_or(0);
        let frames: u64 = report.stats.iter().map(|s| s.frames_sent).sum();
        let wire: u64 = report.stats.iter().map(|s| s.wire_bytes_sent).sum();
        let shed: u64 = report.stats.iter().map(|s| s.frames_shed).sum();
        let gone = report.stats.iter().map(|s| s.peers_gone).max().unwrap_or(0);
        let label = format!("{crashed} crashed");
        summary.push_resilience(
            &label,
            crashed,
            rounds_to_decide,
            agreement,
            validity,
            &report.stats,
        );
        table.row_strings(vec![
            crashed.to_string(),
            rounds_to_decide.to_string(),
            agreement.to_string(),
            validity.to_string(),
            frames.to_string(),
            wire.to_string(),
            shed.to_string(),
            gone.to_string(),
        ]);
    }
    table.print();
    if let Some(dir) = artifacts {
        match summary.write(dir) {
            Ok(path) => eprintln!("[r1 artifacts: {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_r1.json: {e}"),
        }
    }
}

/// **A1** — the fault-adaptive fast path (ROADMAP item 1): sweep the
/// *actual* fault count `f = 0..t` at fixed `n` and compare
/// `pi_n_adaptive` against the fixed-cost worst-case `pi_n`. Expected
/// shape: at `f = 0` the fast path certifies and wins by a large constant
/// factor in both bits and rounds; any `f > 0` silent party forces the
/// certified fallback, whose cost matches the worst case plus the
/// constant-round attempt. Every sweep point is traced and must pass
/// `ca-trace check` (agreement + decide-in-hull + the fast-path
/// invariants).
///
/// With `artifacts` set, writes `BENCH_a1.json` including the top-level
/// gate `"f0_beats_worst_case"` (true iff `f = 0` used strictly fewer
/// rounds and ≤ 0.5× the wire bits of the worst case, all sweep points
/// correct and trace-clean).
pub fn a1_adaptive_sweep(quick: bool, artifacts: Option<&Path>) {
    use ca_bits::Nat;
    use ca_core::{check_agreement, check_convex_validity, pi_n_adaptive, FastPathConfig};
    use ca_net::{Corruption, PartyId};
    use std::sync::Arc;

    let n: usize = 7;
    let t = ca_net::max_faults(n);
    let ell = if quick { 96 } else { 256 };
    let inputs = clustered_nats(0xA1, n, ell, ell / 2);

    let mut summary = BenchSummary::new("a1");
    let worst = run_nat_protocol(Protocol::PiN(BaKind::TurpinCoan), &inputs, Attack::none());
    summary.push_run("worst-case pi_n, f = 0", &worst);

    let mut table = Table::new(
        &format!("A1: fault-adaptive fast path, n = {n}, t = {t}, ℓ = {ell}"),
        &[
            "f", "protocol", "bits", "rounds", "path", "agree", "convex", "trace",
        ],
    );
    table.row_strings(vec![
        "0".to_string(),
        worst.protocol.to_string(),
        fmt_bits(worst.honest_bits),
        worst.rounds.to_string(),
        "worst-case".to_string(),
        worst.agreement.to_string(),
        worst.validity.to_string(),
        "-".to_string(),
    ]);

    let mut all_correct = true;
    let mut f0 = None;
    for f in 0..=t {
        let sink = Arc::new(ca_trace::RingBufferSink::new(16 << 20));
        let mut sim = Sim::new(n).with_trace(Arc::clone(&sink) as Arc<dyn ca_trace::TraceSink>);
        for p in n - f..n {
            // Scripted with no adversary: silent from round 0 — exactly
            // `f` actual crash faults, deterministically.
            sim = sim.corrupt(PartyId(p), Corruption::Scripted);
        }
        let run_inputs = inputs.clone();
        let report = sim.run(move |ctx, id| {
            pi_n_adaptive(
                ctx,
                &run_inputs[id.index()],
                BaKind::TurpinCoan,
                FastPathConfig::default(),
            )
        });
        let honest_inputs: Vec<Nat> = report
            .honest_parties()
            .iter()
            .map(|p| inputs[p.index()].clone())
            .collect();
        let outs: Vec<Nat> = report.honest_outputs().into_iter().cloned().collect();
        let agreement = check_agreement(&outs);
        let validity = check_convex_validity(&outs, &honest_inputs);
        let records = sink.records();
        assert_eq!(
            sink.total_seen() as usize,
            records.len(),
            "a1 trace ring wrapped; raise its capacity"
        );
        let violations = ca_trace::check(&records);
        let clean = violations.is_empty();
        for v in &violations {
            eprintln!("a1 trace violation at f = {f}: {v}");
        }
        let fast_deciders = records
            .iter()
            .filter(|r| matches!(r.event, ca_trace::Event::FastPathTaken { .. }))
            .count();
        let path = if fast_deciders > 0 {
            format!("fast ({fast_deciders})")
        } else {
            "fallback".to_string()
        };
        all_correct &= agreement && validity && clean;
        if f == 0 {
            f0 = Some((report.metrics.honest_bits, report.metrics.rounds));
        }

        let stats = crate::runner::RunStats {
            protocol: "pi_n_adaptive",
            n,
            t,
            ell,
            attack: if f == 0 { "none" } else { "crash" },
            honest_bits: report.metrics.honest_bits,
            rounds: report.metrics.rounds,
            agreement,
            validity,
            metrics: report.metrics.clone(),
        };
        summary.push_run(&format!("adaptive, f = {f}"), &stats);
        table.row_strings(vec![
            f.to_string(),
            "pi_n_adaptive".to_string(),
            fmt_bits(stats.honest_bits),
            stats.rounds.to_string(),
            path,
            agreement.to_string(),
            validity.to_string(),
            if clean { "clean" } else { "VIOLATION" }.to_string(),
        ]);
    }
    table.print();

    // ca-lint: allow(panic-path) — f0 is set by the f = 0 iteration above
    let (f0_bits, f0_rounds) = f0.expect("sweep includes f = 0");
    let f0_beats = all_correct && f0_rounds < worst.rounds && f0_bits * 2 <= worst.honest_bits;
    summary.set_flag("f0_beats_worst_case", f0_beats);
    println!(
        "A1 verdict: f0_beats_worst_case = {f0_beats} \
         (adaptive {} bits / {} rounds vs worst-case {} bits / {} rounds)",
        fmt_bits(f0_bits),
        f0_rounds,
        fmt_bits(worst.honest_bits),
        worst.rounds
    );
    if let Some(dir) = artifacts {
        match summary.write(dir) {
            Ok(path) => eprintln!("[a1 artifacts: {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_a1.json: {e}"),
        }
    }
}

/// **AS1** — synchrony-model ablation: the *same* asynchronous
/// approximate-agreement state machine ([`ca_async::AsyncApprox`]) run
/// under one seeded delay distribution on three hosts:
///
/// 1. a round-barrier simulator with Δ *tuned* to the actual maximum
///    delay (the best case synchrony can do — every barrier still waits
///    out the full Δ);
/// 2. the same simulator with Δ *mistuned* in both directions — an
///    under-estimate (messages miss their barrier, burning extra
///    "wasted" rounds waiting on quorums) and an over-estimate (the
///    realistic unknown-network setting, burning wall clock on every
///    barrier);
/// 3. the event-driven [`ca_async::Executor`] — no Δ anywhere; each
///    protocol hop completes when its quorum's slowest message lands.
///
/// Wall clock is measured in the delay distribution's own time units:
/// `rounds × Δ` for the barrier hosts, last decide virtual time for the
/// async host. The gate `"as1_async_wins"` holds iff every run decided
/// correctly (ε-agreement inside the hull, async trace invariant-clean)
/// and the async host beat the mistuned baselines on their failure
/// axes: less wall clock than the over-estimate, zero wasted rounds
/// while the under-estimate wasted some.
///
/// With `artifacts` set, writes `BENCH_as1.json`.
pub fn as1_async_vs_sync(quick: bool, artifacts: Option<&Path>) {
    use std::sync::Arc;

    use ca_async::{rounds_for_spread, run_on_comm, AsyncApprox, DeliverySchedule, Executor};
    use ca_bits::Nat;
    use ca_net::{DelayedSim, EdgeDelays, PartyId};

    use crate::summary::AsyncRow;

    let n: usize = 4;
    let t: usize = 1;
    let seed: u64 = 0xA51;
    // Per-message delays are uniform in [base, base + jitter].
    let (base, jitter) = (8u64, 8u64);
    let max_delay = base + jitter;
    let spread: u64 = if quick { 1_000 } else { 1_000_000 };
    let inputs: Vec<u64> = vec![0, spread / 5, spread * 2 / 3, spread];
    let rounds = rounds_for_spread(&Nat::from_u64(spread));
    let delays = || EdgeDelays::uniform(seed, base, jitter);

    // ε-agreement (ε = 1) plus convexity against the input hull.
    let check = |outs: &[Nat]| -> (bool, bool) {
        let lo = outs.iter().min().expect("nonempty");
        let hi = outs.iter().max().expect("nonempty");
        let agreement = hi.checked_sub(lo).expect("hi >= lo") <= Nat::one();
        let hull_lo = Nat::from_u64(*inputs.iter().min().expect("nonempty"));
        let hull_hi = Nat::from_u64(*inputs.iter().max().expect("nonempty"));
        (agreement, *lo >= hull_lo && *hi <= hull_hi)
    };

    // One barrier-hosted run: the async state machine adapted onto the
    // lock-step simulator via `run_on_comm`, messages delayed per the
    // shared distribution and released at Δ-barriers.
    let sync_run = |delta: u64| -> (Vec<Nat>, u64, u64, u64) {
        let run_inputs = inputs.clone();
        let report = DelayedSim::new(n, delays(), delta)
            .with_max_rounds(4096)
            .run(move |ctx, id: PartyId| {
                let proto =
                    AsyncApprox::new(n, t, id, Nat::from_u64(run_inputs[id.index()]), rounds);
                run_on_comm(ctx, proto, 4096).expect("sync-hosted AAA decides")
            });
        let outs: Vec<Nat> = report.honest_outputs().into_iter().cloned().collect();
        let m = &report.metrics;
        (outs, m.rounds, m.honest_msgs, m.honest_bits / 8)
    };

    let mut summary = BenchSummary::new("as1");
    let mut table = Table::new(
        &format!(
            "AS1: sync Δ-hosts vs event-driven async, n = {n}, delays ∈ [{base}, {max_delay}], \
             spread = {spread}, {rounds} AAA rounds"
        ),
        &[
            "config",
            "delta",
            "wall",
            "rounds",
            "wasted",
            "msgs",
            "payload B",
            "agree",
            "convex",
        ],
    );

    let mut all_correct = true;
    let push = |summary: &mut BenchSummary, table: &mut Table, row: AsyncRow| {
        table.row_strings(vec![
            row.label.clone(),
            row.delta.map_or_else(|| "-".to_owned(), |d| d.to_string()),
            row.wall.to_string(),
            row.rounds.to_string(),
            row.wasted_rounds.to_string(),
            row.messages.to_string(),
            row.payload_bytes.to_string(),
            row.agreement.to_string(),
            row.validity.to_string(),
        ]);
        summary.push_async(&row);
    };

    // Δ tuned to the (here known) worst-case delay: the synchrony
    // baseline at its best, and the yardstick for "wasted" rounds.
    let tuned_delta = max_delay + 1;
    let (outs, tuned_rounds, msgs, payload) = sync_run(tuned_delta);
    let (agreement, validity) = check(&outs);
    all_correct &= agreement && validity;
    push(
        &mut summary,
        &mut table,
        AsyncRow {
            label: "sync, tuned delta".to_owned(),
            mode: "sync-tuned".to_owned(),
            delta: Some(tuned_delta),
            wall: tuned_rounds * tuned_delta,
            rounds: tuned_rounds,
            wasted_rounds: 0,
            messages: msgs,
            payload_bytes: payload,
            agreement,
            validity,
        },
    );

    // Δ under-estimated: messages routinely miss their barrier, so
    // quorums straggle across rounds and barriers are burned waiting.
    let under_delta = base + jitter / 2;
    let (outs, under_rounds, msgs, payload) = sync_run(under_delta);
    let (agreement, validity) = check(&outs);
    all_correct &= agreement && validity;
    let under_wasted = under_rounds.saturating_sub(tuned_rounds);
    push(
        &mut summary,
        &mut table,
        AsyncRow {
            label: "sync, mistuned delta (under)".to_owned(),
            mode: "sync-mistuned".to_owned(),
            delta: Some(under_delta),
            wall: under_rounds * under_delta,
            rounds: under_rounds,
            wasted_rounds: under_wasted,
            messages: msgs,
            payload_bytes: payload,
            agreement,
            validity,
        },
    );

    // Δ over-estimated: what an unknown network forces — correct, but
    // every barrier pays the padded timeout in full.
    let over_delta = 250;
    let (outs, over_rounds, msgs, payload) = sync_run(over_delta);
    let (agreement, validity) = check(&outs);
    all_correct &= agreement && validity;
    let over_wall = over_rounds * over_delta;
    push(
        &mut summary,
        &mut table,
        AsyncRow {
            label: "sync, mistuned delta (over)".to_owned(),
            mode: "sync-mistuned".to_owned(),
            delta: Some(over_delta),
            wall: over_wall,
            rounds: over_rounds,
            wasted_rounds: over_rounds.saturating_sub(tuned_rounds),
            messages: msgs,
            payload_bytes: payload,
            agreement,
            validity,
        },
    );

    // The event-driven host: same state machine, same delay samples per
    // edge, no Δ anywhere. Traced, with the invariants checked.
    let sink = Arc::new(ca_trace::RingBufferSink::new(16 << 20));
    let parties: Vec<AsyncApprox> = (0..n)
        .map(|i| AsyncApprox::new(n, t, PartyId(i), Nat::from_u64(inputs[i]), rounds))
        .collect();
    let report = Executor::new(parties, DeliverySchedule::new(delays()))
        .with_trace(Arc::clone(&sink) as Arc<dyn ca_trace::TraceSink>)
        .run();
    let records = sink.records();
    assert_eq!(
        sink.total_seen() as usize,
        records.len(),
        "as1 trace ring wrapped; raise its capacity"
    );
    let violations = ca_trace::check(&records);
    for v in &violations {
        eprintln!("as1 trace violation: {v}");
    }
    let async_decided = report.outputs.iter().all(Option::is_some);
    let outs: Vec<Nat> = report.outputs.iter().flatten().cloned().collect();
    let (agreement, validity) = check(&outs);
    all_correct &= agreement && validity && async_decided && violations.is_empty();
    let async_wall = report.last_decide_time().unwrap_or(u64::MAX);
    push(
        &mut summary,
        &mut table,
        AsyncRow {
            label: "async, event-driven".to_owned(),
            mode: "async".to_owned(),
            delta: None,
            wall: async_wall,
            rounds,
            wasted_rounds: 0,
            messages: report.messages,
            payload_bytes: report.payload_bytes,
            agreement,
            validity,
        },
    );

    table.print();

    let async_wins = all_correct && async_wall < over_wall && under_wasted > 0;
    summary.set_flag("as1_async_wins", async_wins);
    println!(
        "AS1 verdict: as1_async_wins = {async_wins} \
         (async wall {async_wall} vs over-estimated sync {over_wall}; \
         under-estimated sync wasted {under_wasted} rounds, async 0)"
    );
    if let Some(dir) = artifacts {
        match summary.write(dir) {
            Ok(path) => eprintln!("[as1 artifacts: {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_as1.json: {e}"),
        }
    }
}

/// **P1** (hot-path kernels, beyond the paper) — the n = 256 scaling
/// grid: single-core throughput of the blocked split-table RS kernels and
/// the batched arena Merkle build against the scalar reference paths
/// (compiled in via the `scalar-oracle` features), over
/// n ∈ {16, 64, 128, 256} × ℓ up to 1 MiB. Every cell is also a runtime
/// differential test: the blocked and scalar kernels must produce
/// byte-identical codewords/reconstructions and the same Merkle root.
///
/// Decode is measured on the *parity-heavy* share subset — systematic
/// shares are dropped first, so (almost) every reconstructed column pays
/// the full k-term coefficient row. That is the kernel's worst case and
/// the regime the blocking targets.
///
/// With `artifacts` set, writes `BENCH_p1.json` including the top-level
/// gate `"p1_blocked_beats_scalar"` (true iff all cells are
/// differentially equal and the largest cell — n = 256, ℓ = 1 MiB on the
/// full grid — shows ≥ 2× blocked-over-scalar speedup on both encode and
/// decode).
pub fn p1_kernel_grid(quick: bool, artifacts: Option<&Path>) {
    use crate::summary::KernelRow;
    use ca_codec::Encode;
    use ca_crypto::MerkleTree;
    use ca_erasure::{ReedSolomon, Share};
    use std::time::Instant;

    let ns: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 128, 256]
    };
    let ells: &[usize] = if quick {
        &[64 << 10, 256 << 10]
    } else {
        &[256 << 10, 1 << 20]
    };

    /// Measures `f`'s sustained rate by repeating it until ≥ `budget_ms`
    /// of wall clock is spent (at least once), returning MB of payload
    /// processed per second of one core.
    fn mbps(ell: usize, budget_ms: u64, mut f: impl FnMut()) -> f64 {
        let budget = std::time::Duration::from_millis(budget_ms);
        let start = Instant::now();
        let mut reps = 0u64;
        while reps == 0 || start.elapsed() < budget {
            f();
            reps += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        (ell as f64 * reps as f64) / secs / 1e6
    }

    let budget_ms: u64 = if quick { 30 } else { 200 };
    let mut summary = BenchSummary::new("p1");
    let mut table = Table::new(
        "P1: blocked vs scalar kernel throughput, one core (MB/s of payload)",
        &[
            "n", "l", "enc blk", "enc sca", "enc x", "dec blk", "dec sca", "dec x", "mrk blk",
            "mrk sca", "mrk x", "equal",
        ],
    );

    let mut all_equal = true;
    let mut last_cell: Option<KernelRow> = None;
    for &n in ns {
        let k = n - ca_net::max_faults(n);
        // ca-lint: allow(panic-path) — (n, k) are the experiment grid, not wire input
        let rs = ReedSolomon::new(n, k).expect("valid grid parameters");
        for &ell in ells {
            let data: Vec<u8> = (0..ell as u32)
                .map(|i| (i.wrapping_mul(2_654_435_761) >> 7) as u8)
                .collect();

            // Differential check once per cell, outside the timed loops.
            let blocked = rs.encode(&data);
            let scalar = rs.encode_scalar(&data);
            let mut equal = blocked == scalar;
            // Parity-heavy subset: take the k highest-indexed shares.
            let subset: Vec<(usize, Share)> = (n - k..n).map(|i| (i, blocked[i].clone())).collect();
            // ca-lint: allow(panic-path) — subset has exactly k verified shares
            let rec_blocked = rs.decode(&subset).expect("k shares reconstruct");
            // ca-lint: allow(panic-path) — same subset through the oracle
            let rec_scalar = rs.decode_scalar(&subset).expect("k shares reconstruct");
            equal &= rec_blocked == data && rec_scalar == data;
            let leaves: Vec<Vec<u8>> = blocked.iter().map(Encode::encode_to_vec).collect();
            let tree = MerkleTree::build(&leaves);
            let tree_ref = MerkleTree::build_reference(&leaves);
            equal &= tree.root() == tree_ref.root();
            all_equal &= equal;

            let enc_blk = mbps(ell, budget_ms, || {
                std::hint::black_box(rs.encode(std::hint::black_box(&data)));
            });
            let enc_sca = mbps(ell, budget_ms, || {
                std::hint::black_box(rs.encode_scalar(std::hint::black_box(&data)));
            });
            let dec_blk = mbps(ell, budget_ms, || {
                // ca-lint: allow(panic-path) — verified above
                std::hint::black_box(rs.decode(std::hint::black_box(&subset)).expect("decodes"));
            });
            let dec_sca = mbps(ell, budget_ms, || {
                std::hint::black_box(
                    // ca-lint: allow(panic-path) — verified above
                    rs.decode_scalar(std::hint::black_box(&subset))
                        .expect("decodes"),
                );
            });
            let mrk_blk = mbps(ell, budget_ms, || {
                std::hint::black_box(MerkleTree::build(std::hint::black_box(&leaves)));
            });
            let mrk_sca = mbps(ell, budget_ms, || {
                std::hint::black_box(MerkleTree::build_reference(std::hint::black_box(&leaves)));
            });

            let row = KernelRow {
                label: format!("n={n}, l={}KiB", ell >> 10),
                n,
                k,
                ell_bytes: ell,
                encode_blocked_mbps: enc_blk,
                encode_scalar_mbps: enc_sca,
                decode_blocked_mbps: dec_blk,
                decode_scalar_mbps: dec_sca,
                merkle_batched_mbps: mrk_blk,
                merkle_reference_mbps: mrk_sca,
                differential_equal: equal,
            };
            table.row_strings(vec![
                n.to_string(),
                format!("{}KiB", ell >> 10),
                format!("{enc_blk:.0}"),
                format!("{enc_sca:.0}"),
                format!("{:.2}x", row.encode_speedup()),
                format!("{dec_blk:.0}"),
                format!("{dec_sca:.0}"),
                format!("{:.2}x", row.decode_speedup()),
                format!("{mrk_blk:.0}"),
                format!("{mrk_sca:.0}"),
                format!("{:.2}x", row.merkle_speedup()),
                equal.to_string(),
            ]);
            summary.push_kernel(&row);
            last_cell = Some(row);
        }
    }
    table.print();

    // The gate reads the grid's largest cell (n = 256, ℓ = 1 MiB on the
    // full grid; the quick grid gates on its own largest cell so CI still
    // exercises the comparison).
    // ca-lint: allow(panic-path) — the grid is never empty
    let cell = last_cell.expect("grid has cells");
    let beats = all_equal && cell.encode_speedup() >= 2.0 && cell.decode_speedup() >= 2.0;
    summary.set_flag("p1_blocked_beats_scalar", beats);
    println!(
        "P1 verdict: p1_blocked_beats_scalar = {beats} \
         ({}: encode {:.2}x, decode {:.2}x, merkle {:.2}x, all cells equal = {all_equal})",
        cell.label,
        cell.encode_speedup(),
        cell.decode_speedup(),
        cell.merkle_speedup()
    );
    if let Some(dir) = artifacts {
        match summary.write(dir) {
            Ok(path) => eprintln!("[p1 artifacts: {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_p1.json: {e}"),
        }
    }
}

/// Smoke-level sanity used by `cargo test -p ca-bench`: every experiment
/// runs in quick mode without panicking.
pub fn smoke_all() {
    assert!(run_by_name("all", true));
}

#[cfg(test)]
mod tests {
    #[test]
    fn unknown_experiment_rejected() {
        assert!(!super::run_by_name("nope", true));
    }

    /// The acceptance claim behind S1: per-session wire cost at K = 64
    /// is strictly below the single-instance cost (i.e. 64 multiplexed
    /// sessions cost strictly less than 64× one isolated session).
    #[test]
    fn s1_amortization_holds() {
        use ca_engine::loadgen::{run_load, LoadProfile};
        let single = run_load(&LoadProfile::closed(4, 1, 64));
        assert!(single.agreement && single.validity);
        let mut profile = LoadProfile::closed(4, 64, 64);
        profile.config.max_sessions = 64;
        let multi = run_load(&profile);
        assert!(multi.agreement && multi.validity);
        assert_eq!(multi.sessions_decided, 64);
        let single_wire = single.stats.wire_bits;
        let multi_wire_per_session = multi.stats.wire_bits / multi.sessions_decided;
        assert!(
            multi_wire_per_session < single_wire,
            "no amortization: {multi_wire_per_session} >= {single_wire}"
        );
        // The payload itself must NOT shrink — multiplexing amortizes
        // framing and round sync, never the protocol's own bits.
        assert!(
            multi.payload_bits / multi.sessions_decided >= single.payload_bits * 9 / 10,
            "payload should be ~invariant per session"
        );
    }

    #[test]
    fn s1_artifact_has_throughput_fields() {
        let dir = std::env::temp_dir().join(format!("ca-bench-s1-{}", std::process::id()));
        assert!(super::run_by_name_opts("s1", true, Some(&dir)));
        let bench = std::fs::read_to_string(dir.join("BENCH_s1.json")).unwrap();
        for key in [
            "\"experiment\": \"s1\"",
            "\"kind\": \"throughput\"",
            "\"sessions_per_sec\"",
            "\"wire_bits_per_session\"",
            "\"session_latency_rounds\"",
            "\"batch_occupancy\"",
            "\"label\": \"K=64\"",
        ] {
            assert!(bench.contains(key), "missing {key} in:\n{bench}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn r1_artifact_has_resilience_fields() {
        let dir = std::env::temp_dir().join(format!("ca-bench-r1-{}", std::process::id()));
        assert!(super::run_by_name_opts("r1", true, Some(&dir)));
        let bench = std::fs::read_to_string(dir.join("BENCH_r1.json")).unwrap();
        for key in [
            "\"experiment\": \"r1\"",
            "\"kind\": \"resilience\"",
            "\"label\": \"0 crashed\"",
            "\"label\": \"1 crashed\"",
            "\"rounds_to_decide\"",
            "\"agreement\": true",
            "\"validity\": true",
            "\"wire_bytes_sent\"",
            "\"peers_gone\": 1",
        ] {
            assert!(bench.contains(key), "missing {key} in:\n{bench}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a1_artifact_gates_on_fast_path_win() {
        let dir = std::env::temp_dir().join(format!("ca-bench-a1-{}", std::process::id()));
        assert!(super::run_by_name_opts("a1", true, Some(&dir)));
        let bench = std::fs::read_to_string(dir.join("BENCH_a1.json")).unwrap();
        assert_eq!(
            bench.matches('{').count(),
            bench.matches('}').count(),
            "unbalanced braces in:\n{bench}"
        );
        for key in [
            "\"experiment\": \"a1\"",
            "\"f0_beats_worst_case\": true",
            "\"label\": \"worst-case pi_n, f = 0\"",
            "\"label\": \"adaptive, f = 0\"",
            "\"label\": \"adaptive, f = 2\"",
            "\"protocol\": \"pi_n_adaptive\"",
            "\"agreement\": true, \"validity\": true",
        ] {
            assert!(bench.contains(key), "missing {key} in:\n{bench}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn as1_artifact_gates_on_async_win() {
        let dir = std::env::temp_dir().join(format!("ca-bench-as1-{}", std::process::id()));
        assert!(super::run_by_name_opts("as1", true, Some(&dir)));
        let bench = std::fs::read_to_string(dir.join("BENCH_as1.json")).unwrap();
        assert_eq!(
            bench.matches('{').count(),
            bench.matches('}').count(),
            "unbalanced braces in:\n{bench}"
        );
        for key in [
            "\"experiment\": \"as1\"",
            "\"as1_async_wins\": true",
            "\"kind\": \"async\"",
            "\"mode\": \"sync-tuned\"",
            "\"mode\": \"sync-mistuned\"",
            "\"mode\": \"async\"",
            "\"label\": \"async, event-driven\"",
            "\"delta\": null",
            "\"wasted_rounds\"",
            "\"agreement\": true, \"validity\": true",
        ] {
            assert!(bench.contains(key), "missing {key} in:\n{bench}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// P1's artifact carries the kernel grid with the blocked-vs-scalar
    /// gate. The speedup value is machine-dependent, so the test pins the
    /// structure and the differential-equality verdict (which must hold
    /// anywhere), not the flag itself.
    #[test]
    fn p1_artifact_has_kernel_grid() {
        let dir = std::env::temp_dir().join(format!("ca-bench-p1-{}", std::process::id()));
        assert!(super::run_by_name_opts("p1", true, Some(&dir)));
        let bench = std::fs::read_to_string(dir.join("BENCH_p1.json")).unwrap();
        assert_eq!(
            bench.matches('{').count(),
            bench.matches('}').count(),
            "unbalanced braces in:\n{bench}"
        );
        for key in [
            "\"experiment\": \"p1\"",
            "\"p1_blocked_beats_scalar\"",
            "\"kind\": \"kernel\"",
            "\"label\": \"n=16, l=64KiB\"",
            "\"label\": \"n=64, l=256KiB\"",
            "\"encode\"",
            "\"decode\"",
            "\"merkle\"",
            "\"blocked_mbps\"",
            "\"scalar_mbps\"",
            "\"speedup\"",
        ] {
            assert!(bench.contains(key), "missing {key} in:\n{bench}");
        }
        assert!(
            !bench.contains("\"differential_equal\": false"),
            "blocked and scalar kernels disagreed:\n{bench}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn f3_artifacts_trace_checks_clean() {
        let dir = std::env::temp_dir().join(format!("ca-bench-f3-{}", std::process::id()));
        assert!(super::run_by_name_opts("f3", true, Some(&dir)));

        let records = ca_trace::read_jsonl(&dir.join("run.jsonl")).unwrap();
        assert!(!records.is_empty());
        assert_eq!(
            ca_trace::check(&records),
            vec![],
            "fault-free trace must check clean"
        );

        let bench = std::fs::read_to_string(dir.join("BENCH_f3.json")).unwrap();
        for key in [
            "\"experiment\": \"f3\"",
            "\"claim\"",
            "\"measured\"",
            "\"ratio\"",
            "\"p99\"",
        ] {
            assert!(bench.contains(key), "missing {key}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
