//! Machine-readable run artifacts: `BENCH_<exp>.json` summaries putting
//! the paper's claimed bounds next to the measured run.
//!
//! The paper claims `BITSℓ(Π_ℕ) = O(ℓn + κ·n²·log²n)` (Cor. 2, with
//! `κ = 256` for SHA-256 accumulators) and `ROUNDSℓ = O(n log n)`. The
//! summary evaluates both reference shapes **with constant 1** — the
//! `measured/claim` ratios are therefore order-of-magnitude indicators
//! (a stable, O(1) ratio across configs is the reproduction claim), not
//! pass/fail thresholds. Everything else is measured: per-scope bit/round
//! breakdowns and log₂-bucket histogram quantiles straight from
//! [`ca_net::Metrics`].
//!
//! The JSON is hand-rolled (the workspace builds offline with no serde);
//! numbers are emitted as JSON numbers, ratios with three decimals.

use std::io;
use std::path::{Path, PathBuf};

use ca_net::Histogram;

use crate::runner::RunStats;
use crate::table::json_string;

/// Security parameter used in the claimed bound: SHA-256 digests.
pub const KAPPA: u64 = 256;

/// `⌈log₂ n⌉`, clamped to ≥ 1 so the reference shape never degenerates
/// to 0 for tiny `n`.
fn log2_ceil(n: u64) -> u64 {
    if n <= 2 {
        1
    } else {
        u64::from((n - 1).ilog2()) + 1
    }
}

/// The claimed communication shape `ℓ·n + κ·n²·⌈log₂ n⌉²`, constant 1.
#[must_use]
pub fn claim_bits(n: usize, ell: usize) -> u64 {
    let (n, ell) = (n as u64, ell as u64);
    let lg = log2_ceil(n);
    ell * n + KAPPA * n * n * lg * lg
}

/// The claimed round shape `n·⌈log₂ n⌉`, constant 1.
#[must_use]
pub fn claim_rounds(n: usize) -> u64 {
    let n = n as u64;
    n * log2_ceil(n)
}

/// One run's worth of claim-vs-measured data.
struct RunSummary {
    label: String,
    json: String,
}

/// Accumulates runs of one experiment and serializes them as
/// `BENCH_<exp>.json`.
pub struct BenchSummary {
    experiment: String,
    flags: Vec<(String, bool)>,
    runs: Vec<RunSummary>,
}

impl BenchSummary {
    /// Starts an empty summary for experiment `experiment` (e.g. `"f3"`).
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_owned(),
            flags: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Sets a top-level boolean verdict field (e.g.
    /// `"f0_beats_worst_case"`), emitted right after the claim line so
    /// gating tooling can grep for `"<name>": true`. Setting the same
    /// name again overwrites the previous value.
    pub fn set_flag(&mut self, name: &str, value: bool) {
        if let Some(f) = self.flags.iter_mut().find(|(k, _)| k == name) {
            f.1 = value;
        } else {
            self.flags.push((name.to_owned(), value));
        }
    }

    /// Appends one measured run under a human-readable `label`.
    pub fn push_run(&mut self, label: &str, stats: &RunStats) {
        let cb = claim_bits(stats.n, stats.ell);
        let cr = claim_rounds(stats.n);
        let mut json = String::new();
        json.push_str(&format!(
            "    {{\n      \"label\": {},\n      \"protocol\": {},\n      \
             \"n\": {}, \"t\": {}, \"ell\": {}, \"attack\": {},\n",
            json_string(label),
            json_string(stats.protocol),
            stats.n,
            stats.t,
            stats.ell,
            json_string(stats.attack)
        ));
        json.push_str(&format!(
            "      \"agreement\": {}, \"validity\": {},\n",
            stats.agreement, stats.validity
        ));
        json.push_str(&format!(
            "      \"claim\": {{ \"bits\": {cb}, \"rounds\": {cr}, \"kappa\": {KAPPA} }},\n"
        ));
        json.push_str(&format!(
            "      \"measured\": {{ \"honest_bits\": {}, \"honest_msgs\": {}, \
             \"rounds\": {}, \"adversary_bits\": {} }},\n",
            stats.honest_bits,
            stats.metrics.honest_msgs,
            stats.rounds,
            stats.metrics.adversary_bits
        ));
        json.push_str(&format!(
            "      \"ratio\": {{ \"bits\": {}, \"rounds\": {} }},\n",
            ratio(stats.honest_bits, cb),
            ratio(stats.rounds, cr)
        ));
        json.push_str(&format!(
            "      \"msg_bytes\": {},\n      \"round_bits\": {},\n",
            hist_json(&stats.metrics.msg_bytes),
            hist_json(&stats.metrics.round_bits)
        ));
        json.push_str("      \"scopes\": [");
        let mut first = true;
        for (path, m) in &stats.metrics.per_scope {
            json.push_str(if first { "\n" } else { ",\n" });
            first = false;
            json.push_str(&format!(
                "        {{ \"scope\": {}, \"honest_bits\": {}, \
                 \"honest_msgs\": {}, \"rounds\": {}",
                json_string(path),
                m.honest_bits,
                m.honest_msgs,
                m.rounds
            ));
            if let Some(h) = stats.metrics.scope_msg_bytes.get(path) {
                json.push_str(&format!(", \"msg_bytes\": {}", hist_json(h)));
            }
            json.push_str(" }");
        }
        json.push_str(if first {
            "]\n    }"
        } else {
            "\n      ]\n    }"
        });
        self.runs.push(RunSummary {
            label: label.to_owned(),
            json,
        });
    }

    /// Appends one service-layer load run (`kind: "throughput"`): session
    /// throughput, per-session cost, engine-round latency quantiles, and
    /// the batching profile that explains the amortization.
    pub fn push_throughput(&mut self, label: &str, attack: &str, report: &ca_engine::LoadReport) {
        let s = &report.stats;
        let decided = report.sessions_decided.max(1);
        let mut json = String::new();
        json.push_str(&format!(
            "    {{\n      \"label\": {},\n      \"kind\": \"throughput\",\n      \
             \"attack\": {},\n",
            json_string(label),
            json_string(attack)
        ));
        json.push_str(&format!(
            "      \"runs\": {}, \"sessions_submitted\": {}, \"sessions_decided\": {}, \
             \"sessions_rejected\": {},\n",
            report.runs,
            report.sessions_submitted,
            report.sessions_decided,
            report.sessions_rejected
        ));
        json.push_str(&format!(
            "      \"agreement\": {}, \"validity\": {},\n",
            report.agreement, report.validity
        ));
        json.push_str(&format!(
            "      \"sessions_per_sec\": {},\n",
            report
                .sessions_per_sec()
                .map_or_else(|| "null".to_owned(), |r| format!("{r:.1}"))
        ));
        json.push_str(&format!(
            "      \"engine_rounds\": {}, \"envelopes_sent\": {}, \"frames_sent\": {},\n",
            s.engine_rounds, s.envelopes_sent, s.frames_sent
        ));
        json.push_str(&format!(
            "      \"payload_bits\": {}, \"wire_bits\": {},\n      \
             \"payload_bits_per_session\": {}, \"wire_bits_per_session\": {},\n",
            report.payload_bits,
            s.wire_bits,
            report.payload_bits / decided,
            s.wire_bits / decided
        ));
        json.push_str(&format!(
            "      \"shed_frames\": {}, \"stray_frames\": {}, \"late_frames\": {}, \
             \"malformed_envelopes\": {},\n",
            s.shed_frames, s.stray_frames, s.late_frames, s.malformed_envelopes
        ));
        json.push_str(&format!(
            "      \"session_latency_rounds\": {},\n      \"session_rounds\": {},\n      \
             \"batch_occupancy\": {}\n    }}",
            hist_json(&s.session_latency_rounds),
            hist_json(&s.session_rounds),
            hist_json(&s.batch_occupancy)
        ));
        self.runs.push(RunSummary {
            label: label.to_owned(),
            json,
        });
    }

    /// Appends one crash-fault resilience run (`kind: "resilience"`):
    /// how many parties were crashed, how many transport rounds the
    /// survivors needed to decide, whether the decision was correct, and
    /// the aggregated [`ca_runtime::RuntimeStats`] across parties —
    /// counters sum, `peers_gone` takes the per-party peak (the number to
    /// compare against the `t < n/3` budget).
    pub fn push_resilience(
        &mut self,
        label: &str,
        crashed: usize,
        rounds_to_decide: u64,
        agreement: bool,
        validity: bool,
        party_stats: &[ca_runtime::RuntimeStats],
    ) {
        let sum =
            |f: fn(&ca_runtime::RuntimeStats) -> u64| -> u64 { party_stats.iter().map(f).sum() };
        let peers_gone = party_stats.iter().map(|s| s.peers_gone).max().unwrap_or(0);
        let mut json = String::new();
        json.push_str(&format!(
            "    {{\n      \"label\": {},\n      \"kind\": \"resilience\",\n",
            json_string(label)
        ));
        json.push_str(&format!(
            "      \"n\": {}, \"crashed_parties\": {crashed}, \
             \"rounds_to_decide\": {rounds_to_decide},\n",
            party_stats.len()
        ));
        json.push_str(&format!(
            "      \"agreement\": {agreement}, \"validity\": {validity},\n"
        ));
        json.push_str(&format!(
            "      \"frames_sent\": {}, \"wire_bytes_sent\": {},\n",
            sum(|s| s.frames_sent),
            sum(|s| s.wire_bytes_sent)
        ));
        json.push_str(&format!(
            "      \"frames_shed\": {}, \"events_shed\": {}, \
             \"overflow_disconnects\": {},\n",
            sum(|s| s.frames_shed),
            sum(|s| s.events_shed),
            sum(|s| s.overflow_disconnects)
        ));
        json.push_str(&format!(
            "      \"handshake_rejects\": {}, \"dial_retries\": {}, \
             \"peers_gone\": {peers_gone}\n    }}",
            sum(|s| s.handshake_rejects),
            sum(|s| s.dial_retries)
        ));
        self.runs.push(RunSummary {
            label: label.to_owned(),
            json,
        });
    }

    /// Appends one synchrony-model comparison run (`kind: "async"`):
    /// a sync-with-Δ or asynchronous configuration measured under one
    /// delay distribution. There is no [`ca_net::Metrics`] on the async
    /// path — the deterministic executor meters messages and payload
    /// bytes directly — so the row carries its own fields.
    pub fn push_async(&mut self, row: &AsyncRow) {
        let mut json = String::new();
        json.push_str(&format!(
            "    {{\n      \"label\": {},\n      \"kind\": \"async\",\n      \"mode\": {},\n",
            json_string(&row.label),
            json_string(&row.mode)
        ));
        json.push_str(&format!(
            "      \"delta\": {},\n",
            row.delta
                .map_or_else(|| "null".to_owned(), |d| d.to_string())
        ));
        json.push_str(&format!(
            "      \"wall\": {}, \"rounds\": {}, \"wasted_rounds\": {},\n",
            row.wall, row.rounds, row.wasted_rounds
        ));
        json.push_str(&format!(
            "      \"messages\": {}, \"payload_bytes\": {},\n",
            row.messages, row.payload_bytes
        ));
        json.push_str(&format!(
            "      \"agreement\": {}, \"validity\": {}\n    }}",
            row.agreement, row.validity
        ));
        self.runs.push(RunSummary {
            label: row.label.clone(),
            json,
        });
    }

    /// Appends one hot-path kernel measurement (`kind: "kernel"`): one
    /// (n, ℓ) grid cell of the P1 scaling sweep, blocked vs scalar
    /// throughput in MB/s on one core, plus the differential-equality
    /// verdict (blocked and scalar paths produced identical bytes).
    pub fn push_kernel(&mut self, row: &KernelRow) {
        let mut json = String::new();
        json.push_str(&format!(
            "    {{\n      \"label\": {},\n      \"kind\": \"kernel\",\n",
            json_string(&row.label)
        ));
        json.push_str(&format!(
            "      \"n\": {}, \"k\": {}, \"ell_bytes\": {},\n",
            row.n, row.k, row.ell_bytes
        ));
        json.push_str(&format!(
            "      \"encode\": {{ \"blocked_mbps\": {:.1}, \"scalar_mbps\": {:.1}, \
             \"speedup\": {:.2} }},\n",
            row.encode_blocked_mbps,
            row.encode_scalar_mbps,
            row.encode_speedup()
        ));
        json.push_str(&format!(
            "      \"decode\": {{ \"blocked_mbps\": {:.1}, \"scalar_mbps\": {:.1}, \
             \"speedup\": {:.2} }},\n",
            row.decode_blocked_mbps,
            row.decode_scalar_mbps,
            row.decode_speedup()
        ));
        json.push_str(&format!(
            "      \"merkle\": {{ \"batched_mbps\": {:.1}, \"reference_mbps\": {:.1}, \
             \"speedup\": {:.2} }},\n",
            row.merkle_batched_mbps,
            row.merkle_reference_mbps,
            row.merkle_speedup()
        ));
        json.push_str(&format!(
            "      \"differential_equal\": {}\n    }}",
            row.differential_equal
        ));
        self.runs.push(RunSummary {
            label: row.label.clone(),
            json,
        });
    }

    /// Labels of the runs recorded so far (in insertion order).
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.runs.iter().map(|r| r.label.as_str()).collect()
    }

    /// Renders the whole summary document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"experiment\": {},\n",
            json_string(&self.experiment)
        ));
        json.push_str(&format!(
            "  \"claim\": {},\n",
            json_string(
                "BITS = l*n + kappa*n^2*ceil(log2 n)^2; ROUNDS = n*ceil(log2 n); constant 1"
            )
        ));
        for (name, value) in &self.flags {
            json.push_str(&format!("  {}: {},\n", json_string(name), value));
        }
        json.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            json.push_str(if i == 0 { "\n" } else { ",\n" });
            json.push_str(&run.json);
        }
        json.push_str(if self.runs.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        json
    }

    /// Writes `dir/BENCH_<exp>.json` (uppercased experiment id), creating
    /// `dir` if needed; returns the written path.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One measured configuration of the AS1 sync-vs-async comparison, in
/// the shared abstract time units of the delay distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncRow {
    /// Human-readable row label (e.g. `"sync, tuned delta"`).
    pub label: String,
    /// `"sync-tuned"`, `"sync-mistuned"`, or `"async"`.
    pub mode: String,
    /// The Δ the sync configuration ran with; `None` on the async path
    /// (no Δ exists anywhere — that is the point).
    pub delta: Option<u64>,
    /// Wall clock to the last decision: `rounds × Δ` for sync (each
    /// barrier waits out the timeout), the executor's last decide
    /// virtual time for async.
    pub wall: u64,
    /// Barriers consumed (sync) or async protocol rounds (async).
    pub rounds: u64,
    /// Rounds beyond the minimum the iteration count needs — barriers
    /// spent waiting on quorums that a correctly tuned Δ delivers in one.
    pub wasted_rounds: u64,
    /// Point-to-point protocol messages shipped by honest parties.
    pub messages: u64,
    /// Payload bytes across those messages.
    pub payload_bytes: u64,
    /// ε-agreement (ε = 1) held across decided parties.
    pub agreement: bool,
    /// Decisions stayed inside the input hull.
    pub validity: bool,
}

/// One (n, ℓ) cell of the P1 kernel grid: single-core throughput of the
/// blocked RS + batched-Merkle hot path against the scalar reference
/// implementations (compiled in via the crates' `scalar-oracle` features).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Human-readable cell label (e.g. `"n=256, l=1MiB"`).
    pub label: String,
    /// Codeword count.
    pub n: usize,
    /// Data shard count (`n − t`).
    pub k: usize,
    /// Input payload size in bytes.
    pub ell_bytes: usize,
    /// Blocked split-table encode throughput, MB of payload per second.
    pub encode_blocked_mbps: f64,
    /// Scalar log/antilog encode throughput.
    pub encode_scalar_mbps: f64,
    /// Blocked decode throughput (parity-heavy share subset — the worst
    /// case, every output needs the full coefficient row).
    pub decode_blocked_mbps: f64,
    /// Scalar decode throughput on the same subset.
    pub decode_scalar_mbps: f64,
    /// Batched arena Merkle build throughput over the cell's leaves.
    pub merkle_batched_mbps: f64,
    /// Fresh-hasher level-by-level reference build throughput.
    pub merkle_reference_mbps: f64,
    /// Blocked and scalar paths produced byte-identical outputs, and the
    /// batched and reference Merkle builds the same root.
    pub differential_equal: bool,
}

impl KernelRow {
    /// Blocked-over-scalar encode speedup.
    #[must_use]
    pub fn encode_speedup(&self) -> f64 {
        self.encode_blocked_mbps / self.encode_scalar_mbps.max(f64::MIN_POSITIVE)
    }

    /// Blocked-over-scalar decode speedup.
    #[must_use]
    pub fn decode_speedup(&self) -> f64 {
        self.decode_blocked_mbps / self.decode_scalar_mbps.max(f64::MIN_POSITIVE)
    }

    /// Batched-over-reference Merkle speedup.
    #[must_use]
    pub fn merkle_speedup(&self) -> f64 {
        self.merkle_batched_mbps / self.merkle_reference_mbps.max(f64::MIN_POSITIVE)
    }
}

/// `measured / claim` with three decimals, `"null"` when the claim is 0.
fn ratio(measured: u64, claim: u64) -> String {
    if claim == 0 {
        "null".to_owned()
    } else {
        format!("{:.3}", measured as f64 / claim as f64)
    }
}

/// One histogram as a JSON object with count/min/mean/max and the
/// conservative log₂-bucket quantiles p50/p90/p99.
fn hist_json(h: &Histogram) -> String {
    format!(
        "{{ \"count\": {}, \"min\": {}, \"mean\": {}, \"max\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
        h.count(),
        h.min(),
        h.mean(),
        h.max(),
        h.quantile_permille(500),
        h.quantile_permille(900),
        h.quantile_permille(990)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_nat_protocol, Protocol};
    use crate::workload::clustered_nats;
    use ca_adversary::Attack;
    use ca_ba::BaKind;

    #[test]
    fn claim_shapes_are_monotone() {
        assert!(claim_bits(7, 1 << 14) > claim_bits(7, 1 << 10));
        assert!(claim_bits(10, 256) > claim_bits(4, 256));
        assert_eq!(claim_rounds(2), 2);
        assert!(claim_rounds(8) == 24 && claim_rounds(9) == 36);
    }

    #[test]
    fn summary_json_is_well_formed_and_complete() {
        let inputs = clustered_nats(9, 4, 64, 8);
        let stats = run_nat_protocol(Protocol::PiN(BaKind::TurpinCoan), &inputs, Attack::none());
        let mut s = BenchSummary::new("demo");
        s.push_run("short", &stats);
        assert_eq!(s.labels(), vec!["short"]);
        let json = s.to_json();
        // Structural sanity without a JSON parser: balanced braces/brackets
        // and the fields downstream tooling keys on.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"experiment\": \"demo\"",
            "\"claim\"",
            "\"measured\"",
            "\"ratio\"",
            "\"p50\"",
            "\"p99\"",
            "\"scopes\"",
            // Sends are attributed to the innermost scope, so the regime
            // BA surfaces as a descendant of pi_n/path_ba.
            "\"scope\": \"pi_n/path_ba",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.contains(&format!("\"honest_bits\": {}", stats.honest_bits)));
    }

    #[test]
    fn write_creates_bench_file() {
        let dir = std::env::temp_dir().join(format!("ca-bench-sum-{}", std::process::id()));
        let inputs = clustered_nats(3, 4, 32, 4);
        let stats = run_nat_protocol(Protocol::PiN(BaKind::TurpinCoan), &inputs, Attack::none());
        let mut s = BenchSummary::new("f3");
        s.push_run("x", &stats);
        let path = s.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_f3.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"f3\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resilience_run_aggregates_stats() {
        let a = ca_runtime::RuntimeStats {
            frames_sent: 10,
            wire_bytes_sent: 100,
            peers_gone: 1,
            ..Default::default()
        };
        let b = ca_runtime::RuntimeStats {
            frames_sent: 5,
            dial_retries: 3,
            peers_gone: 1,
            ..Default::default()
        };
        let mut s = BenchSummary::new("r1");
        s.push_resilience("t crashed", 1, 6, true, true, &[a, b]);
        let json = s.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"kind\": \"resilience\"",
            "\"n\": 2",
            "\"crashed_parties\": 1",
            "\"rounds_to_decide\": 6",
            "\"frames_sent\": 15",
            "\"wire_bytes_sent\": 100",
            "\"dial_retries\": 3",
            "\"peers_gone\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn empty_summary_renders() {
        let json = BenchSummary::new("void").to_json();
        assert!(json.contains("\"runs\": []"));
    }

    #[test]
    fn flags_render_at_top_level_and_overwrite() {
        let mut s = BenchSummary::new("a1");
        s.set_flag("f0_beats_worst_case", false);
        s.set_flag("f0_beats_worst_case", true);
        let json = s.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"f0_beats_worst_case\": true"));
        assert!(!json.contains("\"f0_beats_worst_case\": false"));
    }
}
