//! Workload generators: seeded, deterministic input distributions.

use ca_adversary::{Attack, LieKind};
use ca_bits::{BitString, Nat};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random bitstring of exactly `len` bits.
pub fn random_bits(rng: &mut SmallRng, len: usize) -> BitString {
    BitString::from_bits((0..len).map(|_| rng.gen::<bool>()))
}

/// A random `ell`-bit natural (top bit set, so `bit_len() == ell`).
pub fn random_nat(rng: &mut SmallRng, ell: usize) -> Nat {
    if ell == 0 {
        return Nat::zero();
    }
    let mut bits = random_bits(rng, ell);
    bits.set(0, true);
    bits.val()
}

/// Clustered honest inputs: a shared random `ell`-bit base whose lowest
/// `spread_bits` bits are re-randomized per party — the "sensor jitter"
/// regime the paper motivates (honest values agree on a long prefix).
pub fn clustered_nats(seed: u64, n: usize, ell: usize, spread_bits: usize) -> Vec<Nat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = random_bits(&mut rng, ell);
    (0..n)
        .map(|_| {
            let mut v = base.clone();
            if ell > 0 {
                v.set(0, true);
            }
            let spread = spread_bits.min(ell.saturating_sub(1));
            for i in ell - spread..ell {
                let b = rng.gen::<bool>();
                v.set(i, b);
            }
            v.val()
        })
        .collect()
}

/// Applies an attack's input lies: corrupted parties (per
/// [`Attack::corrupted_parties`]) get extreme `ell`-bit values.
pub fn apply_lies(inputs: &mut [Nat], attack: &Attack, n: usize, t: usize, ell: usize) {
    if !attack.is_lying() {
        return;
    }
    for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
        inputs[p.index()] = match attack.lie_for(idx).expect("lying attack") {
            LieKind::ExtremeHigh => Nat::all_ones(ell),
            LieKind::ExtremeLow => Nat::zero(),
            LieKind::Split => unreachable!("lie_for resolves Split"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_nat_has_exact_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        for ell in [1usize, 5, 64, 300] {
            assert_eq!(random_nat(&mut rng, ell).bit_len(), ell);
        }
        assert!(random_nat(&mut rng, 0).is_zero());
    }

    #[test]
    fn clustered_inputs_share_prefix() {
        let vals = clustered_nats(7, 5, 128, 16);
        assert_eq!(vals.len(), 5);
        let bits: Vec<BitString> = vals.iter().map(|v| v.to_bits_len(128).unwrap()).collect();
        for w in bits.windows(2) {
            assert!(w[0].common_prefix_len(&w[1]) >= 128 - 16);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(clustered_nats(9, 4, 64, 8), clustered_nats(9, 4, 64, 8));
        assert_ne!(clustered_nats(9, 4, 64, 8), clustered_nats(10, 4, 64, 8));
    }
}
