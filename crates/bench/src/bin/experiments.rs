//! Experiment driver: `cargo run -p ca-bench --release --bin experiments --
//! [t1|f1|f2|t2|f3|t3|t4|f4|f5|e1|s1|r1|a1|as1|p1|all] [--quick]
//! [--artifacts <dir>]`
//!
//! `--artifacts <dir>` makes artifact-aware experiments (currently F3, S1,
//! R1, A1, AS1, and P1) write machine-readable outputs into `<dir>`: a
//! `run.jsonl` event timeline (inspect with `ca-trace report/check/diff`)
//! and a `BENCH_<exp>.json` claim-vs-measured summary.

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut artifacts: Option<PathBuf> = None;
    let mut ids: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {}
            "--artifacts" => match it.next() {
                Some(dir) => artifacts = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--artifacts requires a directory argument");
                    std::process::exit(2);
                }
            },
            a if a.starts_with("--") => {
                eprintln!("unknown flag: {a}");
                eprintln!("usage: experiments [ids…] [--quick] [--artifacts <dir>]");
                std::process::exit(2);
            }
            a => ids.push(a),
        }
    }
    let ids = if ids.is_empty() { vec!["all"] } else { ids };
    for id in ids {
        if !ca_bench::experiments::run_by_name_opts(id, quick, artifacts.as_deref()) {
            eprintln!("unknown experiment id: {id}");
            eprintln!("known: t1 f1 f2 t2 f3 t3 t4 f4 f5 e1 s1 r1 a1 as1 p1 all");
            std::process::exit(2);
        }
    }
}
