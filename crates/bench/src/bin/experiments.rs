//! Experiment driver: `cargo run -p ca-bench --release --bin experiments --
//! [t1|f1|f2|t2|f3|t3|t4|f4|f5|all] [--quick]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids = if ids.is_empty() { vec!["all"] } else { ids };
    for id in ids {
        if !ca_bench::experiments::run_by_name(id, quick) {
            eprintln!("unknown experiment id: {id}");
            eprintln!("known: t1 f1 f2 t2 f3 t3 t4 f4 f5 all");
            std::process::exit(2);
        }
    }
}
