//! Minimal aligned-column table printing for experiment output.

use std::fmt::Display;

/// A column-aligned text table with a title, rendered to stdout by
/// [`Table::print`].
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn row<D: Display>(&mut self, cells: &[D]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Appends one pre-stringified row.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout; additionally, when the environment
    /// variable `CA_BENCH_JSON_DIR` names a directory, writes the table as
    /// machine-readable JSON (`{title, header, rows}`) into it.
    pub fn print(&self) {
        print!("{}", self.render());
        if let Ok(dir) = std::env::var("CA_BENCH_JSON_DIR") {
            if let Err(e) = self.write_json(std::path::Path::new(&dir)) {
                eprintln!("warning: could not write JSON table: {e}");
            }
        }
    }

    /// Serializes the table as JSON into `dir/<slug-of-title>.json`.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .take_while(|c| *c != ':')
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{slug}.json"));
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        json.push_str("  \"header\": ");
        json.push_str(&json_string_array(&self.header));
        json.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            json.push_str(if i == 0 { "\n" } else { ",\n" });
            json.push_str("    ");
            json.push_str(&json_string_array(row));
        }
        json.push_str(if self.rows.is_empty() {
            "]\n}"
        } else {
            "\n  ]\n}"
        });
        json.push('\n');
        std::fs::write(path, json)
    }
}

/// Escapes `s` as a JSON string literal (RFC 8259 §7).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a flat JSON array of strings (single line).
pub(crate) fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// Formats a bit count with a thousands separator for readability.
pub fn fmt_bits(bits: u64) -> String {
    let s = bits.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(&[1, 2]).row(&[333, 4]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("333"));
    }

    #[test]
    fn bits_formatting() {
        assert_eq!(fmt_bits(1), "1");
        assert_eq!(fmt_bits(1234), "1_234");
        assert_eq!(fmt_bits(1234567), "1_234_567");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("x", &["a"]).row(&[1, 2]);
    }

    #[test]
    fn json_export() {
        let dir = std::env::temp_dir().join(format!("ca-bench-json-{}", std::process::id()));
        let mut t = Table::new("T9: json demo", &["k", "v"]);
        t.row(&[1, 2]);
        t.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("t9.json")).unwrap();
        assert!(text.contains("\"title\""));
        assert!(text.contains("json demo"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
