//! Protocol runners: execute one configured run and collect the
//! quantities the paper bounds, plus property verdicts.

use std::sync::Arc;

use ca_adversary::Attack;
use ca_ba::BaKind;
use ca_bits::Nat;
use ca_core::{
    broadcast_ca, broadcast_ca_parallel, check_agreement, check_convex_validity, high_cost_ca,
    pi_n, pi_n_adaptive, FastPathConfig,
};
use ca_net::{Metrics, Sim, TraceSink};

/// Which CA protocol a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's `Π_ℕ`/`Π_ℤ` stack (`O(ℓn + κn²log²n)`).
    PiN(BaKind),
    /// `Π_ℕ` behind the fault-adaptive fast path (default
    /// [`FastPathConfig`]): constant rounds at `f = 0`, certified
    /// fallback to the full stack otherwise.
    PiNAdaptive(BaKind),
    /// Classical broadcast-based CA (`O(ℓn²)` baseline), instances run
    /// sequentially.
    BroadcastCa,
    /// Same baseline with all `n` broadcast instances composed in parallel
    /// (identical bits up to tags; `O(max)` rounds).
    BroadcastCaParallel,
    /// Stolz–Wattenhofer-style king CA (`O(ℓn³)` baseline).
    HighCostCa,
}

impl Protocol {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::PiN(BaKind::TurpinCoan) => "pi_n",
            Protocol::PiN(BaKind::PhaseKing) => "pi_n[pk]",
            Protocol::PiNAdaptive(BaKind::TurpinCoan) => "pi_n_adaptive",
            Protocol::PiNAdaptive(BaKind::PhaseKing) => "pi_n_adaptive[pk]",
            Protocol::BroadcastCa => "broadcast_ca",
            Protocol::BroadcastCaParallel => "broadcast_ca_par",
            Protocol::HighCostCa => "high_cost_ca",
        }
    }

    /// The default experiment line-up: ours + both baselines.
    pub fn lineup() -> [Protocol; 3] {
        [
            Protocol::PiN(BaKind::TurpinCoan),
            Protocol::BroadcastCa,
            Protocol::HighCostCa,
        ]
    }
}

/// Everything measured about one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Protocol name.
    pub protocol: &'static str,
    /// Parties.
    pub n: usize,
    /// Corruption budget.
    pub t: usize,
    /// Input length in bits.
    pub ell: usize,
    /// Attack name.
    pub attack: &'static str,
    /// `BITSℓ`: bits sent by honest parties.
    pub honest_bits: u64,
    /// `ROUNDSℓ`.
    pub rounds: u64,
    /// Did all honest outputs agree?
    pub agreement: bool,
    /// Were all honest outputs inside the honest inputs' hull?
    pub validity: bool,
    /// Full metrics (per-scope breakdowns).
    pub metrics: Metrics,
}

/// Runs `protocol` on `inputs` (`inputs[i]` = party `i`'s value) under
/// `attack`, with `t = ⌊(n−1)/3⌋`, and checks Definition 1's properties.
pub fn run_nat_protocol(protocol: Protocol, inputs: &[Nat], attack: Attack) -> RunStats {
    run_nat_protocol_inner(protocol, inputs, attack, None)
}

/// [`run_nat_protocol`] with every trace event mirrored into `sink`
/// (e.g. a [`ca_trace::JsonlSink`] producing a `run.jsonl` timeline).
///
/// The measured [`Metrics`] are identical to the untraced run's: tracing
/// observes sends/rounds, it never adds any.
pub fn run_nat_protocol_traced(
    protocol: Protocol,
    inputs: &[Nat],
    attack: Attack,
    sink: Arc<dyn TraceSink>,
) -> RunStats {
    run_nat_protocol_inner(protocol, inputs, attack, Some(sink))
}

fn run_nat_protocol_inner(
    protocol: Protocol,
    inputs: &[Nat],
    attack: Attack,
    sink: Option<Arc<dyn TraceSink>>,
) -> RunStats {
    let n = inputs.len();
    let t = ca_net::max_faults(n);
    let ell = inputs.iter().map(Nat::bit_len).max().unwrap_or(0);
    let mut sim = attack.install(Sim::new(n), n, t);
    if let Some(sink) = sink {
        sim = sim.with_trace(sink);
    }
    let inputs_owned = inputs.to_vec();

    let report = sim.run(move |ctx, id| {
        let input = inputs_owned[id.index()].clone();
        match protocol {
            Protocol::PiN(ba) => pi_n(ctx, &input, ba),
            Protocol::PiNAdaptive(ba) => pi_n_adaptive(ctx, &input, ba, FastPathConfig::default()),
            Protocol::BroadcastCa => broadcast_ca(ctx, input, BaKind::TurpinCoan),
            Protocol::BroadcastCaParallel => broadcast_ca_parallel(ctx, input, BaKind::TurpinCoan),
            Protocol::HighCostCa => high_cost_ca(ctx, input, |_| true),
        }
    });

    let honest_parties = report.honest_parties();
    let honest_inputs: Vec<Nat> = honest_parties
        .iter()
        .map(|p| inputs[p.index()].clone())
        .collect();
    let honest_outputs: Vec<Nat> = report.honest_outputs().into_iter().cloned().collect();

    RunStats {
        protocol: protocol.name(),
        n,
        t,
        ell,
        attack: attack.name(),
        honest_bits: report.metrics.honest_bits,
        rounds: report.metrics.rounds,
        agreement: check_agreement(&honest_outputs),
        validity: check_convex_validity(&honest_outputs, &honest_inputs),
        metrics: report.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::clustered_nats;

    #[test]
    fn tracing_does_not_perturb_metrics() {
        let inputs = clustered_nats(5, 4, 64, 8);
        let proto = Protocol::PiN(BaKind::TurpinCoan);
        let base = run_nat_protocol(proto, &inputs, Attack::none());
        let sink = Arc::new(ca_trace::RingBufferSink::new(1 << 20));
        let traced = run_nat_protocol_traced(
            proto,
            &inputs,
            Attack::none(),
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        assert_eq!(
            base.metrics, traced.metrics,
            "tracing must be observation-only"
        );
        assert!(
            sink.total_seen() > 0,
            "the traced run must actually emit events"
        );
    }

    #[test]
    fn all_protocols_pass_basic_run() {
        let inputs = clustered_nats(3, 4, 64, 8);
        for proto in Protocol::lineup() {
            let stats = run_nat_protocol(proto, &inputs, Attack::none());
            assert!(stats.agreement, "{}", stats.protocol);
            assert!(stats.validity, "{}", stats.protocol);
            assert!(stats.honest_bits > 0);
        }
    }
}
