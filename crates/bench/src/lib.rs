//! Experiment harness for the convex-agreement reproduction.
//!
//! The paper is a theory paper with no measured evaluation; every theorem
//! is reproduced here as a measured experiment (see `DESIGN.md` §3 for the
//! index and `EXPERIMENTS.md` for recorded results):
//!
//! | id | claim | target |
//! |----|-------|--------|
//! | T1 | Cor. 2 communication vs `O(ℓn²)`/`O(ℓn³)` baselines | `benches/t1_protocol_comparison.rs` |
//! | F1 | optimality threshold `ℓ = Ω(κ·n·log²n)`, crossover | `benches/f1_scaling_ell.rs` |
//! | F2 | slope in `n` | `benches/f2_scaling_n.rs` |
//! | T2 | round complexity `O(n log n)` | `benches/t2_rounds.rs` |
//! | F3 | per-subprotocol cost decomposition | `benches/f3_breakdown.rs` |
//! | T3 | Thm 1 extension-protocol savings | `benches/t3_extension.rs` |
//! | T4 | Def. 1 properties under the adversary matrix | `benches/t4_adversarial.rs` |
//! | F4 | `Π_BA` instantiation ablation | `benches/f4_ba_ablation.rs` |
//! | F5 | `FindPrefix` iteration/prefix behaviour | `benches/f5_findprefix.rs` |
//! | T5 | substrate micro-benchmarks (criterion) | `benches/t5_micro.rs` |
//!
//! Each experiment is a library function so it can be driven both by
//! `cargo bench` (the `harness = false` bench targets) and by the
//! `experiments` binary (`cargo run -p ca-bench --release --bin
//! experiments -- <id>|all [--quick]`).

pub mod experiments;
pub mod runner;
pub mod summary;
pub mod table;
pub mod workload;

pub use runner::{run_nat_protocol, run_nat_protocol_traced, Protocol, RunStats};
pub use summary::{AsyncRow, BenchSummary};
pub use table::Table;
