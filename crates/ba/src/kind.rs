//! Selecting the `Π_BA` instantiation.

use ca_net::Comm;

use crate::{phase_king, turpin_coan, Value};

/// Which concrete byzantine-agreement protocol instantiates the paper's
/// assumed `Π_BA`.
///
/// The choice is an experiment knob (ablation F4): both satisfy the BA
/// interface the paper assumes; they differ in the constant/`poly(n)`
/// factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BaKind {
    /// Turpin–Coan-style reduction to binary phase-king:
    /// `BITSκ = O(κn² + n³)`, `ROUNDS = O(n)`. The default, matching the
    /// cost profile the paper assumes for `Π_BA`.
    #[default]
    TurpinCoan,
    /// Direct multi-valued phase-king: `BITSκ = O(κn³)`, `ROUNDS = O(n)`.
    PhaseKing,
}

impl BaKind {
    /// Runs one BA instance on `input` under this instantiation.
    pub fn run<V: Value>(self, ctx: &mut dyn Comm, input: V) -> V {
        match self {
            BaKind::TurpinCoan => turpin_coan(ctx, input),
            BaKind::PhaseKing => phase_king(ctx, input),
        }
    }

    /// Runs *binary* BA (both instantiations reduce to phase-king on bits;
    /// going through Turpin–Coan for one bit would just add rounds).
    pub fn run_bit(self, ctx: &mut dyn Comm, input: bool) -> bool {
        phase_king(ctx, input)
    }

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            BaKind::TurpinCoan => "tc",
            BaKind::PhaseKing => "pk",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_net::Sim;

    #[test]
    fn both_kinds_agree_and_validate() {
        for kind in [BaKind::TurpinCoan, BaKind::PhaseKing] {
            let report = Sim::new(4).run(|ctx, _| kind.run(ctx, 12345u64));
            for out in report.honest_outputs() {
                assert_eq!(*out, 12345, "{}", kind.name());
            }
            let report = Sim::new(4).run(|ctx, _| kind.run_bit(ctx, true));
            for out in report.honest_outputs() {
                assert!(*out, "{}", kind.name());
            }
        }
    }
}
