//! Multi-valued BA via reduction to binary BA (Turpin–Coan style [49]).
//!
//! The classic observation of Turpin and Coan: multi-valued agreement only
//! needs a constant number of all-to-all value exchanges plus one *binary*
//! agreement. This implementation restructures the original slightly for a
//! self-contained proof at `t < n/3`; the costs are the classic ones:
//!
//! `BITS_ℓ = O(ℓ·n²) + BITS₁(Π_BA)` and `ROUNDS = 3 + ROUNDS₁(Π_BA)`.
//!
//! With the binary phase-king BA underneath, κ-bit agreement costs
//! `O(κn² + n³)` bits — the `Π_BA` cost profile the paper assumes (§1, §7).
//!
//! # Protocol
//!
//! 1. **Candidate round** — everyone sends its value; `cand` := the value
//!    received from `≥ n−t` parties (at most one can exist, and if two
//!    honest parties hold non-`⊥` candidates they are equal: two `n−t`
//!    quorums intersect in `≥ n−2t > t` parties, i.e. in an honest party).
//! 2. **Confirmation round** — everyone sends `cand`; `confirmed` := 1 iff
//!    some value `w` occurs `≥ n−t` times among the candidates.
//! 3. **Binary BA** on `confirmed`.
//! 4. If the bit is 1: whoever holds a non-`⊥` candidate resends it; every
//!    party outputs the unique value received `≥ t+1` times. (If the bit
//!    is 1, some honest party was confirmed, so `≥ n−2t ≥ t+1` honest
//!    parties hold candidate `w` — everyone hears `w` at least `t+1` times,
//!    and no other value can reach `t+1`.) If the bit is 0: output the
//!    domain default (honest inputs were mixed, so Validity is vacuous).
//!
//! # Extra property
//!
//! Like the paper's `Π_BA+`, this BA is *intrusion-tolerant modulo the
//! default*: the output is an honest party's input or `V::default()`. (A
//! candidate needs an `n−t` quorum in round 1, which contains an honest
//! sender of that exact value.)

use std::collections::BTreeMap;

use ca_net::{Comm, CommExt};

use crate::{phase_king, Value};

/// Runs multi-valued BA on `input` via the binary-BA reduction.
///
/// Guarantees (for `t < n/3`): Termination, Agreement, Validity; output is
/// an honest input or `V::default()`.
///
/// # Examples
///
/// ```
/// use ca_ba::turpin_coan;
/// use ca_net::Sim;
///
/// // Mixed inputs: everyone still agrees, on an honest input or default.
/// let report = Sim::new(4).run(|ctx, id| turpin_coan(ctx, id.index() as u64));
/// let outs = report.honest_outputs();
/// assert!(outs.windows(2).all(|w| w[0] == w[1]));
/// ```
pub fn turpin_coan<V: Value>(ctx: &mut dyn Comm, input: V) -> V {
    ctx.scoped("tc", |ctx| {
        let quorum = ctx.quorum();
        let t = ctx.t();

        // Round 1: candidates.
        let values = ctx.exchange(&input);
        let mut counts: BTreeMap<V, usize> = BTreeMap::new();
        for (_, v) in values.decode_each::<V>() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let cand: Option<V> = counts
            .iter()
            .find(|(_, c)| **c >= quorum)
            .map(|(v, _)| v.clone());

        // Round 2: confirmation.
        let cands = ctx.exchange(&cand);
        let mut cand_counts: BTreeMap<V, usize> = BTreeMap::new();
        for (_, c) in cands.decode_each::<Option<V>>() {
            if let Some(v) = c {
                *cand_counts.entry(v).or_insert(0) += 1;
            }
        }
        let confirmed = cand_counts.values().any(|c| *c >= quorum);

        // Binary agreement on whether a confirmed candidate exists.
        let bit = phase_king(ctx, confirmed);
        let out = if !bit {
            V::default()
        } else {
            // Round 3: redistribute the (unique) candidate.
            if let Some(v) = &cand {
                ctx.send_all(v);
            }
            let finals = ctx.next_round();
            let mut final_counts: BTreeMap<V, usize> = BTreeMap::new();
            for (_, v) in finals.decode_each::<V>() {
                *final_counts.entry(v).or_insert(0) += 1;
            }
            final_counts
                .into_iter()
                .find(|(_, c)| *c > t)
                .map(|(v, _)| v)
                // Unreachable when t < n/3 (see module docs); a deterministic
                // fallback keeps even an impossible state agreed-upon.
                .unwrap_or_default()
        };
        ctx.trace_decide(|| ca_net::compact_debug(&out));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Equivocate, Garbage, Replay};
    use ca_bits::BitString;
    use ca_net::{Corruption, PartyId, Sim};

    #[test]
    fn validity_all_same() {
        for n in [1, 4, 7, 13] {
            let report = Sim::new(n).run(|ctx, _| turpin_coan(ctx, 777u64));
            for out in report.honest_outputs() {
                assert_eq!(*out, 777, "n = {n}");
            }
        }
    }

    #[test]
    fn agreement_on_mixed_inputs_yields_default_or_honest_input() {
        let inputs = [1u64, 2, 3, 4, 5, 6, 7];
        let report = Sim::new(7).run(|ctx, id| turpin_coan(ctx, inputs[id.index()]));
        let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        let v = outs[0];
        assert!(
            v == 0 || inputs.contains(&v),
            "output {v} is neither default nor honest"
        );
    }

    #[test]
    fn validity_under_each_message_attack() {
        let n = 7;
        for adv in 0..4 {
            let report = {
                let s = Sim::new(n)
                    .corrupt(PartyId(5), Corruption::Scripted)
                    .corrupt(PartyId(6), Corruption::Scripted);
                let s = match adv {
                    0 => s,
                    1 => s.with_adversary(Garbage::new(5)),
                    2 => s.with_adversary(Replay::new(6)),
                    _ => s.with_adversary(Equivocate::new(7)),
                };
                s.run(|ctx, _| turpin_coan(ctx, 31337u64))
            };
            for out in report.honest_outputs() {
                assert_eq!(*out, 31337, "adversary {adv}");
            }
        }
    }

    #[test]
    fn intrusion_tolerance_with_lying_minority() {
        // n−t honest parties agree; t liars push another value: the liars'
        // value must not win.
        let n = 10;
        let report = Sim::new(n)
            .corrupt(PartyId(7), Corruption::LyingHonest)
            .corrupt(PartyId(8), Corruption::LyingHonest)
            .corrupt(PartyId(9), Corruption::LyingHonest)
            .run(|ctx, id| {
                let input = if id.index() >= 7 { 666u64 } else { 5 };
                turpin_coan(ctx, input)
            });
        for out in report.honest_outputs() {
            assert_eq!(*out, 5);
        }
    }

    #[test]
    fn long_values_work() {
        let long = BitString::repeat(true, 5000);
        let report = Sim::new(4).run(|ctx, _| turpin_coan(ctx, long.clone()));
        for out in report.honest_outputs() {
            assert_eq!(out, &long);
        }
    }

    #[test]
    fn cheaper_than_phase_king_on_long_values() {
        // The whole point of the reduction: value-sized traffic is O(ℓn²)
        // instead of O(ℓn³).
        let long = BitString::repeat(true, 4000);
        let n = 7;
        let tc = Sim::new(n).run(|ctx, _| turpin_coan(ctx, long.clone()));
        let pk = Sim::new(n).run(|ctx, _| phase_king(ctx, long.clone()));
        assert!(
            tc.metrics.honest_bits < pk.metrics.honest_bits / 2,
            "tc = {}, pk = {}",
            tc.metrics.honest_bits,
            pk.metrics.honest_bits
        );
    }
}
