//! Byzantine Agreement substrate (paper §7 and its assumed primitives).
//!
//! The convex-agreement protocols assume "a BA protocol `Π_BA` resilient
//! against `t < n/3` corruptions" and construct on top of it a BA for long
//! messages with two extra properties. This crate provides the whole stack:
//!
//! | paper | here |
//! |---|---|
//! | assumed `Π_BA` (e.g. [12]) | [`BaKind::TurpinCoan`]: a Turpin–Coan-style reduction to binary phase-king BA, `BITSκ = O(κn² + n³)` |
//! | (ablation) | [`BaKind::PhaseKing`]: direct multi-valued phase-king [7], `BITSκ = O(κn³)` |
//! | `Π_BA+` (§7, Theorem 6) | [`ba_plus`]: κ-bit BA with *Intrusion Tolerance* and *Bounded Pre-Agreement* |
//! | `Π_ℓBA+` (§7, Theorem 1) | [`lba_plus`]: the extension protocol — Reed–Solomon dispersal + Merkle accumulators, `O(ℓn + κn²·log n) + BITSκ(Π_BA)` |
//!
//! The two extra properties (paper Definitions 3 and 4):
//!
//! * **Intrusion Tolerance** — honest parties output an honest party's input
//!   or `⊥` (here: `None`).
//! * **Bounded Pre-Agreement** — if the output is `⊥`, fewer than `n − 2t`
//!   honest parties shared an input value.
//!
//! # Examples
//!
//! ```
//! use ca_ba::{lba_plus, BaKind};
//! use ca_net::Sim;
//!
//! // All honest parties hold the same long input → they agree on it.
//! let input: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
//! let report = Sim::new(4).run(|ctx, _id| lba_plus(ctx, &input, BaKind::TurpinCoan));
//! for out in report.honest_outputs() {
//!     assert_eq!(out.as_ref(), Some(&input));
//! }
//! ```

mod ba_plus;
mod ext;
mod kind;
mod phase_king;
mod turpin_coan;
mod value;

pub use ba_plus::{ba_plus, ba_plus_adaptive};
pub use ext::lba_plus;
pub use kind::BaKind;
pub use phase_king::phase_king;
pub use turpin_coan::turpin_coan;
pub use value::Value;
