//! The value domain of byzantine agreement.

use std::fmt::Debug;

use ca_codec::{Decode, Encode};

/// Values byzantine agreement can be run on.
///
/// * `Encode + Decode` — values travel on the wire (robust against
///   byzantine bytes).
/// * `Ord` — deterministic tie-breaking (e.g. `Π_BA+` orders its two
///   candidates `a ≤ b`).
/// * `Default` — the fallback output when honest inputs disagree and no
///   candidate emerges (BA Validity places no constraint there).
///
/// Implemented automatically for every type with the listed bounds:
/// `bool`, `u64`, `Hash256`, `Option<V>`, `BitString`, …
pub trait Value:
    Encode + Decode + Clone + Eq + Ord + Default + Debug + Send + Sync + 'static
{
}

impl<T> Value for T where
    T: Encode + Decode + Clone + Eq + Ord + Default + Debug + Send + Sync + 'static
{
}
