//! `Π_ℓBA+` (paper §7, Theorem 1): the extension protocol — BA for long
//! messages with Intrusion Tolerance and Bounded Pre-Agreement at
//! `O(ℓn + κ·n²·log n) + BITSκ(Π_BA)` bits.
//!
//! Construction (following the outline of [8, 41]):
//!
//! 1. `RS.ENCODE` the input into `n` codewords (`(n, n−t)` Reed–Solomon)
//!    and accumulate them in a Merkle tree: `z` := root.
//! 2. Run [`ba_plus`] on the κ-bit `z`. If it returns `⊥`, output `⊥`.
//! 3. **Distributing step** (two rounds): every party whose own `z` equals
//!    the agreed `z*` sends each party `Pⱼ` its codeword and witness
//!    `(j, sⱼ, wⱼ)`; each party then echoes its (Merkle-verified) codeword
//!    to everyone; everyone erasure-decodes the `≥ n−t` verified codewords.
//!
//! Merkle verification makes corrupted codewords indistinguishable from
//! silence, and RS determinism makes every verified codeword for an index
//! identical — so all honest parties reconstruct the same value, which is
//! the input of an honest party (Lemma 6).
//!
//! ## Adaptive corner (documented deviation)
//!
//! Like the protocols of [41] this distribution step assumes the holder of
//! the pre-agreed value that survives to the distributing step is honest
//! *when it distributes*. An adversary that corrupts the **unique** holder
//! in the gap between agreement on `z*` and distribution can starve
//! reconstruction; we then output `⊥` deterministically. Within the
//! simulator's round-granular corruption this yields a uniform `⊥` for all
//! honest parties, preserving Agreement.

use ca_crypto::{Hash256, MerkleTree, Witness};
use ca_erasure::{ReedSolomon, Share, ShareRef};
use ca_net::{Comm, CommExt, Inbox, PartyId};

use ca_codec::{CodecError, Decode, Encode, Reader};

use crate::{ba_plus, BaKind, Value};

/// A distributed codeword: `(index, share, witness)` — the paper's
/// `(j, sⱼ, wⱼ)` tuples.
type ShareMsg = (u32, Share, Witness);

/// Borrowed view of a [`ShareMsg`]: the share borrows its exact encoded
/// span from the receive buffer, so Merkle verification hashes the wire
/// bytes directly instead of re-encoding the share.
struct ShareMsgRef<'a> {
    idx: u32,
    share: ShareRef<'a>,
    witness: Witness,
}

impl<'a> ShareMsgRef<'a> {
    /// Bounds-checked decode of one complete message; trailing bytes are
    /// malformed (a byzantine sender must not smuggle extra data past the
    /// share-span capture).
    fn decode_from_slice(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let idx = u32::decode(&mut r)?;
        let share = ShareRef::decode(&mut r)?;
        let witness = Witness::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(ShareMsgRef {
            idx,
            share,
            witness,
        })
    }
}

/// Decodes every `(idx, share, witness)` message in `inbox` through the
/// borrowed [`ShareRef`] view and Merkle-verifies each against the *exact
/// received encoding* of the share — the leaf preimage is the borrowed
/// span itself, so verification re-encodes nothing. Malformed messages are
/// silence; `keep` pre-filters by index before the hash work; the share is
/// only materialized (symbol bytes parsed) after verification passes.
fn verified_share_msgs(
    inbox: &Inbox,
    z_star: Hash256,
    mut keep: impl FnMut(usize) -> bool,
) -> Vec<ShareMsg> {
    let mut out = Vec::new();
    for sender in 0..inbox.party_count() {
        for raw in inbox.raw_from(PartyId(sender)) {
            let Ok(msg) = ShareMsgRef::decode_from_slice(raw) else {
                continue;
            };
            if !keep(msg.idx as usize) {
                continue;
            }
            if MerkleTree::verify(
                z_star,
                msg.idx as usize,
                msg.share.encoded_bytes(),
                &msg.witness,
            ) {
                out.push((msg.idx, msg.share.to_share(), msg.witness));
            }
        }
    }
    out
}

/// Runs `Π_ℓBA+` on `input`, instantiating the assumed `Π_BA` with `ba`.
///
/// Returns the agreed value, or `None` (the paper's `⊥`).
///
/// Guarantees (for `t < n/3`), per Theorem 1: Termination, Agreement,
/// Validity, Intrusion Tolerance, Bounded Pre-Agreement.
pub fn lba_plus<V: Value>(ctx: &mut dyn Comm, input: &V, ba: BaKind) -> Option<V> {
    ctx.scoped("lba+", |ctx| {
        let out = lba_plus_body(ctx, input, ba);
        ctx.trace_decide(|| ca_net::compact_debug(&out));
        out
    })
}

/// `Π_ℓBA+` proper, inside the `lba+` scope (split out so the decide
/// trace event covers the `⊥` early returns too).
fn lba_plus_body<V: Value>(ctx: &mut dyn Comm, input: &V, ba: BaKind) -> Option<V> {
    let n = ctx.n();
    let me = ctx.me();
    // ca-lint: allow(panic-path) — (n, n−t) are local config, not wire input
    let rs = ReedSolomon::new(n, ctx.quorum()).expect("valid (n, n−t) parameters");

    // Step 1: erasure-code and accumulate.
    let payload = input.encode_to_vec();
    let shares = rs.encode(&payload);
    let leaves: Vec<Vec<u8>> = shares.iter().map(Encode::encode_to_vec).collect();
    let tree = MerkleTree::build(&leaves);
    let z = tree.root();

    // Step 2: agree on an accumulator value.
    let z_star = ba_plus(ctx, z, ba)?;

    // Step 3a: holders of the agreed value disperse codewords.
    if z == z_star {
        for (j, (share, witness)) in shares.iter().zip(tree.witnesses()).enumerate() {
            ctx.send(PartyId(j), &(j as u32, share.clone(), witness));
        }
    }
    let inbox = ctx.next_round();
    let mine: Option<ShareMsg> = verified_share_msgs(&inbox, z_star, |idx| idx == me.index())
        .into_iter()
        .next();

    // Step 3b: echo the verified codeword to everyone.
    if let Some(msg) = &mine {
        ctx.send_all(msg);
    }
    let inbox = ctx.next_round();
    // Dedup only *after* verification: an unverifiable message for index j
    // must not shadow a later honest one (verified codewords for an index
    // are identical, so which duplicate wins is immaterial).
    let mut have = vec![false; n];
    let mut collected: Vec<(usize, Share)> = Vec::new();
    for (idx, share, _) in verified_share_msgs(&inbox, z_star, |idx| idx < n) {
        let idx = idx as usize;
        if !have[idx] {
            have[idx] = true;
            collected.push((idx, share));
        }
    }

    // Reconstruct; any (n−t)-subset of verified codewords yields the
    // same value because the accumulator binds index → codeword.
    let payload = rs.decode(&collected).ok()?;
    let value = V::decode_from_slice(&payload).ok()?;
    // Defense in depth: the reconstruction must re-accumulate to z*.
    let reencoded = rs.encode(&payload);
    let releaves: Vec<Vec<u8>> = reencoded.iter().map(Encode::encode_to_vec).collect();
    if MerkleTree::build(&releaves).root() != z_star {
        return None;
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Equivocate, Garbage, Replay};
    use ca_bits::BitString;
    use ca_net::{Corruption, Sim};

    fn long_input(bits: usize, seed: u8) -> BitString {
        BitString::from_bits((0..bits).map(|i| (i as u8).wrapping_mul(seed).is_multiple_of(3)))
    }

    #[test]
    fn validity_long_inputs() {
        let v = long_input(20_000, 7);
        let report = Sim::new(7).run(|ctx, _| lba_plus(ctx, &v, BaKind::TurpinCoan));
        for out in report.honest_outputs() {
            assert_eq!(out.as_ref(), Some(&v));
        }
    }

    #[test]
    fn agreement_and_intrusion_tolerance_mixed_inputs() {
        let inputs: Vec<BitString> = (0..7).map(|i| long_input(512, i as u8 + 1)).collect();
        let report =
            Sim::new(7).run(|ctx, id| lba_plus(ctx, &inputs[id.index()], BaKind::TurpinCoan));
        let outs = report.honest_outputs();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        if let Some(v) = outs[0] {
            assert!(inputs.contains(v), "output must be an honest input");
        }
    }

    #[test]
    fn bounded_pre_agreement_holds() {
        // n − 2t = 3 honest parties share an input ⇒ output non-⊥.
        let shared = long_input(4096, 3);
        let others: Vec<BitString> = (0..7).map(|i| long_input(4096, 50 + i as u8)).collect();
        let report = Sim::new(7)
            .corrupt(PartyId(5), Corruption::Scripted)
            .corrupt(PartyId(6), Corruption::Scripted)
            .with_adversary(Garbage::new(17))
            .run(|ctx, id| {
                let input = if id.index() < 3 {
                    shared.clone()
                } else {
                    others[id.index()].clone()
                };
                lba_plus(ctx, &input, BaKind::TurpinCoan)
            });
        for out in report.honest_outputs() {
            assert!(out.is_some(), "bounded pre-agreement violated");
        }
    }

    #[test]
    fn attacks_cannot_forge_output() {
        let v = long_input(8192, 9);
        for adv in 0..3 {
            let report = {
                let s = Sim::new(7)
                    .corrupt(PartyId(5), Corruption::Scripted)
                    .corrupt(PartyId(6), Corruption::Scripted);
                let s = match adv {
                    0 => s.with_adversary(Garbage::new(21)),
                    1 => s.with_adversary(Replay::new(22)),
                    _ => s.with_adversary(Equivocate::new(23)),
                };
                s.run(|ctx, _| lba_plus(ctx, &v, BaKind::TurpinCoan))
            };
            for out in report.honest_outputs() {
                assert_eq!(out.as_ref(), Some(&v), "adversary {adv}");
            }
        }
    }

    #[test]
    fn lying_minority_cannot_override() {
        let honest_v = long_input(2048, 1);
        let liar_v = long_input(2048, 2);
        let report = Sim::new(7)
            .corrupt(PartyId(5), Corruption::LyingHonest)
            .corrupt(PartyId(6), Corruption::LyingHonest)
            .run(|ctx, id| {
                let input = if id.index() >= 5 {
                    liar_v.clone()
                } else {
                    honest_v.clone()
                };
                lba_plus(ctx, &input, BaKind::TurpinCoan)
            });
        for out in report.honest_outputs() {
            assert_eq!(out.as_ref(), Some(&honest_v));
        }
    }

    #[test]
    fn value_sized_traffic_scales_linearly_not_quadratically() {
        // Theorem 1's point: doubling ℓ adds ~2ℓn bits, not 2ℓn².
        let n = 10;
        let small = long_input(20_000, 5);
        let large = long_input(40_000, 5);
        let bits_small = Sim::new(n)
            .run(|ctx, _| lba_plus(ctx, &small, BaKind::TurpinCoan))
            .metrics
            .honest_bits;
        let bits_large = Sim::new(n)
            .run(|ctx, _| lba_plus(ctx, &large, BaKind::TurpinCoan))
            .metrics
            .honest_bits;
        let delta = bits_large - bits_small;
        // Expected extra ≈ 2 · Δℓ · (n−1) · (n/(n−t)) ≈ 2·20000·9·1.43 ≈ 5.2e5.
        // A quadratic dependence would add ≈ n× that. Allow generous slack.
        let linear_estimate = 2 * 20_000 * (n as u64 - 1) * 3 / 2;
        assert!(
            delta < 3 * linear_estimate,
            "delta {delta} vs linear estimate {linear_estimate}"
        );
    }
}
