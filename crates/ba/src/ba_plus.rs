//! `Π_BA+` (paper §7, Theorem 6): BA for short values with
//! *Intrusion Tolerance* and *Bounded Pre-Agreement*.
//!
//! The paper's protocol, verbatim:
//!
//! 1. Send the input to all parties.
//! 2. Vote for every value received from `≥ n − 2t` parties (at most two
//!    such values can exist).
//! 3. Let `a ≤ b` be the (at most two) values voted by `≥ n − t` parties
//!    (`⊥` if fewer).
//! 4. BA on `a`; then binary BA on "my `a` equals the outcome and is
//!    non-`⊥`". If the bit is 1, output the agreed `a`.
//! 5. Otherwise repeat for `b`; if that fails too, output `⊥`.
//!
//! Costs: `BITSκ(Π_BA+) = O(κn²) + 4·BITSκ(Π_BA)` (the paper folds the four
//! invocations into the `BITSκ(Π_BA)` term), `ROUNDS = 2 + O(1)·ROUNDSκ(Π_BA)`.

use std::collections::BTreeMap;

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};
use ca_net::{Comm, CommExt};

use crate::{BaKind, Value};

/// A vote for the (at most two, strictly increasing) values a party has
/// seen `n − 2t` times. Malformed votes (too many entries, unsorted,
/// duplicates) are rejected at decode time, i.e. treated as silence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Vote<V> {
    values: Vec<V>,
}

impl<V: Encode> Encode for Vote<V> {
    fn encode(&self, w: &mut Writer) {
        self.values.encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.values.encoded_len()
    }
}

impl<V: Decode + Ord> Decode for Vote<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let values: Vec<V> = Vec::decode(r)?;
        if values.len() > 2 {
            return Err(CodecError::Invalid("vote with more than two values"));
        }
        if values.len() == 2 && values[0] >= values[1] {
            return Err(CodecError::Invalid("vote not strictly increasing"));
        }
        Ok(Vote { values })
    }
}

/// Runs `Π_BA+` on `input`, instantiating the assumed `Π_BA` with `ba`.
///
/// # Examples
///
/// ```
/// use ca_ba::{ba_plus, BaKind};
/// use ca_crypto::sha256;
/// use ca_net::Sim;
///
/// let z = sha256(b"shared value");
/// let report = Sim::new(4).run(|ctx, _| ba_plus(ctx, z, BaKind::TurpinCoan));
/// assert!(report.honest_outputs().iter().all(|o| **o == Some(z)));
/// ```
///
/// Guarantees (for `t < n/3`), per Theorem 6:
/// * BA: Termination, Agreement, Validity;
/// * **Intrusion Tolerance**: the output is an honest input or `None`;
/// * **Bounded Pre-Agreement**: output `None` implies fewer than `n − 2t`
///   honest parties shared an input.
pub fn ba_plus<V: Value>(ctx: &mut dyn Comm, input: V, ba: BaKind) -> Option<V> {
    ctx.scoped("ba+", |ctx| {
        let n = ctx.n();
        let t = ctx.t();

        // Line 1: distribute inputs.
        let inbox = ctx.exchange(&input);
        let mut counts: BTreeMap<V, usize> = BTreeMap::new();
        for (_, v) in inbox.decode_each::<V>() {
            *counts.entry(v).or_insert(0) += 1;
        }
        // Line 2: vote for values seen from ≥ n − 2t parties (≤ 2 exist).
        let mut seen: Vec<V> = counts
            .into_iter()
            .filter(|(_, c)| *c >= n - 2 * t)
            .map(|(v, _)| v)
            .collect();
        seen.truncate(2); // provably ≤ 2 already; defensive
        let votes_msg = Vote { values: seen };
        let inbox = ctx.exchange(&votes_msg);

        // Line 3: a ≤ b = the values voted by ≥ n − t parties.
        let mut vote_counts: BTreeMap<V, usize> = BTreeMap::new();
        for (_, vote) in inbox.decode_each::<Vote<V>>() {
            for v in vote.values {
                *vote_counts.entry(v).or_insert(0) += 1;
            }
        }
        let backed: Vec<V> = vote_counts
            .into_iter()
            .filter(|(_, c)| *c >= n - t)
            .map(|(v, _)| v)
            .collect();
        let (a, b): (Option<V>, Option<V>) = match backed.as_slice() {
            [] => (None, None),
            [v] => (Some(v.clone()), Some(v.clone())),
            // BTreeMap iteration is ascending, so backed[0] ≤ backed[1];
            // more than two n−t vote quorums are impossible.
            [v, w, ..] => (Some(v.clone()), Some(w.clone())),
        };

        // Lines 4–5: try to agree on a, then on b.
        let mut out = None;
        for candidate in [a, b] {
            let agreed: Option<V> = ba.run(ctx, candidate.clone());
            let happy = agreed.is_some() && agreed == candidate;
            if ba.run_bit(ctx, happy) {
                // Some honest party voted 1, so `agreed` is its non-⊥
                // candidate; by Agreement everyone holds the same `agreed`.
                out = agreed;
                break;
            }
        }
        ctx.trace_decide(|| ca_net::compact_debug(&out));
        out
    })
}

/// Fault-adaptive `Π_BA+`: one optimistic exchange plus a binary BA that
/// certifies the shortcut, falling back to the full [`ba_plus`] otherwise.
///
/// The optimistic attempt costs one all-to-all exchange of the input and
/// one binary BA — against `ba_plus`'s two value exchanges plus up to four
/// `Π_BA` invocations. A party is *happy* when it received `n` well-formed
/// copies of its own input (unanimity, nobody silent) and the transport's
/// [`ca_net::FaultEstimate`] is within `fault_budget` observed faults. The
/// binary BA on the happy bit makes the path choice common:
///
/// * bit = 1 ⇒ by BA validity some honest party was happy, so it saw
///   every honest input equal to its own value `v` — hence *all* honest
///   inputs are `v` and outputting one's own input is both agreement and
///   intrusion tolerance;
/// * bit = 0 ⇒ every honest party runs the full `ba_plus`, whose
///   guarantees apply unchanged.
///
/// Both branches are taken by all honest parties in lock-step, so round
/// alignment is preserved.
pub fn ba_plus_adaptive<V: Value>(
    ctx: &mut dyn Comm,
    input: V,
    ba: BaKind,
    fault_budget: usize,
) -> Option<V> {
    ctx.scoped("ba+a", |ctx| {
        let n = ctx.n();
        let inbox = ctx.exchange(&input);
        let received = inbox.decode_each::<V>();
        let happy = received.len() == n
            && received.iter().all(|(_, v)| *v == input)
            && ctx.fault_estimate().within(fault_budget);
        let out = if ba.run_bit(ctx, happy) {
            ctx.trace_fast_path(|| ca_net::compact_debug(&Some(input.clone())));
            Some(input)
        } else {
            ctx.trace_fallback("ba-rejected");
            ba_plus(ctx, input, ba)
        };
        ctx.trace_decide(|| ca_net::compact_debug(&out));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Equivocate, Garbage, Replay};
    use ca_crypto::sha256;
    use ca_net::{Corruption, PartyId, Sim};

    fn hashes(n: usize) -> Vec<ca_crypto::Hash256> {
        (0..n).map(|i| sha256(&[i as u8])).collect()
    }

    #[test]
    fn validity_all_same() {
        let h = sha256(b"value");
        for ba in [BaKind::TurpinCoan, BaKind::PhaseKing] {
            let report = Sim::new(7).run(|ctx, _| ba_plus(ctx, h, ba));
            for out in report.honest_outputs() {
                assert_eq!(*out, Some(h));
            }
        }
    }

    #[test]
    fn all_distinct_inputs_agree_possibly_bot() {
        let hs = hashes(7);
        let report = Sim::new(7).run(|ctx, id| ba_plus(ctx, hs[id.index()], BaKind::TurpinCoan));
        let outs = report.honest_outputs();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        // Intrusion tolerance: output is an honest input or ⊥.
        if let Some(v) = outs[0] {
            assert!(hs.contains(v));
        }
    }

    #[test]
    fn bounded_pre_agreement() {
        // n = 7, t = 2: n − 2t = 3 parties share a value ⇒ the output must
        // be non-⊥ (and by intrusion tolerance, an honest input).
        let n = 7;
        let shared = sha256(b"popular");
        let hs = hashes(n);
        let report = Sim::new(n)
            .corrupt(PartyId(5), Corruption::Scripted)
            .corrupt(PartyId(6), Corruption::Scripted)
            .run(|ctx, id| {
                let input = if id.index() < 3 {
                    shared
                } else {
                    hs[id.index()]
                };
                ba_plus(ctx, input, BaKind::TurpinCoan)
            });
        for out in report.honest_outputs() {
            assert!(out.is_some(), "bounded pre-agreement violated");
        }
    }

    #[test]
    fn bounded_pre_agreement_under_attacks() {
        let n = 7;
        let shared = sha256(b"target");
        for adv in 0..3 {
            let report = {
                let s = Sim::new(n)
                    .corrupt(PartyId(5), Corruption::Scripted)
                    .corrupt(PartyId(6), Corruption::Scripted);
                let s = match adv {
                    0 => s.with_adversary(Garbage::new(11)),
                    1 => s.with_adversary(Replay::new(12)),
                    _ => s.with_adversary(Equivocate::new(13)),
                };
                s.run(|ctx, _| ba_plus(ctx, shared, BaKind::TurpinCoan))
            };
            for out in report.honest_outputs() {
                assert_eq!(*out, Some(shared), "adversary {adv}");
            }
        }
    }

    #[test]
    fn intrusion_tolerance_with_lying_split() {
        // Liars try to push their own value; output must be ⊥ or an honest
        // party's input — never the liars' exclusive value.
        let n = 7;
        let honest_val = sha256(b"honest");
        let liar_val = sha256(b"liar");
        let report = Sim::new(n)
            .corrupt(PartyId(5), Corruption::LyingHonest)
            .corrupt(PartyId(6), Corruption::LyingHonest)
            .run(|ctx, id| {
                let input = if id.index() >= 5 {
                    liar_val
                } else {
                    honest_val
                };
                ba_plus(ctx, input, BaKind::TurpinCoan)
            });
        for out in report.honest_outputs() {
            // 5 honest share a value (≥ n − 2t = 3): bounded pre-agreement
            // forces non-⊥; intrusion tolerance forces the honest value.
            assert_eq!(*out, Some(honest_val));
        }
    }

    #[test]
    fn adaptive_unanimous_takes_fast_path() {
        let h = sha256(b"value");
        let report = Sim::new(7).run(|ctx, _| ba_plus_adaptive(ctx, h, BaKind::TurpinCoan, 0));
        for out in report.honest_outputs() {
            assert_eq!(*out, Some(h));
        }
    }

    #[test]
    fn adaptive_is_cheaper_than_full_when_unanimous() {
        let h = sha256(b"value");
        let fast = Sim::new(7).run(|ctx, _| ba_plus_adaptive(ctx, h, BaKind::TurpinCoan, 0));
        let full = Sim::new(7).run(|ctx, _| ba_plus(ctx, h, BaKind::TurpinCoan));
        assert!(
            fast.metrics.rounds < full.metrics.rounds,
            "adaptive {} rounds vs full {}",
            fast.metrics.rounds,
            full.metrics.rounds
        );
        assert!(
            fast.metrics.honest_bits * 2 <= full.metrics.honest_bits,
            "adaptive {} bits vs full {}",
            fast.metrics.honest_bits,
            full.metrics.honest_bits
        );
    }

    #[test]
    fn adaptive_distinct_inputs_fall_back_and_agree() {
        let hs = hashes(7);
        let report =
            Sim::new(7).run(|ctx, id| ba_plus_adaptive(ctx, hs[id.index()], BaKind::TurpinCoan, 0));
        let outs = report.honest_outputs();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        if let Some(v) = outs[0] {
            assert!(hs.contains(v));
        }
    }

    #[test]
    fn adaptive_stays_correct_under_attacks() {
        let n = 7;
        let shared = sha256(b"target");
        for adv in 0..3 {
            let report = {
                let s = Sim::new(n)
                    .corrupt(PartyId(5), Corruption::Scripted)
                    .corrupt(PartyId(6), Corruption::Scripted);
                let s = match adv {
                    0 => s.with_adversary(Garbage::new(21)),
                    1 => s.with_adversary(Replay::new(22)),
                    _ => s.with_adversary(Equivocate::new(23)),
                };
                s.run(|ctx, _| ba_plus_adaptive(ctx, shared, BaKind::TurpinCoan, 0))
            };
            for out in report.honest_outputs() {
                assert_eq!(*out, Some(shared), "adversary {adv}");
            }
        }
    }

    #[test]
    fn malformed_votes_are_silence() {
        use ca_codec::Encode;
        // Unsorted 2-value vote must fail decoding.
        let vote = Vote {
            values: vec![5u64, 3u64],
        };
        let bytes = vote.encode_to_vec();
        assert!(Vote::<u64>::decode_from_slice(&bytes).is_err());
        // Three-value vote rejected too.
        let vote = Vote {
            values: vec![1u64, 2, 3],
        };
        let bytes = vote.encode_to_vec();
        assert!(Vote::<u64>::decode_from_slice(&bytes).is_err());
    }
}
