//! Multi-valued phase-king byzantine agreement (Berman–Garay–Perry [7]).
//!
//! The deterministic, setup-free `t < n/3` BA the paper's final corollary
//! instantiates `Π_BA` with. `t + 1` phases of three rounds each — at least
//! one phase has an honest king, which forces agreement; agreement, once
//! reached, persists.
//!
//! Complexity: `ROUNDS = 3(t+1) = O(n)`, `BITS = O(|v| · n² · t) = O(|v|·n³)`
//! worst case. For κ-bit values the Turpin–Coan reduction
//! ([`crate::turpin_coan`]) is cheaper; this direct version is kept both as
//! the binary BA it reduces to (`|v| = 1`) and for the F4 ablation.

use std::collections::BTreeMap;

use ca_net::{Comm, CommExt, PartyId};

use crate::Value;

/// Runs one instance of phase-king BA on `input`.
///
/// Guarantees (for `t < n/3`): Termination, Agreement, and Validity (if all
/// honest parties input `v`, they output `v`).
///
/// # Examples
///
/// ```
/// use ca_ba::phase_king;
/// use ca_net::Sim;
///
/// let report = Sim::new(4).run(|ctx, _id| phase_king(ctx, 42u64));
/// assert!(report.honest_outputs().iter().all(|v| **v == 42)); // Validity
/// ```
///
/// Additionally (used by `HighCostCA`'s analysis): every honest party's
/// decision variable is, at every phase boundary, either its own previous
/// value or a value proposed by `≥ t+1` parties (hence by an honest party).
pub fn phase_king<V: Value>(ctx: &mut dyn Comm, input: V) -> V {
    ctx.scoped("pk", |ctx| {
        let n = ctx.n();
        let t = ctx.t();
        let quorum = n - t;
        let mut current = input;

        for phase in 0..=t {
            let king = PartyId(phase % n);

            // Round 1: universal exchange of the current values.
            let values = ctx.exchange(&current);
            let mut counts: BTreeMap<V, usize> = BTreeMap::new();
            for (_, v) in values.decode_each::<V>() {
                *counts.entry(v).or_insert(0) += 1;
            }
            let proposal: Option<V> = counts
                .iter()
                .find(|(_, c)| **c >= quorum)
                .map(|(v, _)| v.clone());

            // Round 2: parties that saw a (n−t)-quorum propose its value.
            if let Some(p) = &proposal {
                ctx.send_all(p);
            }
            let proposes = ctx.next_round();
            let mut prop_counts: BTreeMap<V, usize> = BTreeMap::new();
            for (_, v) in proposes.decode_each::<V>() {
                *prop_counts.entry(v).or_insert(0) += 1;
            }
            // At most one value can be proposed by ≥ t+1 parties
            // (two honest proposers would need two intersecting quorums);
            // smallest-first iteration makes byzantine edge cases
            // deterministic anyway.
            let backed: Option<V> = prop_counts
                .iter()
                .find(|(_, c)| **c > t)
                .map(|(v, _)| v.clone());
            let strongly_backed = prop_counts.values().any(|c| *c >= quorum);
            if let Some(v) = &backed {
                current = v.clone();
            }

            // Round 3: the king broadcasts its pick; parties without a
            // strong (n−t) propose-quorum adopt it.
            if ctx.me() == king {
                let king_value = backed.unwrap_or_else(|| current.clone());
                ctx.send_all(&king_value);
            }
            let king_msgs = ctx.next_round();
            if !strongly_backed {
                if let Some(kv) = king_msgs.decode_from::<V>(king) {
                    current = kv;
                }
                // A silent/garbled king leaves `current` unchanged —
                // harmless: only phases with an honest king must converge.
            }
        }
        // Decide only (no Input event): BA validity is vacuous on mixed
        // inputs, so a hull check over BA scopes would be wrong.
        ctx.trace_decide(|| ca_net::compact_debug(&current));
        current
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Equivocate, Garbage, Replay};
    use ca_net::{Adversary, Corruption, RoundActions, RoundView, Sim};

    fn run_pk(n: usize, inputs: Vec<u64>, setup: impl FnOnce(Sim) -> Sim) -> Vec<u64> {
        let report = setup(Sim::new(n)).run(|ctx, id| phase_king(ctx, inputs[id.index()]));
        let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
        assert!(!outs.is_empty());
        outs
    }

    #[test]
    fn validity_all_same_input() {
        for n in [1, 2, 4, 7, 10] {
            let outs = run_pk(n, vec![42; n], |s| s);
            assert!(outs.iter().all(|&v| v == 42), "n = {n}");
        }
    }

    #[test]
    fn agreement_on_mixed_inputs() {
        let outs = run_pk(7, vec![1, 2, 3, 4, 5, 6, 7], |s| s);
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    }

    #[test]
    fn validity_under_crash_faults() {
        let n = 7;
        let outs = run_pk(n, vec![9; n], |s| {
            s.corrupt(PartyId(5), Corruption::Scripted)
                .corrupt(PartyId(6), Corruption::Scripted)
        });
        assert_eq!(outs, vec![9; 5]);
    }

    #[test]
    fn validity_under_garbage_and_replay_and_equivocate() {
        let n = 7;
        for adv in 0..3 {
            let outs = run_pk(n, vec![7; n], |s| {
                let s = s
                    .corrupt(PartyId(5), Corruption::Scripted)
                    .corrupt(PartyId(6), Corruption::Scripted);
                match adv {
                    0 => s.with_adversary(Garbage::new(1)),
                    1 => s.with_adversary(Replay::new(2)),
                    _ => s.with_adversary(Equivocate::new(3)),
                }
            });
            assert_eq!(outs, vec![7; 5], "adversary {adv}");
        }
    }

    #[test]
    fn agreement_with_lying_parties() {
        let n = 10; // t = 3
        let mut inputs = vec![5u64; n];
        inputs[7] = 1_000;
        inputs[8] = 2_000;
        inputs[9] = 3_000;
        let report = Sim::new(n)
            .corrupt(PartyId(7), Corruption::LyingHonest)
            .corrupt(PartyId(8), Corruption::LyingHonest)
            .corrupt(PartyId(9), Corruption::LyingHonest)
            .run(|ctx, id| phase_king(ctx, inputs[id.index()]));
        let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
        // 7 honest parties share input 5 ≥ n − t: validity must hold even
        // though the liars push huge values.
        assert_eq!(outs, vec![5; 7]);
    }

    /// A king-targeted attack: equivocate exactly during king rounds.
    struct KingSplitter;
    impl Adversary for KingSplitter {
        fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
            use bytes::Bytes;
            use ca_codec::Encode;
            let mut a = RoundActions::default();
            // Every third round is a king round; pretend to be a king
            // sending different values to each half.
            if view.round % 3 == 2 {
                for &from in view.corrupted {
                    for to in 0..view.n {
                        let v: u64 = if to % 2 == 0 { 111 } else { 222 };
                        a.sends.push(ca_net::SendSpec {
                            from,
                            to: PartyId(to),
                            payload: Bytes::from(v.encode_to_vec()),
                        });
                    }
                }
            }
            a
        }
    }

    #[test]
    fn byzantine_king_cannot_break_agreement() {
        // P0 is the phase-0 king and corrupted: it splits the parties; later
        // honest kings must still converge.
        let n = 4;
        let inputs = [10u64, 20, 30, 40];
        let report = Sim::new(n)
            .corrupt(PartyId(0), Corruption::Scripted)
            .with_adversary(KingSplitter)
            .run(|ctx, id| phase_king(ctx, inputs[id.index()]));
        let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
        assert_eq!(outs.len(), 3);
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    }

    #[test]
    fn rounds_are_three_per_phase() {
        let report = Sim::new(7).run(|ctx, _| phase_king(ctx, true));
        // t = 2 → 3 phases → 9 rounds.
        assert_eq!(report.metrics.rounds, 9);
        assert_eq!(report.metrics.scope_subtree("pk").rounds, 9);
    }

    #[test]
    fn works_on_bitstrings() {
        use ca_bits::BitString;
        let v = BitString::parse_binary("1011001").unwrap();
        let inputs: Vec<BitString> = (0..4)
            .map(|i| if i < 3 { v.clone() } else { BitString::empty() })
            .collect();
        let report = Sim::new(4)
            .corrupt(PartyId(3), Corruption::LyingHonest)
            .run(|ctx, id| phase_king(ctx, inputs[id.index()].clone()));
        for out in report.honest_outputs() {
            assert_eq!(out, &v);
        }
    }
}
