//! `FindPrefix` (§3, Lemma 1) and `FindPrefixBlocks` (§4, Lemma 4):
//! byzantine binary search for a valid value's prefix.
//!
//! The central insight of the paper: the longest common prefix of values in
//! the honest inputs' *range* reveals enough structure to agree on a valid
//! value without ever shipping whole values all-to-all. Each search step
//! runs the intrusion-tolerant `Π_ℓBA+` on a window of the parties' current
//! values:
//!
//! * a **non-`⊥`** outcome is some honest party's window (Intrusion
//!   Tolerance), so the grown prefix stays a valid value's prefix — parties
//!   whose value disagrees snap to `MINℓ`/`MAXℓ` of the new prefix (valid
//!   by Remark 2) and the search continues to the right;
//! * a **`⊥`** outcome certifies (Bounded Pre-Agreement) that for *any*
//!   window value, `≥ t+1` honest parties disagree with it — exactly the
//!   precondition `GetOutput` later needs — and the search continues to
//!   the left.

use ca_ba::{lba_plus, BaKind};
use ca_bits::BitString;
use ca_net::{Comm, CommExt};

/// Outcome of a prefix search (`FindPrefix` / `FindPrefixBlocks`).
///
/// Invariants established by Lemma 1 (resp. Lemma 4), given honest parties
/// entered with valid `ℓ`-bit values:
///
/// * all honest parties hold the same `prefix` (`PREFIX*`);
/// * `v` is a valid `ℓ`-bit value and `prefix` is a prefix of it;
/// * for any extension of `prefix` by one unit (bit resp. block), at least
///   `t + 1` honest parties hold `v_bot` values **not** having that
///   extension as a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSearch {
    /// The agreed prefix `PREFIX*` (a multiple of the search granularity).
    pub prefix: BitString,
    /// This party's valid `ℓ`-bit value with prefix `PREFIX*`.
    pub v: BitString,
    /// This party's valid `ℓ`-bit witness value for the `⊥` branches.
    pub v_bot: BitString,
    /// Number of search iterations executed (measured for experiment F5).
    pub iterations: usize,
}

/// `FindPrefix(ℓ, v)`: bit-granular search (§3).
///
/// `v_in` must be an `ℓ`-bit representation of this party's (valid) value.
///
/// Costs (Lemma 1): `O(log ℓ)` iterations, each one `Π_ℓBA+` call on a
/// window of half the previous length.
///
/// # Examples
///
/// ```
/// use ca_bits::Nat;
/// use ca_core::{find_prefix, BaKind};
/// use ca_net::Sim;
///
/// let ell = 8;
/// let inputs = [0b1010_0001u64, 0b1010_0110, 0b1010_1100];
/// let report = Sim::new(3).run(|ctx, id| {
///     let bits = Nat::from_u64(inputs[id.index()]).to_bits_len(ell).unwrap();
///     find_prefix(ctx, ell, &bits, BaKind::TurpinCoan)
/// });
/// let outs = report.honest_outputs();
/// // Everyone agrees on PREFIX*, at least as long as the honest LCP "1010".
/// assert!(outs.windows(2).all(|w| w[0].prefix == w[1].prefix));
/// assert!(outs[0].prefix.len() >= 4);
/// ```
///
/// # Panics
///
/// Panics if `v_in.len() != ell` or `ell == 0`.
pub fn find_prefix(ctx: &mut dyn Comm, ell: usize, v_in: &BitString, ba: BaKind) -> PrefixSearch {
    search(ctx, ell, 1, v_in, ba)
}

/// `FindPrefixBlocks(ℓ, v)`: block-granular search (§4) over `n²` blocks of
/// `ℓ/n²` bits.
///
/// Reduces the iteration count from `O(log ℓ)` to `O(log n)` for very long
/// inputs (Lemma 4).
///
/// # Panics
///
/// Panics if `ell` is not a positive multiple of `n²` or
/// `v_in.len() != ell`.
pub fn find_prefix_blocks(
    ctx: &mut dyn Comm,
    ell: usize,
    v_in: &BitString,
    ba: BaKind,
) -> PrefixSearch {
    let n2 = ctx.n() * ctx.n();
    assert!(
        ell > 0 && ell.is_multiple_of(n2),
        "ℓ = {ell} must be a positive multiple of n² = {n2}"
    );
    search(ctx, ell, ell / n2, v_in, ba)
}

/// Shared binary-search engine; `unit` is the granularity in bits
/// (1 for `FindPrefix`, `ℓ/n²` for `FindPrefixBlocks`).
fn search(
    ctx: &mut dyn Comm,
    ell: usize,
    unit: usize,
    v_in: &BitString,
    ba: BaKind,
) -> PrefixSearch {
    assert!(ell > 0, "ℓ must be positive");
    assert_eq!(v_in.len(), ell, "input must be an ℓ-bit representation");
    let units = ell / unit;

    ctx.scoped("find_prefix", |ctx| {
        // Half-open unit window [lo, hi); PREFIX* always holds lo units.
        let mut lo = 0usize;
        let mut hi = units;
        let mut v = v_in.clone();
        let mut v_bot = v_in.clone();
        let mut prefix = BitString::empty();
        let mut iterations = 0;

        while lo < hi {
            iterations += 1;
            // The paper's window is units LEFT..MID inclusive,
            // MID = ⌊(LEFT+RIGHT)/2⌋; 0-indexed that is [lo, mid] with
            // mid = ⌊(lo+hi)/2⌋, i.e. bits [lo·unit, (mid+1)·unit).
            let mid = (lo + hi) / 2;
            let window = v.slice(lo * unit, (mid + 1) * unit);

            match lba_plus(ctx, &window, ba) {
                Some(agreed) if agreed.len() == window.len() => {
                    // Agreement on an honest window: extend the prefix and
                    // realign values that disagree (Remark 2 keeps them
                    // valid).
                    prefix.extend_from(&agreed);
                    let own = v.prefix((mid + 1) * unit);
                    match own.cmp_val(&prefix) {
                        std::cmp::Ordering::Less => v = prefix.min_extend(ell),
                        std::cmp::Ordering::Greater => v = prefix.max_extend(ell),
                        std::cmp::Ordering::Equal => {}
                    }
                    lo = mid + 1;
                }
                _ => {
                    // ⊥ (or, defensively, a malformed length — impossible
                    // for honest inputs, and agreed-upon either way):
                    // Bounded Pre-Agreement certifies dissent on this
                    // window; remember the current value as the witness.
                    v_bot = v.clone();
                    hi = mid;
                }
            }
        }

        debug_assert_eq!(prefix.len(), lo * unit);
        debug_assert!(prefix.is_prefix_of(&v));
        ctx.trace_note("prefix_search", || {
            format!("iters={iterations} prefix_len={}", prefix.len())
        });
        PrefixSearch {
            prefix,
            v,
            v_bot,
            iterations,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bits::Nat;
    use ca_net::{RunReport, Sim};

    fn inputs_to_bits(ell: usize, vals: &[u64]) -> Vec<BitString> {
        vals.iter()
            .map(|&v| Nat::from_u64(v).to_bits_len(ell).unwrap())
            .collect()
    }

    fn run(n: usize, ell: usize, vals: &[u64]) -> RunReport<PrefixSearch> {
        let bits = inputs_to_bits(ell, vals);
        Sim::new(n).run(move |ctx, id| find_prefix(ctx, ell, &bits[id.index()], BaKind::TurpinCoan))
    }

    #[test]
    fn identical_inputs_yield_full_prefix() {
        let report = run(4, 16, &[0xBEEF, 0xBEEF, 0xBEEF, 0xBEEF]);
        for out in report.honest_outputs() {
            assert_eq!(out.prefix.len(), 16);
            assert_eq!(out.prefix.val(), Nat::from_u64(0xBEEF));
            assert_eq!(out.v, out.prefix);
        }
    }

    #[test]
    fn lemma1_invariants_on_mixed_inputs() {
        let vals = [100, 120, 130, 140];
        let ell = 8;
        let report = run(4, ell, &vals);
        let outs = report.honest_outputs();
        // (i) same prefix for everyone.
        assert!(outs.windows(2).all(|w| w[0].prefix == w[1].prefix));
        for out in &outs {
            // (ii) prefix prefixes v, and v is a valid ℓ-bit value.
            assert!(out.prefix.is_prefix_of(&out.v));
            assert_eq!(out.v.len(), ell);
            let v = out.v.val();
            assert!(v >= Nat::from_u64(100) && v <= Nat::from_u64(140), "{v:?}");
            // v_bot is valid too.
            let vb = out.v_bot.val();
            assert!(
                vb >= Nat::from_u64(100) && vb <= Nat::from_u64(140),
                "{vb:?}"
            );
        }
        // The common prefix of 100..140 (01100100..10001100) is empty;
        // the agreed prefix must still be SOME valid value's prefix:
        let p = &outs[0].prefix;
        if p.len() < ell {
            let lo = p.min_extend(ell).val();
            let hi = p.max_extend(ell).val();
            assert!(hi >= Nat::from_u64(100) && lo <= Nat::from_u64(140));
        }
    }

    #[test]
    fn prefix_at_least_honest_lcp() {
        // Honest inputs share a 9-bit prefix; the agreed prefix must be at
        // least as long (the search can only stop where honest parties
        // genuinely dissent).
        let vals = [0b1011_0110_1000u64, 0b1011_0110_1011, 0b1011_0110_1101];
        let ell = 12;
        let report = run(3, ell, &vals);
        for out in report.honest_outputs() {
            assert!(out.prefix.len() >= 9, "prefix {} too short", out.prefix);
        }
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        for ell in [8usize, 64, 256] {
            let vals = [1, 2, 3, 5];
            let report = run(4, ell, &vals);
            for out in report.honest_outputs() {
                assert!(
                    out.iterations <= ell.ilog2() as usize + 2,
                    "ℓ = {ell}: {} iterations",
                    out.iterations
                );
            }
        }
    }

    #[test]
    fn blocks_variant_matches_granularity() {
        let n = 3;
        let n2 = n * n;
        let ell = n2 * 4; // blocks of 4 bits
        let vals = [77, 88, 99];
        let bits = inputs_to_bits(ell, &vals);
        let report = Sim::new(n).run(move |ctx, id| {
            find_prefix_blocks(ctx, ell, &bits[id.index()], BaKind::TurpinCoan)
        });
        let outs = report.honest_outputs();
        assert!(outs.windows(2).all(|w| w[0].prefix == w[1].prefix));
        for out in outs {
            assert_eq!(out.prefix.len() % 4, 0, "prefix must be whole blocks");
            assert!(out.prefix.is_prefix_of(&out.v));
            // O(log n²) iterations.
            assert!(out.iterations <= (n2.ilog2() as usize) + 2);
        }
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn wrong_length_input_rejected() {
        let bits = BitString::repeat(false, 7);
        Sim::new(3).run(move |ctx, _| find_prefix(ctx, 8, &bits, BaKind::TurpinCoan));
    }
}
