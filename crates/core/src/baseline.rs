//! The classical broadcast-based CA baseline (§1): "each party sends its
//! input value via BC … afterwards, the parties decide on a common output
//! by applying a deterministic function to the values received."
//!
//! This is the `O(ℓn²)` approach the paper improves upon, implemented as
//! the main comparison baseline (experiments T1, F1, F2). Broadcast is
//! realized per sender as *send + intrusion-tolerant BA on the received
//! value* (an unauthenticated `t < n/3` broadcast), reusing the extension
//! machinery so the per-instance cost is `O(ℓn + poly(n, κ))` — i.e. the
//! *strongest reasonable* baseline; a naive value-flooding broadcast would
//! be `O(ℓn³)` and only flatter the paper's protocol.
//!
//! The deterministic decision function: sort the `n` agreed values, drop
//! the `t` lowest and `t` highest, output the median of the rest — with
//! `≥ n − t ≥ 2t + 1` non-`⊥` entries this is always inside the honest
//! range.
//!
//! Note on rounds: the `n` broadcast instances run *sequentially* here
//! (`O(n·log n · n)` rounds); a production implementation would run them in
//! parallel for `O(n)` rounds at identical communication. Experiments
//! compare `BITSℓ`, where sequencing is immaterial; T2 reports measured
//! rounds with this caveat.

use ca_ba::{lba_plus, BaKind, Value};
use ca_net::{Comm, CommExt, PartyId};

/// Runs broadcast-based CA on `input`.
///
/// Guarantees (`t < n/3`): Termination, Agreement, Convex Validity w.r.t.
/// the `Ord` on `V`.
///
/// # Examples
///
/// ```
/// use ca_core::{broadcast_ca, BaKind};
/// use ca_net::Sim;
///
/// let inputs = [5u64, 9, 7, 6];
/// let report =
///     Sim::new(4).run(|ctx, id| broadcast_ca(ctx, inputs[id.index()], BaKind::TurpinCoan));
/// let outs = report.honest_outputs();
/// assert!(outs.windows(2).all(|w| w[0] == w[1]));
/// assert!((5..=9).contains(outs[0]));
/// ```
pub fn broadcast_ca<V: Value>(ctx: &mut dyn Comm, input: V, ba: BaKind) -> V {
    ctx.scoped("broadcast_ca", |ctx| {
        let n = ctx.n();
        let t = ctx.t();
        let mut agreed: Vec<V> = Vec::with_capacity(n);

        for sender in 0..n {
            // Distribution round for this sender.
            if ctx.me().index() == sender {
                ctx.send_all(&input);
            }
            let inbox = ctx.next_round();
            let received: Option<V> = inbox.decode_from::<V>(PartyId(sender));
            // Agreement on what the sender said (⊥ if it equivocated enough).
            if let Some(Some(v)) = lba_plus(ctx, &received, ba) {
                agreed.push(v);
            }
        }

        // Deterministic decision: trimmed median.
        agreed.sort();
        if agreed.len() > 2 * t {
            let trimmed = &agreed[t..agreed.len() - t];
            trimmed[trimmed.len() / 2].clone()
        } else {
            // Unreachable with n − t honest broadcasts succeeding.
            V::default()
        }
    })
}

/// The round-efficient variant: all `n` broadcast instances run **in
/// parallel** via [`ca_net::run_parallel`], so the composition costs
/// `O(max)` instead of `O(sum)` rounds — the way the paper's §1 baseline
/// is meant. Communication is identical to [`broadcast_ca`] up to the
/// `O(1)`-byte instance tags.
pub fn broadcast_ca_parallel<V: Value>(ctx: &mut dyn Comm, input: V, ba: BaKind) -> V {
    ctx.scoped("broadcast_ca_par", |ctx| {
        let n = ctx.n();
        let t = ctx.t();
        let me = ctx.me();
        let outcomes: Vec<Option<V>> = ca_net::run_parallel(ctx, n, |sub, sender| {
            if me.index() == sender {
                sub.send_all(&input);
            }
            let inbox = sub.next_round();
            let received: Option<V> = inbox.decode_from::<V>(PartyId(sender));
            lba_plus(sub, &received, ba).flatten()
        });

        let mut agreed: Vec<V> = outcomes.into_iter().flatten().collect();
        agreed.sort();
        if agreed.len() > 2 * t {
            let trimmed = &agreed[t..agreed.len() - t];
            trimmed[trimmed.len() / 2].clone()
        } else {
            V::default()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Attack, LieKind};
    use ca_net::Sim;

    #[test]
    fn parallel_variant_matches_sequential_and_saves_rounds() {
        let inputs = [10u64, 30, 20, 25];
        let seq =
            Sim::new(4).run(|ctx, id| broadcast_ca(ctx, inputs[id.index()], BaKind::TurpinCoan));
        let par = Sim::new(4)
            .run(|ctx, id| broadcast_ca_parallel(ctx, inputs[id.index()], BaKind::TurpinCoan));
        assert_eq!(seq.honest_outputs(), par.honest_outputs());
        assert!(
            par.metrics.rounds * 2 < seq.metrics.rounds,
            "parallel {} vs sequential {} rounds",
            par.metrics.rounds,
            seq.metrics.rounds
        );
    }

    #[test]
    fn parallel_variant_under_attacks() {
        let n = 4;
        let t = 1;
        for attack in Attack::standard_suite(3) {
            let mut inputs = vec![100u64, 110, 105, 102];
            if attack.is_lying() {
                for p in attack.corrupted_parties(n, t) {
                    inputs[p.index()] = u64::MAX;
                }
            }
            let honest: Vec<u64> = match attack.kind {
                ca_adversary::AttackKind::None | ca_adversary::AttackKind::Adaptive => {
                    inputs.clone()
                }
                _ => inputs[..n - t].to_vec(),
            };
            let report = attack
                .install(Sim::new(n), n, t)
                .run(|ctx, id| broadcast_ca_parallel(ctx, inputs[id.index()], BaKind::TurpinCoan));
            let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
            assert!(
                outs.windows(2).all(|w| w[0] == w[1]),
                "agreement [{}]",
                attack.name()
            );
            let lo = honest.iter().min().unwrap();
            let hi = honest.iter().max().unwrap();
            assert!(
                outs[0] >= *lo && outs[0] <= *hi,
                "validity [{}]: {} ∉ [{lo}, {hi}]",
                attack.name(),
                outs[0]
            );
        }
    }

    fn assert_ca(outs: &[u64], honest: &[u64]) {
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        let lo = honest.iter().min().unwrap();
        let hi = honest.iter().max().unwrap();
        assert!(
            outs[0] >= *lo && outs[0] <= *hi,
            "convex validity: {} ∉ [{lo}, {hi}]",
            outs[0]
        );
    }

    #[test]
    fn honest_run() {
        let inputs = [10u64, 30, 20, 25];
        let report =
            Sim::new(4).run(|ctx, id| broadcast_ca(ctx, inputs[id.index()], BaKind::TurpinCoan));
        let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn attack_matrix() {
        let n = 4;
        let t = 1;
        for attack in Attack::standard_suite(5) {
            let mut inputs = vec![100u64, 110, 105, 102];
            if attack.is_lying() {
                for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
                    inputs[p.index()] = match attack.lie_for(idx).unwrap() {
                        LieKind::ExtremeHigh => u64::MAX,
                        LieKind::ExtremeLow => 0,
                        LieKind::Split => unreachable!(),
                    };
                }
            }
            let honest: Vec<u64> = match attack.kind {
                ca_adversary::AttackKind::None | ca_adversary::AttackKind::Adaptive => {
                    inputs.clone()
                }
                _ => inputs[..n - t].to_vec(),
            };
            let report = attack
                .install(Sim::new(n), n, t)
                .run(|ctx, id| broadcast_ca(ctx, inputs[id.index()], BaKind::TurpinCoan));
            let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
            assert_ca(&outs, &honest);
        }
    }
}
