//! `Π_ℕ` (§5, Theorem 5): the final CA protocol for naturals of *unknown*
//! length.
//!
//! Combines the two fixed-length protocols and removes the public-`ℓ`
//! assumption:
//!
//! 1. One binary BA decides the regime: "short" (`|BITS(v)| ≤ n²`) or
//!    "long".
//! 2. **Short path**: parties agree on an estimate `ℓ_EST = 2^i` by testing
//!    powers of two with binary BA (`O(log n)` of them), clamp over-long
//!    inputs to `2^{ℓ_EST} − 1` (valid because some honest party fits), and
//!    run `FixedLengthCA`.
//! 3. **Long path**: parties agree on a common block size with one
//!    `HighCostCA` on the (short) numbers `⌈|BITS(v)|/n²⌉`, set
//!    `ℓ_EST = BLOCKSIZE′·n²`, clamp, and run `FixedLengthCABlocks`.
//!
//! Costs (Theorem 5): `BITSℓ(Π_ℕ) = O(ℓn + κ·n²·log²n) + O(log n)·BITSκ(Π_BA)`,
//! `ROUNDSℓ = O(n) + O(log n)·ROUNDSκ(Π_BA)`.
//!
//! ## Deviation note
//!
//! The paper clamps on `|BITS(v_IN)| ≥ ℓ_EST` in the long path (line 10)
//! but on `>` in the short path (line 6); clamping a value of length
//! *exactly* `ℓ_EST` is unnecessary for the `v < 2^ℓ` precondition and can
//! violate convex validity (it would *raise* an in-range value to
//! `2^{ℓ_EST}−1`), so we use strict `>` in both paths, matching the proof
//! text ("if an honest party's input value is **longer than** ℓ_EST bits").

use ca_ba::BaKind;
use ca_bits::{BitString, Nat};
use ca_net::{Comm, CommExt};

use crate::{fixed_length_ca, fixed_length_ca_blocks, high_cost_ca};

/// Runs `Π_ℕ` on an arbitrary-size natural input.
///
/// Guarantees (Theorem 5, `t < n/3`): Termination, Agreement, Convex
/// Validity.
///
/// # Examples
///
/// ```
/// use ca_bits::Nat;
/// use ca_core::{pi_n, BaKind};
/// use ca_net::Sim;
///
/// let inputs = [100u64, 90, 95, 98].map(Nat::from_u64);
/// let report = Sim::new(4).run(|ctx, id| pi_n(ctx, &inputs[id.index()], BaKind::TurpinCoan));
/// let outs = report.honest_outputs();
/// assert!(outs.windows(2).all(|w| w[0] == w[1]));
/// assert!(*outs[0] >= Nat::from_u64(90) && *outs[0] <= Nat::from_u64(100));
/// ```
pub fn pi_n(ctx: &mut dyn Comm, v_in: &Nat, ba: BaKind) -> Nat {
    ctx.scoped("pi_n", |ctx| {
        ctx.trace_input(|| v_in.to_string());
        let out = pi_n_body(ctx, v_in, ba);
        ctx.trace_decide(|| out.to_string());
        out
    })
}

/// `Π_ℕ` proper, inside the `pi_n` scope (split out so the input/decide
/// trace events bracket every return path; also the worst-case fallback
/// of [`crate::pi_n_adaptive`], which brackets it with its own events).
pub(crate) fn pi_n_body(ctx: &mut dyn Comm, v_in: &Nat, ba: BaKind) -> Nat {
    let n = ctx.n();
    let n2 = n * n;

    // Line 1: decide the regime.
    let long = ctx.scoped("path_ba", |ctx| ba.run_bit(ctx, v_in.bit_len() > n2));

    if !long {
        // --- Short path ---
        // Some honest party is short, so the all-ones n²-bit value is
        // ≥ it and ≤ any longer honest value: clamping stays valid.
        let mut v = if v_in.bit_len() > n2 {
            Nat::all_ones(n2)
        } else {
            v_in.clone()
        };
        // Lines 4–7: estimate ℓ by scanning powers of two.
        let max_i = usize::max(1, n2.next_power_of_two().trailing_zeros() as usize);
        for i in 0..=max_i {
            let ell = 1usize << i;
            let fits = ctx.scoped("len_est", |ctx| ba.run_bit(ctx, v.bit_len() > ell));
            if !fits {
                // Agreed: some honest party fits in 2^i bits.
                if v.bit_len() > ell {
                    v = Nat::all_ones(ell);
                }
                // ca-lint: allow(panic-path) — v was clamped to ℓ bits two lines up
                let bits = v.to_bits_len(ell).expect("clamped to ℓ bits");
                return fixed_length_ca(ctx, ell, &bits, ba).val();
            }
        }
        // Unreachable: at i with 2^i ≥ n² every honest party fits, so
        // Validity forces the loop to stop. Deterministic fallback:
        let ell = 1usize << max_i;
        if v.bit_len() > ell {
            v = Nat::all_ones(ell);
        }
        // ca-lint: allow(panic-path) — v was clamped to ℓ bits two lines up
        let bits = v.to_bits_len(ell).expect("clamped");
        fixed_length_ca(ctx, ell, &bits, ba).val()
    } else {
        // --- Long path ---
        // Lines 9–10: agree on a block size within the honest range.
        let blocksize = v_in.bit_len().div_ceil(n2) as u64;
        let blocksize = ctx.scoped("blocksize", |ctx| high_cost_ca(ctx, blocksize, |_| true));
        if blocksize == 0 {
            // ⌈ℓ_min/n²⌉ = 0 ⇒ some honest party holds 0; 0 is valid.
            return Nat::zero();
        }
        let ell_est = (blocksize as usize) * n2;
        let v = if v_in.bit_len() > ell_est {
            Nat::all_ones(ell_est)
        } else {
            v_in.clone()
        };
        // ca-lint: allow(panic-path) — v was clamped to ℓ_EST bits two lines up
        let bits: BitString = v.to_bits_len(ell_est).expect("clamped to ℓ_EST bits");
        fixed_length_ca_blocks(ctx, ell_est, &bits, ba).val()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Attack, LieKind};
    use ca_net::Sim;

    fn assert_ca(outs: &[Nat], honest: &[Nat]) {
        assert!(!outs.is_empty());
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        let lo = honest.iter().min().unwrap();
        let hi = honest.iter().max().unwrap();
        assert!(
            outs[0] >= *lo && outs[0] <= *hi,
            "convex validity: {:?} ∉ [{:?}, {:?}]",
            outs[0],
            lo,
            hi
        );
    }

    fn run_pi_n(n: usize, inputs: Vec<Nat>, attack: Attack) -> Vec<Nat> {
        let t = ca_net::max_faults(n);
        let sim = attack.install(Sim::new(n), n, t);
        sim.run(move |ctx, id| pi_n(ctx, &inputs[id.index()], BaKind::TurpinCoan))
            .honest_outputs()
            .into_iter()
            .cloned()
            .collect()
    }

    #[test]
    fn short_identical() {
        let outs = run_pi_n(4, vec![Nat::from_u64(12345); 4], Attack::none());
        assert!(outs.iter().all(|v| *v == Nat::from_u64(12345)));
    }

    #[test]
    fn short_mixed() {
        let inputs: Vec<Nat> = [5u64, 900, 42, 77]
            .iter()
            .map(|&v| Nat::from_u64(v))
            .collect();
        let outs = run_pi_n(4, inputs.clone(), Attack::none());
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn includes_zero() {
        let inputs: Vec<Nat> = [0u64, 3, 1, 2].iter().map(|&v| Nat::from_u64(v)).collect();
        let outs = run_pi_n(4, inputs.clone(), Attack::none());
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn all_zero() {
        let outs = run_pi_n(4, vec![Nat::zero(); 4], Attack::none());
        assert!(outs.iter().all(Nat::is_zero));
    }

    #[test]
    fn long_path_engages_for_big_values() {
        let n = 4; // n² = 16 < 200 bits
        let inputs: Vec<Nat> = (0..n as u64)
            .map(|i| Nat::pow2(200).add(&Nat::from_u64(i * 12345)))
            .collect();
        let outs = run_pi_n(n, inputs.clone(), Attack::none());
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn mixed_regimes() {
        // Some honest parties short, some long: either path must stay convex.
        let n = 4;
        let inputs: Vec<Nat> = vec![
            Nat::from_u64(7),
            Nat::pow2(300),
            Nat::from_u64(9),
            Nat::pow2(299),
        ];
        let outs = run_pi_n(n, inputs.clone(), Attack::none());
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn traced_run_checks_clean_and_brackets_io() {
        use std::sync::Arc;
        let inputs: Vec<Nat> = [5u64, 900, 42, 77]
            .iter()
            .map(|&v| Nat::from_u64(v))
            .collect();
        let sink = Arc::new(ca_trace::RingBufferSink::new(2_000_000));
        let expected = inputs.clone();
        let report = Sim::new(4)
            .with_trace(Arc::clone(&sink) as Arc<dyn ca_trace::TraceSink>)
            .run(move |ctx, id| pi_n(ctx, &inputs[id.index()], BaKind::TurpinCoan));
        let outs: Vec<Nat> = report.honest_outputs().into_iter().cloned().collect();
        assert_ca(&outs, &expected);

        let records = sink.records();
        assert_eq!(
            sink.total_seen() as usize,
            records.len(),
            "ring must not have wrapped, or the checks below are partial"
        );
        assert_eq!(ca_trace::check(&records), vec![]);
        for p in 0..4u64 {
            let input = records
                .iter()
                .find(|r| {
                    r.party == Some(p)
                        && r.scope == "pi_n"
                        && matches!(&r.event, ca_trace::Event::Input { .. })
                })
                .expect("every party traces its pi_n input");
            if let ca_trace::Event::Input { value } = &input.event {
                assert_eq!(*value, expected[p as usize].to_string());
            }
            let decide = records
                .iter()
                .find(|r| {
                    r.party == Some(p)
                        && r.scope == "pi_n"
                        && matches!(&r.event, ca_trace::Event::Decide { .. })
                })
                .expect("every party traces its pi_n decision");
            if let ca_trace::Event::Decide { value } = &decide.event {
                assert_eq!(*value, outs[p as usize].to_string());
            }
        }
        // Subprotocol decisions surface under nested scope paths.
        assert!(records.iter().any(
            |r| r.scope.ends_with("/pk") && matches!(&r.event, ca_trace::Event::Decide { .. })
        ));
    }

    #[test]
    fn lying_extremes_suite() {
        let n = 7;
        let t = 2;
        for attack in Attack::standard_suite(17) {
            let mut inputs: Vec<Nat> = (0..n as u64)
                .map(|i| Nat::from_u64(1_000_000 + i))
                .collect();
            if attack.is_lying() {
                for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
                    inputs[p.index()] = match attack.lie_for(idx).unwrap() {
                        LieKind::ExtremeHigh => Nat::pow2(5000), // force long-path lie
                        LieKind::ExtremeLow => Nat::zero(),
                        LieKind::Split => unreachable!(),
                    };
                }
            }
            let honest: Vec<Nat> = match attack.kind {
                ca_adversary::AttackKind::None | ca_adversary::AttackKind::Adaptive => {
                    inputs.clone()
                }
                _ => inputs[..n - t].to_vec(),
            };
            let outs = run_pi_n(n, inputs.clone(), attack);
            assert_ca(&outs, &honest);
        }
    }
}
