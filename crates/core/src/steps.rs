//! `AddLastBit` (§3, Lemma 2), `AddLastBlock` (§4, Lemma 5) and
//! `GetOutput` (§3, Lemma 3): turning the agreed prefix into an output.

use ca_ba::BaKind;
use ca_bits::BitString;
use ca_net::{Comm, CommExt};

use crate::high_cost_ca;

/// `AddLastBit(ℓ, v, PREFIX*)`: extends the agreed prefix by one bit that is
/// still some valid value's prefix — simply binary BA over everyone's next
/// bit (Validity picks an honest, hence valid, extension when all agree;
/// Intrusion-free Agreement suffices otherwise because *both* extensions
/// occur among honest values... more precisely the BA output bit was some
/// honest party's next bit, whose value `v` is valid and has `PREFIX*‖B*`
/// as prefix).
///
/// Costs: `BITS₁(Π_BA)`, `ROUNDS₁(Π_BA)`.
///
/// # Panics
///
/// Panics unless `prefix.len() < ell` and `prefix` prefixes `v`.
pub fn add_last_bit(
    ctx: &mut dyn Comm,
    ell: usize,
    v: &BitString,
    prefix: &BitString,
    ba: BaKind,
) -> BitString {
    assert!(prefix.len() < ell, "prefix already ℓ bits");
    assert!(prefix.is_prefix_of(v), "own value must extend the prefix");
    ctx.scoped("add_last_bit", |ctx| {
        let my_bit = v.get(prefix.len());
        let b_star = ba.run_bit(ctx, my_bit);
        let mut out = prefix.clone();
        out.push(b_star);
        out
    })
}

/// `AddLastBlock(ℓ, v, PREFIX*)`: the block-granular analogue — extends the
/// prefix by one whole block via the high-communication-cost CA
/// (`HighCostCA` on the parties' next blocks; any block in the honest
/// blocks' range keeps the prefix valid, Lemma 5).
///
/// Costs: `O(ℓ·n)` bits (one `HighCostCA` on `ℓ/n²`-bit inputs), `O(n)`
/// rounds.
///
/// # Panics
///
/// Panics unless `block_len` divides the remaining suffix geometry
/// (`prefix.len()` must be a multiple of `block_len < ell`).
pub fn add_last_block(
    ctx: &mut dyn Comm,
    ell: usize,
    block_len: usize,
    v: &BitString,
    prefix: &BitString,
    ba: BaKind,
) -> BitString {
    assert!(
        block_len > 0 && ell.is_multiple_of(block_len),
        "bad block geometry"
    );
    assert!(
        prefix.len().is_multiple_of(block_len),
        "prefix must be whole blocks"
    );
    assert!(prefix.len() < ell, "prefix already ℓ bits");
    assert!(prefix.is_prefix_of(v), "own value must extend the prefix");
    let _ = ba;
    ctx.scoped("add_last_block", |ctx| {
        let i_star = prefix.len() / block_len;
        let my_block = v.block(i_star, block_len);
        // Paper remark: honest parties ignore values outside the domain —
        // here, bitstrings that are not exactly one block long.
        let block = high_cost_ca(ctx, my_block, move |b: &BitString| b.len() == block_len);
        prefix.concat(&block)
    })
}

/// `GetOutput(ℓ, v⊥, PREFIX*)`: the final step. Precondition (established
/// by the search + extension steps): `PREFIX*` is a valid value's prefix
/// and `≥ t+1` honest parties hold `v⊥` **not** extending it. Each such
/// party announces with one bit whether its `v⊥` lies below `MINℓ(PREFIX*)`
/// or above `MAXℓ(PREFIX*)`; the majority bit of the announcements is
/// honest-backed, and one binary BA fixes the choice.
///
/// Costs: `O(n²) + BITS₁(Π_BA)` bits, `O(1) + ROUNDS₁(Π_BA)` rounds.
///
/// # Examples
///
/// ```
/// use ca_bits::{BitString, Nat};
/// use ca_core::{get_output, BaKind};
/// use ca_net::Sim;
///
/// // PREFIX* = "10"; two parties hold v⊥ below its range, two inside.
/// let prefix = BitString::parse_binary("10").unwrap();
/// let v_bots = [1u64, 2, 0b1001_0000, 0b1010_0000];
/// let report = Sim::new(4).run(|ctx, id| {
///     let vb = Nat::from_u64(v_bots[id.index()]).to_bits_len(8).unwrap();
///     get_output(ctx, 8, &vb, &prefix, BaKind::TurpinCoan)
/// });
/// // All output MIN₈("10") = 1000_0000.
/// assert!(report.honest_outputs().iter().all(|o| o.val() == Nat::from_u64(0b1000_0000)));
/// ```
pub fn get_output(
    ctx: &mut dyn Comm,
    ell: usize,
    v_bot: &BitString,
    prefix: &BitString,
    ba: BaKind,
) -> BitString {
    ctx.scoped("get_output", |ctx| {
        let lo = prefix.min_extend(ell);
        if !prefix.is_prefix_of(v_bot) {
            // B = 0 ⇔ v⊥ < MINℓ(PREFIX*).
            let b = v_bot.cmp_val(&lo) != std::cmp::Ordering::Less;
            ctx.send_all(&b);
        }
        let inbox = ctx.next_round();
        let bits: Vec<bool> = inbox
            .decode_each::<bool>()
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        let m = bits.len();
        let ones = bits.iter().filter(|b| **b).count();
        // CHOICE := a bit received from ≥ ⌈m/2⌉ parties (Lemma 3 shows any
        // such bit was sent by an honest party; on an exact tie both
        // qualify and either is safe — pick 0 deterministically).
        let choice = 2 * ones > m;
        ctx.trace_note("get_output", || format!("announced={m} choice={choice}"));
        let agreed = ba.run_bit(ctx, choice);
        if agreed {
            prefix.max_extend(ell)
        } else {
            lo
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_bits::Nat;
    use ca_net::Sim;

    #[test]
    fn add_last_bit_agrees_and_extends() {
        let ell = 8;
        // Shared prefix "1010"; next bits differ.
        let vals = [0b1010_0111u64, 0b1010_1000, 0b1010_0001, 0b1010_1111];
        let prefix = BitString::parse_binary("1010").unwrap();
        let report = Sim::new(4).run(|ctx, id| {
            let v = Nat::from_u64(vals[id.index()]).to_bits_len(ell).unwrap();
            add_last_bit(ctx, ell, &v, &prefix, BaKind::TurpinCoan)
        });
        let outs = report.honest_outputs();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(outs[0].len(), 5);
        assert!(prefix.is_prefix_of(outs[0]));
        // The added bit is some honest party's bit-4 (both 0 and 1 occur).
    }

    #[test]
    fn get_output_picks_a_valid_side() {
        let ell = 8;
        let prefix = BitString::parse_binary("10").unwrap();
        // t+1 = 2 parties hold v⊥ below the prefix range; rest inside.
        let v_bots = [
            0b0000_0001u64, // below MIN(10……) = 128
            0b0000_0010,
            0b1001_0000, // wait—this has prefix "10"; inside
            0b1010_0000,
        ];
        let report = Sim::new(4).run(|ctx, id| {
            let vb = Nat::from_u64(v_bots[id.index()]).to_bits_len(ell).unwrap();
            get_output(ctx, ell, &vb, &prefix, BaKind::TurpinCoan)
        });
        let outs = report.honest_outputs();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        // Announcing parties all said "below" ⇒ MIN₈("10") = 1000_0000.
        assert_eq!(outs[0].val(), Nat::from_u64(0b1000_0000));
    }

    #[test]
    fn get_output_above_side() {
        let ell = 8;
        let prefix = BitString::parse_binary("01").unwrap();
        let v_bots = [0b1100_0000u64, 0b1110_0000, 0b0101_0000, 0b0110_0000];
        let report = Sim::new(4).run(|ctx, id| {
            let vb = Nat::from_u64(v_bots[id.index()]).to_bits_len(ell).unwrap();
            get_output(ctx, ell, &vb, &prefix, BaKind::TurpinCoan)
        });
        // MAX₈("01") = 0111_1111.
        for out in report.honest_outputs() {
            assert_eq!(out.val(), Nat::from_u64(0b0111_1111));
        }
    }
}
