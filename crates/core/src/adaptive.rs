//! Fault-adaptive `Π_ℕ` (ROADMAP item 1, following Constantinescu–Dufay–
//! Paramonov–Wattenhofer, "From Few to Many Faults: Optimal Adaptive
//! Byzantine Agreement"): pay for the faults that actually happen, not
//! the worst case.
//!
//! [`pi_n_adaptive`] prepends a constant-round optimistic attempt to the
//! full `Π_ℕ` ([`crate::pi_n`]) and certifies the shortcut with one binary
//! BA, so all honest parties take the *same* path:
//!
//! 1. **Offer** — everyone sends its input (or a too-long marker when it
//!    exceeds [`FastPathConfig::max_fast_bits`]). A party that received
//!    `n` well-formed values forms the *candidate*: the median of the
//!    multiset. With `t < n/3 < n/2` corrupted senders the median of `n`
//!    values, at least `n − t` of which are honest inputs, always lies in
//!    the honest input hull — so a certified candidate is a valid output.
//! 2. **Echo** — everyone sends `(happy, digest)`: `happy` iff it holds a
//!    candidate *and* its transport's [`ca_net::FaultEstimate`] is within
//!    [`FastPathConfig::fault_budget`]; `digest` is the candidate's
//!    SHA-256. A party *confirms* iff it is happy and received `n` echoes,
//!    all happy, all carrying its own digest.
//! 3. **Certify** — one binary BA on the confirm bit. Output 1 means (BA
//!    validity) some honest party confirmed, so every honest party's echo
//!    was happy with that party's digest — i.e. *every* honest party holds
//!    the same candidate, and all decide it. Output 0 means everyone falls
//!    back to the full worst-case `Π_ℕ`, untouched.
//!
//! Equivocation in step 1 skews medians apart; step 2's digest comparison
//! then denies every honest confirm and the BA certifies the fallback.
//! Either way no honest party ever decides an uncertified candidate, and
//! both branches are taken in lock-step by all honest parties.
//!
//! Cost at `f = 0`: one `ℓ`-bit all-to-all, one `κ`-bit all-to-all, one
//! binary BA — `O(ℓn + κn + ROUNDS(Π_BA^bit))`, a large constant factor
//! below `Π_ℕ`'s `O(log n)` BA invocations and prefix search (the A1
//! experiment in `ca-bench` measures the ratio).

use ca_ba::BaKind;
use ca_bits::Nat;
use ca_codec::Encode;
use ca_crypto::{sha256, Hash256};
use ca_net::{Comm, CommExt};

use crate::pi_n::pi_n_body;

/// Knobs for the optimistic fast path of [`pi_n_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastPathConfig {
    /// Master switch; `false` degenerates to plain [`crate::pi_n`]
    /// (useful to A/B the two paths through one call site).
    pub enabled: bool,
    /// Maximum transport-observed faults tolerated before a party stops
    /// being happy with the fast path. `0` (the default) is the
    /// strictest: any observed silence forces the certified fallback.
    pub fault_budget: usize,
    /// Inputs longer than this many bits are not offered whole — the
    /// fast path's `O(ℓn)` offer round must not dwarf the worst-case
    /// protocol's `O(ℓn)` total on huge values.
    pub max_fast_bits: usize,
}

impl Default for FastPathConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            fault_budget: 0,
            max_fast_bits: 1 << 16,
        }
    }
}

/// An offer: the sender's input, or `None` when it exceeds
/// [`FastPathConfig::max_fast_bits`] (encoded via `Option`'s codec).
type Offer = Option<Nat>;

/// The candidate certified by the fast path: the median of a *complete*
/// round of `n` well-formed offers, `None` otherwise.
fn candidate_from(offers: &mut Vec<(ca_net::PartyId, Offer)>, n: usize) -> Option<Nat> {
    if offers.len() != n {
        return None;
    }
    let mut values: Vec<Nat> = Vec::with_capacity(n);
    for (_, offer) in offers.drain(..) {
        values.push(offer?);
    }
    values.sort();
    // Median of n values, ≥ n − t honest, t < n/2: at least one honest
    // value ≤ it and one ≥ it, so it lies in the honest hull.
    values.into_iter().nth(n / 2)
}

/// Runs `Π_ℕ` with the fault-adaptive fast path described in the
/// [module docs](self).
///
/// Guarantees are exactly [`crate::pi_n`]'s (Termination, Agreement,
/// Convex Validity for `t < n/3`); the fast path only changes *cost*,
/// decided by one certifying binary BA common to all honest parties.
///
/// # Examples
///
/// ```
/// use ca_bits::Nat;
/// use ca_core::{pi_n_adaptive, BaKind, FastPathConfig};
/// use ca_net::Sim;
///
/// // Fault-free and unanimous: the fast path certifies in O(1) rounds.
/// let report = Sim::new(4).run(|ctx, _| {
///     pi_n_adaptive(ctx, &Nat::from_u64(42), BaKind::TurpinCoan, FastPathConfig::default())
/// });
/// assert!(report.honest_outputs().iter().all(|v| **v == Nat::from_u64(42)));
/// ```
pub fn pi_n_adaptive(ctx: &mut dyn Comm, v_in: &Nat, ba: BaKind, cfg: FastPathConfig) -> Nat {
    if !cfg.enabled {
        return crate::pi_n(ctx, v_in, ba);
    }
    ctx.scoped("pi_n_a", |ctx| {
        ctx.trace_input(|| v_in.to_string());
        let n = ctx.n();

        // Round 1 (offer): ship the value, or mark it too long.
        let offer: Offer = (v_in.bit_len() <= cfg.max_fast_bits).then(|| v_in.clone());
        let inbox = ctx.exchange(&offer);
        let candidate = candidate_from(&mut inbox.decode_each::<Offer>(), n);

        // Round 2 (echo): commit to the candidate by digest.
        let digest: Hash256 = match &candidate {
            Some(v) => sha256(&v.encode_to_vec()),
            None => sha256(b""),
        };
        let happy = candidate.is_some() && ctx.fault_estimate().within(cfg.fault_budget);
        let inbox = ctx.exchange(&(happy, digest));
        let echoes = inbox.decode_each::<(bool, Hash256)>();
        let confirm =
            happy && echoes.len() == n && echoes.iter().all(|(_, (h, d))| *h && *d == digest);

        // Certify the path choice so every honest party takes the same one.
        let fast = ctx.scoped("fast_ba", |ctx| ba.run_bit(ctx, confirm));
        let out = match candidate {
            Some(v) if fast => {
                ctx.trace_fast_path(|| v.to_string());
                v
            }
            _ => {
                // `fast` with no local candidate is impossible for honest
                // parties (a confirming party proves every honest digest —
                // ours included — matches a real candidate); treat it like
                // any other fallback rather than trusting the impossible.
                let reason = if fast {
                    "no-candidate"
                } else if !happy {
                    if candidate.is_none() {
                        "incomplete"
                    } else {
                        "fault-estimate"
                    }
                } else {
                    "ba-rejected"
                };
                ctx.trace_fallback(reason);
                pi_n_body(ctx, v_in, ba)
            }
        };
        ctx.trace_decide(|| out.to_string());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::Attack;
    use ca_net::{Corruption, PartyId, Sim};
    use ca_trace::Event;
    use std::sync::Arc;

    fn assert_ca(outs: &[Nat], honest: &[Nat]) {
        assert!(!outs.is_empty());
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        let lo = honest.iter().min().unwrap();
        let hi = honest.iter().max().unwrap();
        assert!(
            outs[0] >= *lo && outs[0] <= *hi,
            "convex validity: {:?} ∉ [{:?}, {:?}]",
            outs[0],
            lo,
            hi
        );
    }

    fn traced_run(
        n: usize,
        sim: Sim,
        inputs: Vec<Nat>,
        cfg: FastPathConfig,
    ) -> (Vec<Nat>, Vec<ca_trace::Record>) {
        let _ = n;
        let sink = Arc::new(ca_trace::RingBufferSink::new(4_000_000));
        let report = sim
            .with_trace(Arc::clone(&sink) as Arc<dyn ca_trace::TraceSink>)
            .run(move |ctx, id| pi_n_adaptive(ctx, &inputs[id.index()], BaKind::TurpinCoan, cfg));
        let outs = report.honest_outputs().into_iter().cloned().collect();
        let records = sink.records();
        assert_eq!(sink.total_seen() as usize, records.len(), "ring wrapped");
        (outs, records)
    }

    #[test]
    fn fault_free_takes_fast_path_everywhere() {
        let inputs: Vec<Nat> = [70u64, 10, 40, 30]
            .iter()
            .map(|&v| Nat::from_u64(v))
            .collect();
        let (outs, records) = traced_run(4, Sim::new(4), inputs.clone(), FastPathConfig::default());
        assert_ca(&outs, &inputs);
        // Median of {10, 30, 40, 70} at index 2.
        assert_eq!(outs[0], Nat::from_u64(40));
        assert_eq!(ca_trace::check(&records), vec![]);
        let fast: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.event, Event::FastPathTaken { .. }))
            .collect();
        assert_eq!(fast.len(), 4, "every party should go fast: {records:#?}");
        assert!(!records
            .iter()
            .any(|r| matches!(r.event, Event::FallbackTriggered { .. })));
    }

    #[test]
    fn disabled_config_is_plain_pi_n() {
        let inputs: Vec<Nat> = [5u64, 900, 42, 77]
            .iter()
            .map(|&v| Nat::from_u64(v))
            .collect();
        let cfg = FastPathConfig {
            enabled: false,
            ..FastPathConfig::default()
        };
        let run = inputs.clone();
        let adaptive = Sim::new(4)
            .run(move |ctx, id| pi_n_adaptive(ctx, &run[id.index()], BaKind::TurpinCoan, cfg));
        let run = inputs.clone();
        let plain =
            Sim::new(4).run(move |ctx, id| crate::pi_n(ctx, &run[id.index()], BaKind::TurpinCoan));
        assert_eq!(adaptive.honest_outputs(), plain.honest_outputs());
        assert_eq!(adaptive.metrics.rounds, plain.metrics.rounds);
        assert_eq!(adaptive.metrics.honest_bits, plain.metrics.honest_bits);
    }

    #[test]
    fn silent_party_falls_back_and_stays_correct() {
        let n = 4;
        let inputs: Vec<Nat> = [70u64, 10, 40, 30]
            .iter()
            .map(|&v| Nat::from_u64(v))
            .collect();
        let honest: Vec<Nat> = inputs[..3].to_vec();
        let (outs, records) = traced_run(
            n,
            Sim::new(n).corrupt(PartyId(3), Corruption::Scripted),
            inputs,
            FastPathConfig::default(),
        );
        assert_ca(&outs, &honest);
        assert_eq!(ca_trace::check(&records), vec![]);
        // A silent party means no one assembles n offers: all honest
        // parties fall back, none goes fast.
        assert!(!records
            .iter()
            .any(|r| matches!(r.event, Event::FastPathTaken { .. })));
        let fallbacks: Vec<_> = records
            .iter()
            .filter_map(|r| match &r.event {
                Event::FallbackTriggered { reason } => Some(reason.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(fallbacks, vec!["incomplete"; 3]);
    }

    #[test]
    fn fallback_decides_like_pi_n() {
        // With a silent party the adaptive run's decision must match what
        // the worst-case protocol decides on the same inputs and faults.
        let n = 4;
        let inputs: Vec<Nat> = [70u64, 10, 40, 30]
            .iter()
            .map(|&v| Nat::from_u64(v))
            .collect();
        let run = inputs.clone();
        let adaptive = Sim::new(n)
            .corrupt(PartyId(3), Corruption::Scripted)
            .run(move |ctx, id| {
                pi_n_adaptive(
                    ctx,
                    &run[id.index()],
                    BaKind::TurpinCoan,
                    FastPathConfig::default(),
                )
            });
        let run = inputs.clone();
        let plain = Sim::new(n)
            .corrupt(PartyId(3), Corruption::Scripted)
            .run(move |ctx, id| crate::pi_n(ctx, &run[id.index()], BaKind::TurpinCoan));
        assert_eq!(adaptive.honest_outputs(), plain.honest_outputs());
    }

    #[test]
    fn oversized_input_is_not_offered_whole() {
        let n = 4;
        let big = Nat::pow2(300);
        let inputs = vec![big.clone(); n];
        let cfg = FastPathConfig {
            max_fast_bits: 256,
            ..FastPathConfig::default()
        };
        let (outs, records) = traced_run(n, Sim::new(n), inputs.clone(), cfg);
        assert_ca(&outs, &inputs);
        assert_eq!(ca_trace::check(&records), vec![]);
        // Too-long offers are `None`: no candidate, certified fallback.
        assert!(!records
            .iter()
            .any(|r| matches!(r.event, Event::FastPathTaken { .. })));
    }

    #[test]
    fn fast_path_is_much_cheaper_than_worst_case() {
        let n = 7;
        let inputs: Vec<Nat> = (0..n as u64).map(|i| Nat::from_u64(1_000 + i)).collect();
        let run = inputs.clone();
        let fast = Sim::new(n).run(move |ctx, id| {
            pi_n_adaptive(
                ctx,
                &run[id.index()],
                BaKind::TurpinCoan,
                FastPathConfig::default(),
            )
        });
        let run = inputs.clone();
        let worst =
            Sim::new(n).run(move |ctx, id| crate::pi_n(ctx, &run[id.index()], BaKind::TurpinCoan));
        assert!(
            fast.metrics.rounds < worst.metrics.rounds,
            "fast {} rounds vs worst {}",
            fast.metrics.rounds,
            worst.metrics.rounds
        );
        assert!(
            fast.metrics.honest_bits * 2 <= worst.metrics.honest_bits,
            "fast {} bits vs worst {}",
            fast.metrics.honest_bits,
            worst.metrics.honest_bits
        );
    }

    #[test]
    fn adversary_suite_stays_correct() {
        let n = 7;
        let t = ca_net::max_faults(n);
        for attack in Attack::standard_suite(31) {
            if attack.is_lying() {
                // Lying attacks change inputs, covered by pi_n's own suite;
                // here we exercise the fast path's message-level handling.
                continue;
            }
            let inputs: Vec<Nat> = (0..n as u64).map(|i| Nat::from_u64(500 + i)).collect();
            let honest: Vec<Nat> = match attack.kind {
                ca_adversary::AttackKind::None | ca_adversary::AttackKind::Adaptive => {
                    inputs.clone()
                }
                _ => inputs[..n - t].to_vec(),
            };
            let sim = attack.install(Sim::new(n), n, t);
            let run = inputs.clone();
            let outs: Vec<Nat> = sim
                .run(move |ctx, id| {
                    pi_n_adaptive(
                        ctx,
                        &run[id.index()],
                        BaKind::TurpinCoan,
                        FastPathConfig::default(),
                    )
                })
                .honest_outputs()
                .into_iter()
                .cloned()
                .collect();
            assert_ca(&outs, &honest);
        }
    }
}
