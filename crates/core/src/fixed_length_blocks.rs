//! `FixedLengthCABlocks` (§4, Theorem 4): CA for very long `ℓ`-bit naturals
//! (`ℓ` a known multiple of `n²`).
//!
//! Identical skeleton to [`crate::fixed_length_ca`], but the prefix search
//! moves in blocks of `ℓ/n²` bits (so `O(log n)` instead of `O(log ℓ)`
//! iterations) and the final one-unit extension is a whole block, settled
//! by one `HighCostCA` run on `ℓ/n²`-bit inputs (cheap: `O(ℓ/n² · n³) =
//! O(ℓn)` bits).

use ca_ba::BaKind;
use ca_bits::BitString;
use ca_net::{Comm, CommExt};

use crate::{add_last_block, find_prefix_blocks, get_output};

/// Runs `FixedLengthCABlocks(ℓ, v)`.
///
/// `v_in` must be the `ℓ`-bit representation of this party's value, with
/// `ℓ` a positive multiple of `n²` shared by all honest parties.
///
/// Guarantees (Theorem 4, `t < n/3`): Termination, Agreement, Convex
/// Validity. Costs: `BITSℓ = O(ℓn + κ·n²·log²n) + O(log n)·BITSκ(Π_BA)`,
/// `ROUNDSℓ = O(n) + O(log n)·ROUNDSκ(Π_BA)`.
///
/// # Panics
///
/// Panics if `ell` is not a positive multiple of `n²` or
/// `v_in.len() != ell`.
pub fn fixed_length_ca_blocks(
    ctx: &mut dyn Comm,
    ell: usize,
    v_in: &BitString,
    ba: BaKind,
) -> BitString {
    let n2 = ctx.n() * ctx.n();
    assert!(
        ell > 0 && ell.is_multiple_of(n2),
        "ℓ = {ell} must be a positive multiple of n² = {n2}"
    );
    let block_len = ell / n2;
    ctx.scoped("flcab", |ctx| {
        let search = find_prefix_blocks(ctx, ell, v_in, ba);
        if search.prefix.len() == ell {
            return search.v;
        }
        let prefix = add_last_block(ctx, ell, block_len, &search.v, &search.prefix, ba);
        get_output(ctx, ell, &search.v_bot, &prefix, ba)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::Attack;
    use ca_bits::Nat;
    use ca_net::Sim;

    fn assert_ca(outs: &[Nat], honest: &[Nat]) {
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        let lo = honest.iter().min().unwrap();
        let hi = honest.iter().max().unwrap();
        assert!(outs[0] >= *lo && outs[0] <= *hi, "convex validity");
    }

    #[test]
    fn long_values_agree_convexly() {
        let n = 4;
        let ell = n * n * 64; // 1024 bits
                              // Large values sharing a long prefix then diverging.
        let base = Nat::pow2(900);
        let inputs: Vec<Nat> = (0..n as u64)
            .map(|i| base.add(&Nat::from_u64(i * 1_000_000)))
            .collect();
        let report = Sim::new(n).run(|ctx, id| {
            let bits = inputs[id.index()].to_bits_len(ell).unwrap();
            fixed_length_ca_blocks(ctx, ell, &bits, BaKind::TurpinCoan)
        });
        let outs: Vec<Nat> = report
            .honest_outputs()
            .into_iter()
            .map(|b| b.val())
            .collect();
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn identical_long_values() {
        let n = 4;
        let ell = n * n * 16;
        let v = Nat::all_ones(200);
        let report = Sim::new(n).run(|ctx, id| {
            let _ = id;
            let bits = v.to_bits_len(ell).unwrap();
            fixed_length_ca_blocks(ctx, ell, &bits, BaKind::TurpinCoan)
        });
        for out in report.honest_outputs() {
            assert_eq!(out.val(), v);
        }
    }

    #[test]
    fn attack_matrix_on_blocks() {
        let n = 4;
        let t = 1;
        let ell = n * n * 8;
        for attack in Attack::standard_suite(9) {
            let mut inputs: Vec<Nat> = (0..n as u64)
                .map(|i| Nat::pow2(100).add(&Nat::from_u64(i)))
                .collect();
            if attack.is_lying() {
                for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
                    let _ = idx;
                    inputs[p.index()] = Nat::all_ones(ell); // extreme high
                }
            }
            let honest: Vec<Nat> = match attack.kind {
                ca_adversary::AttackKind::None | ca_adversary::AttackKind::Adaptive => {
                    inputs.clone()
                }
                _ => inputs[..n - t].to_vec(),
            };
            let sim = attack.install(Sim::new(n), n, t);
            let report = sim.run(|ctx, id| {
                let bits = inputs[id.index()].to_bits_len(ell).unwrap();
                fixed_length_ca_blocks(ctx, ell, &bits, BaKind::TurpinCoan)
            });
            let outs: Vec<Nat> = report
                .honest_outputs()
                .into_iter()
                .map(|b| b.val())
                .collect();
            assert_ca(&outs, &honest);
        }
    }
}
