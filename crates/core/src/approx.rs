//! Synchronous Approximate Agreement (AA) — the classical relaxation of CA
//! introduced by Dolev, Lynch, Pinter, Stark and Weihl [16] and the
//! starting point of the paper's related-work line (§1.1).
//!
//! AA weakens Agreement to *ε-agreement* (honest outputs within `ε` of
//! each other) while keeping the same convex validity; in exchange it
//! needs no BA machinery at all — just iterated trusted-interval
//! averaging. It is included both for completeness of the library and as
//! a reference point: CA delivers *exact* agreement for `O(ℓn)` bits,
//! whereas AA pays `O(ℓn²)` bits *per halving round*.
//!
//! ## Algorithm
//!
//! Each round, every party broadcasts its value and computes the
//! `(t+1)`-th lowest and `(t+1)`-th highest value received — a trusted
//! interval that (a) lies inside the honest range and (b) contains the
//! `(t+1)`-th lowest honest value `p` (same argument as `HighCostCA`'s
//! Lemma 10). The new value is the interval midpoint; since every honest
//! interval contains the common point `p`, honest values land in
//! `[(m+p)/2, (p+M)/2]`, halving the honest diameter every round. After
//! `⌈log₂(D/ε)⌉` rounds (`D` a public bound on the initial honest
//! diameter) the diameter is `≤ ε`.

use ca_net::{Comm, CommExt};

/// Runs synchronous Approximate Agreement on `input`.
///
/// * `range` — public bounds `(lo, hi)`; honest inputs must lie inside
///   (inputs are clamped defensively).
/// * `epsilon` — target honest-output spread, `≥ 1`.
///
/// Guarantees (for `t < n/3`, honest inputs within `range`): Termination
/// after `⌈log₂((hi−lo)/ε)⌉` rounds; ε-Agreement; Convex Validity.
///
/// # Examples
///
/// ```
/// use ca_core::approx_agreement;
/// use ca_net::Sim;
///
/// let inputs = [10i64, 14, 11, 13];
/// let report = Sim::new(4)
///     .run(|ctx, id| approx_agreement(ctx, inputs[id.index()], (0, 100), 2));
/// let outs: Vec<i64> = report.honest_outputs().into_iter().copied().collect();
/// let spread = outs.iter().max().unwrap() - outs.iter().min().unwrap();
/// assert!(spread <= 2);                                      // ε-agreement
/// assert!(outs.iter().all(|v| (10..=14).contains(v)));       // validity
/// ```
///
/// # Panics
///
/// Panics if `epsilon == 0` or `range.0 > range.1`.
pub fn approx_agreement(ctx: &mut dyn Comm, input: i64, range: (i64, i64), epsilon: u64) -> i64 {
    assert!(epsilon > 0, "epsilon must be positive");
    let (lo, hi) = range;
    assert!(lo <= hi, "empty range");
    let t = ctx.t();

    ctx.scoped("approx", |ctx| {
        let mut v = input.clamp(lo, hi);
        let diameter = (hi as i128 - lo as i128).max(1) as u128;
        let ratio = (diameter / u128::from(epsilon)).max(1);
        // ⌈log₂(D/ε)⌉ halvings (+1 slack for integer-midpoint rounding).
        let rounds = ratio.next_power_of_two().trailing_zeros() as usize + 1;

        for _ in 0..rounds {
            let inbox = ctx.exchange(&zigzag(v));
            let mut received: Vec<i64> = inbox
                .decode_each::<u64>()
                .into_iter()
                .map(|(_, raw)| unzigzag(raw).clamp(lo, hi))
                .collect();
            received.sort_unstable();
            if received.len() > 2 * t {
                let a = received[t];
                let b = received[received.len() - 1 - t];
                v = ((a as i128 + b as i128) / 2) as i64;
            }
            // Fewer than 2t+1 values cannot happen with n−t honest
            // senders; keep v unchanged defensively.
        }
        v
    })
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Equivocate, Garbage, Replay};
    use ca_net::{Corruption, PartyId, Sim};

    fn spread(outs: &[i64]) -> u64 {
        (outs.iter().max().unwrap() - outs.iter().min().unwrap()) as u64
    }

    fn assert_aa(outs: &[i64], honest_inputs: &[i64], epsilon: u64) {
        assert!(spread(outs) <= epsilon, "ε-agreement violated: {outs:?}");
        let lo = *honest_inputs.iter().min().unwrap();
        let hi = *honest_inputs.iter().max().unwrap();
        for v in outs {
            assert!(
                *v >= lo && *v <= hi,
                "validity violated: {v} ∉ [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn honest_convergence() {
        let inputs = [0i64, 100, 37, 90, 55, 12, 76];
        let report =
            Sim::new(7).run(|ctx, id| approx_agreement(ctx, inputs[id.index()], (0, 1000), 1));
        let outs: Vec<i64> = report.honest_outputs().into_iter().copied().collect();
        assert_aa(&outs, &inputs, 1);
    }

    #[test]
    fn epsilon_controls_rounds() {
        let inputs = [0i64, 1024, 512, 256];
        let r1 = Sim::new(4)
            .run(|ctx, id| approx_agreement(ctx, inputs[id.index()], (0, 1024), 1))
            .metrics
            .rounds;
        let r256 = Sim::new(4)
            .run(|ctx, id| approx_agreement(ctx, inputs[id.index()], (0, 1024), 256))
            .metrics
            .rounds;
        assert!(
            r256 < r1,
            "coarser ε must need fewer rounds ({r256} vs {r1})"
        );
    }

    #[test]
    fn byzantine_extremes_cannot_stall_or_drag() {
        let n = 7;
        let honest = [500i64, 510, 505, 503, 508];
        for adv in 0..4 {
            let report = {
                let s = Sim::new(n)
                    .corrupt(PartyId(5), Corruption::Scripted)
                    .corrupt(PartyId(6), Corruption::Scripted);
                let s = match adv {
                    0 => s,
                    1 => s.with_adversary(Garbage::new(41)),
                    2 => s.with_adversary(Replay::new(42)),
                    _ => s.with_adversary(Equivocate::new(43)),
                };
                s.run(|ctx, id| {
                    let input = if id.index() < 5 {
                        honest[id.index()]
                    } else {
                        0
                    };
                    approx_agreement(ctx, input, (0, 1_000_000), 4)
                })
            };
            let outs: Vec<i64> = report.honest_outputs().into_iter().copied().collect();
            assert_aa(&outs, &honest, 4);
        }
    }

    #[test]
    fn lying_extremes() {
        let n = 10;
        let mut inputs = vec![100i64, 102, 98, 101, 99, 103, 97];
        inputs.extend([i64::MAX, i64::MIN, i64::MAX]); // clamped to range
        let report = Sim::new(n)
            .corrupt(PartyId(7), Corruption::LyingHonest)
            .corrupt(PartyId(8), Corruption::LyingHonest)
            .corrupt(PartyId(9), Corruption::LyingHonest)
            .run(|ctx, id| approx_agreement(ctx, inputs[id.index()], (-10_000, 10_000), 2));
        let outs: Vec<i64> = report.honest_outputs().into_iter().copied().collect();
        assert_aa(&outs, &inputs[..7], 2);
    }

    #[test]
    fn identical_inputs_stay_put() {
        let report = Sim::new(4).run(|ctx, _| approx_agreement(ctx, 42, (0, 100), 1));
        for out in report.honest_outputs() {
            assert_eq!(*out, 42);
        }
    }
}
