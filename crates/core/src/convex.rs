//! Executable forms of the paper's Definition 1, used by tests, the
//! experiment harness, and downstream users validating runs.

/// The convex hull (here: range) of a set of honestly-held inputs.
///
/// Returns `None` for an empty set.
pub fn convex_hull<T: Ord + Clone>(honest_inputs: &[T]) -> Option<(T, T)> {
    Some((
        honest_inputs.iter().min()?.clone(),
        honest_inputs.iter().max()?.clone(),
    ))
}

/// Checks the paper's **Agreement** property: all honest outputs equal.
pub fn check_agreement<T: PartialEq>(honest_outputs: &[T]) -> bool {
    honest_outputs.windows(2).all(|w| w[0] == w[1])
}

/// Checks the paper's **Convex Validity** property: every honest output
/// lies in the honest inputs' convex hull.
///
/// Returns `false` when there are no honest inputs (vacuously invalid —
/// such a run proves nothing).
pub fn check_convex_validity<T: Ord + Clone>(honest_outputs: &[T], honest_inputs: &[T]) -> bool {
    let Some((lo, hi)) = convex_hull(honest_inputs) else {
        return false;
    };
    honest_outputs.iter().all(|v| *v >= lo && *v <= hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_range() {
        assert_eq!(convex_hull(&[3, 1, 2]), Some((1, 3)));
        assert_eq!(convex_hull::<i32>(&[]), None);
    }

    #[test]
    fn agreement_check() {
        assert!(check_agreement(&[5, 5, 5]));
        assert!(!check_agreement(&[5, 6]));
        assert!(check_agreement::<i32>(&[]));
    }

    #[test]
    fn validity_check() {
        assert!(check_convex_validity(&[2, 2], &[1, 3]));
        assert!(!check_convex_validity(&[4], &[1, 3]));
        assert!(!check_convex_validity(&[1], &[]));
    }
}
