//! Communication-optimal Convex Agreement — the paper's contribution.
//!
//! Convex Agreement (CA, Definition 1): `n` parties with integer inputs, up
//! to `t < n/3` byzantine; all honest parties must terminate with the *same*
//! output, and that output must lie **within the range of the honest
//! inputs** (convex validity) — the property plain BA lacks (a byzantine
//! sensor must not be able to drag the agreed temperature to `+100 °C`).
//!
//! The headline result: CA on `ℓ`-bit integers at communication
//! `O(ℓn + κ·n²·log²n)` — optimal in `ℓ` — instead of the `O(ℓn²)` of the
//! classical broadcast-based approach. The key idea is to *never ship whole
//! values around*: binary-search for (a valid value's) longest common
//! prefix via an intrusion-tolerant BA on prefix windows ([`find_prefix`]),
//! then settle the remainder with `O(1)`-bit votes ([`get_output`]).
//!
//! # Protocol stack
//!
//! * [`pi_z`] — `Π_ℤ` (§6): the full protocol for signed integers
//!   (Corollaries 1–2). **This is the API most users want.**
//! * [`pi_n`] — `Π_ℕ` (§5): naturals of unknown length (Theorem 5).
//! * [`fixed_length_ca`] — `FixedLengthCA` (§3, Theorem 2): known `ℓ`,
//!   bit-granular prefix search; optimal for `ℓ ∈ poly(n)`.
//! * [`fixed_length_ca_blocks`] — `FixedLengthCABlocks` (§4, Theorem 4):
//!   block-granular variant for very long inputs (`ℓ ≥ n²`).
//! * [`high_cost_ca`] — `HighCostCA` (Appendix A.4, Theorem 3): the
//!   king-style `O(ℓn³)` protocol, used as a subroutine *and* as an
//!   experiment baseline.
//! * [`broadcast_ca`] — the classical `O(ℓn²)` broadcast-based CA (§1),
//!   implemented as the main experiment baseline.
//!
//! # Examples
//!
//! Seven sensors agree on a temperature despite two byzantine ones
//! (the paper's introduction scenario):
//!
//! ```
//! use ca_bits::Int;
//! use ca_core::CaProtocol;
//! use ca_net::{Corruption, PartyId, Sim};
//!
//! // Honest readings: −10.05 … −10.03 °C in centi-degrees; byzantine
//! // parties 5 and 6 run the protocol with +100.00 °C.
//! let inputs: Vec<Int> = vec![-1005, -1004, -1004, -1003, -1005, 10_000, 10_000]
//!     .into_iter().map(Int::from_i64).collect();
//! let proto = CaProtocol::new();
//! let report = Sim::new(7)
//!     .corrupt(PartyId(5), Corruption::LyingHonest)
//!     .corrupt(PartyId(6), Corruption::LyingHonest)
//!     .run(|ctx, id| proto.run_int(ctx, &inputs[id.index()]));
//!
//! let outputs = report.honest_outputs();
//! assert!(outputs.windows(2).all(|w| w[0] == w[1]));          // Agreement
//! assert!(*outputs[0] >= Int::from_i64(-1005));               // Convex
//! assert!(*outputs[0] <= Int::from_i64(-1003));               //   validity
//! ```

mod adaptive;
mod approx;
mod baseline;
mod convex;
mod find_prefix;
mod fixed_length;
mod fixed_length_blocks;
mod high_cost;
mod pi_n;
mod pi_z;
mod steps;

pub use adaptive::{pi_n_adaptive, FastPathConfig};
pub use approx::approx_agreement;
pub use baseline::{broadcast_ca, broadcast_ca_parallel};
pub use convex::{check_agreement, check_convex_validity, convex_hull};
pub use find_prefix::{find_prefix, find_prefix_blocks, PrefixSearch};
pub use fixed_length::fixed_length_ca;
pub use fixed_length_blocks::fixed_length_ca_blocks;
pub use high_cost::high_cost_ca;
pub use pi_n::pi_n;
pub use pi_z::pi_z;
pub use steps::{add_last_bit, add_last_block, get_output};

pub use ca_ba::BaKind;

use ca_bits::{Int, Nat};
use ca_net::Comm;

/// Facade bundling the protocol with its `Π_BA` instantiation.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaProtocol {
    ba: BaKind,
}

impl CaProtocol {
    /// The protocol with the default `Π_BA` ([`BaKind::TurpinCoan`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the `Π_BA` instantiation (ablation knob).
    pub fn with_ba(ba: BaKind) -> Self {
        Self { ba }
    }

    /// The configured `Π_BA` instantiation.
    pub fn ba(&self) -> BaKind {
        self.ba
    }

    /// Runs `Π_ℤ` (§6) on a signed integer input.
    pub fn run_int(&self, ctx: &mut dyn Comm, input: &Int) -> Int {
        pi_z(ctx, input, self.ba)
    }

    /// Runs `Π_ℕ` (§5) on a natural input.
    pub fn run_nat(&self, ctx: &mut dyn Comm, input: &Nat) -> Nat {
        pi_n(ctx, input, self.ba)
    }

    /// Runs `Π_ℤ` on a fixed-point decimal (the paper's §1 remark that the
    /// integer domain covers "rational numbers with some arbitrary
    /// pre-defined precision"). All honest parties must use the same,
    /// publicly known scale; convex validity over `Fixed` follows because
    /// scaling is monotone.
    pub fn run_fixed(&self, ctx: &mut dyn Comm, input: &ca_bits::Fixed) -> ca_bits::Fixed {
        let mantissa = pi_z(ctx, input.mantissa(), self.ba);
        input.with_mantissa(mantissa)
    }
}
