//! `FixedLengthCA` (§3, Theorem 2): CA for `ℓ`-bit naturals with `ℓ`
//! publicly known.

use ca_ba::BaKind;
use ca_bits::BitString;
use ca_net::{Comm, CommExt};

use crate::{add_last_bit, find_prefix, get_output};

/// Runs `FixedLengthCA(ℓ, v)`.
///
/// `v_in` must be the `ℓ`-bit representation of this party's value; the
/// caller (`Π_ℕ`) guarantees all honest parties use the same `ℓ` and valid
/// values.
///
/// Guarantees (Theorem 2, `t < n/3`): Termination, Agreement, Convex
/// Validity. Costs: `BITSℓ = O(ℓn + κ·n²·log n·log ℓ) + O(log ℓ)·BITSκ(Π_BA)`
/// and `ROUNDSℓ = O(log ℓ)·ROUNDSκ(Π_BA)`.
///
/// # Examples
///
/// ```
/// use ca_bits::Nat;
/// use ca_core::{fixed_length_ca, BaKind};
/// use ca_net::Sim;
///
/// let ell = 8;
/// let inputs = [200u64, 210, 205, 202];
/// let report = Sim::new(4).run(|ctx, id| {
///     let bits = Nat::from_u64(inputs[id.index()]).to_bits_len(ell).unwrap();
///     fixed_length_ca(ctx, ell, &bits, BaKind::TurpinCoan)
/// });
/// let outs = report.honest_outputs();
/// assert!(outs.windows(2).all(|w| w[0] == w[1]));
/// let v = outs[0].val();
/// assert!(v >= Nat::from_u64(200) && v <= Nat::from_u64(210));
/// ```
///
/// # Panics
///
/// Panics if `v_in.len() != ell` or `ell == 0`.
pub fn fixed_length_ca(ctx: &mut dyn Comm, ell: usize, v_in: &BitString, ba: BaKind) -> BitString {
    ctx.scoped("flca", |ctx| {
        // Step 1: agree on a valid prefix (and pick up the v, v⊥ witnesses).
        let search = find_prefix(ctx, ell, v_in, ba);
        if search.prefix.len() == ell {
            // All honest parties hold the same valid value.
            return search.v;
        }
        // Step 2: extend the prefix by one more bit, keeping it valid.
        let prefix = add_last_bit(ctx, ell, &search.v, &search.prefix, ba);
        // Step 3: the t+1 dissenting honest parties vote the output down to
        // MINℓ(PREFIX*) or up to MAXℓ(PREFIX*).
        get_output(ctx, ell, &search.v_bot, &prefix, ba)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Attack, AttackKind, LieKind};
    use ca_bits::Nat;
    use ca_net::Sim;

    fn run_flca(n: usize, ell: usize, vals: Vec<u64>, attack: Attack) -> Vec<Nat> {
        let t = ca_net::max_faults(n);
        let sim = attack.install(Sim::new(n), n, t);
        let report = sim.run(move |ctx, id| {
            let v = Nat::from_u64(vals[id.index()]).to_bits_len(ell).unwrap();
            fixed_length_ca(ctx, ell, &v, BaKind::TurpinCoan)
        });
        report
            .honest_outputs()
            .into_iter()
            .map(|b| b.val())
            .collect()
    }

    fn assert_ca(outs: &[Nat], honest: &[u64]) {
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        let lo = Nat::from_u64(*honest.iter().min().unwrap());
        let hi = Nat::from_u64(*honest.iter().max().unwrap());
        assert!(
            outs[0] >= lo && outs[0] <= hi,
            "convex validity: {:?} ∉ [{lo:?}, {hi:?}]",
            outs[0]
        );
    }

    #[test]
    fn identical_inputs() {
        let outs = run_flca(4, 12, vec![777; 4], Attack::none());
        assert!(outs.iter().all(|v| *v == Nat::from_u64(777)));
    }

    #[test]
    fn mixed_inputs_honest() {
        let vals = vec![100, 120, 130, 141, 108, 99, 150];
        let outs = run_flca(7, 8, vals.clone(), Attack::none());
        assert_ca(&outs, &vals);
    }

    #[test]
    fn full_attack_matrix_small() {
        let n = 7;
        let t = 2;
        for attack in Attack::standard_suite(42) {
            let mut vals = vec![1000u64, 1010, 1005, 1003, 1008, 1002, 1007];
            if attack.is_lying() {
                for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
                    vals[p.index()] = match attack.lie_for(idx).unwrap() {
                        LieKind::ExtremeHigh => 0xFFFF,
                        LieKind::ExtremeLow => 0,
                        LieKind::Split => unreachable!("lie_for resolves split"),
                    };
                }
            }
            let honest: Vec<u64> = match attack.kind {
                AttackKind::None | AttackKind::Adaptive => vals.clone(),
                _ => vals[..n - t].to_vec(),
            };
            let outs = run_flca(n, 16, vals, attack);
            assert_ca(&outs, &honest);
        }
    }

    #[test]
    fn one_bit_values() {
        let outs = run_flca(4, 1, vec![0, 1, 1, 0], Attack::none());
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        assert!(outs[0] <= Nat::one());
    }
}
