//! `Π_ℤ` (§6, Corollaries 1–2): the full protocol for signed integers.
//!
//! One binary BA fixes the output sign; parties whose sign disagrees reset
//! their magnitude to 0 (always valid: the agreed sign was held by some
//! honest party, so 0 lies between that party's value and the resetting
//! party's value); then `Π_ℕ` on magnitudes.

use ca_ba::BaKind;
use ca_bits::{Int, Nat, Sign};
use ca_net::{Comm, CommExt};

use crate::pi_n;

/// Runs `Π_ℤ` on a signed integer input.
///
/// Guarantees (Corollary 1, `t < n/3`): Termination, Agreement, Convex
/// Validity over `ℤ`. With the default `Π_BA` this realizes Corollary 2:
/// `BITSℓ(Π_ℤ) = O(ℓn + κ·n²·log²n)`, `ROUNDSℓ(Π_ℤ) = O(n log n)`.
pub fn pi_z(ctx: &mut dyn Comm, input: &Int, ba: BaKind) -> Int {
    ctx.scoped("pi_z", |ctx| {
        ctx.trace_input(|| input.to_string());
        let sign_out = ctx.scoped("sign_ba", |ctx| ba.run_bit(ctx, input.sign().as_bit()));
        let sign_out = Sign::from_bit(sign_out);
        let magnitude = if sign_out == input.sign() {
            input.magnitude().clone()
        } else {
            Nat::zero()
        };
        let mag_out = pi_n(ctx, &magnitude, ba);
        let out = Int::from_parts(sign_out, mag_out);
        ctx.trace_decide(|| out.to_string());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Attack, LieKind};
    use ca_net::Sim;

    fn assert_ca(outs: &[Int], honest: &[Int]) {
        assert!(!outs.is_empty());
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        let lo = honest.iter().min().unwrap();
        let hi = honest.iter().max().unwrap();
        assert!(
            outs[0] >= *lo && outs[0] <= *hi,
            "convex validity: {} ∉ [{lo}, {hi}]",
            outs[0]
        );
    }

    fn run_pi_z(n: usize, inputs: Vec<Int>, attack: Attack) -> Vec<Int> {
        let t = ca_net::max_faults(n);
        let sim = attack.install(Sim::new(n), n, t);
        sim.run(move |ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan))
            .honest_outputs()
            .into_iter()
            .cloned()
            .collect()
    }

    #[test]
    fn negative_identical() {
        let outs = run_pi_z(4, vec![Int::from_i64(-42); 4], Attack::none());
        assert!(outs.iter().all(|v| *v == Int::from_i64(-42)));
    }

    #[test]
    fn mixed_signs_stay_convex() {
        let inputs: Vec<Int> = [-5i64, 3, -1, 2]
            .iter()
            .map(|&v| Int::from_i64(v))
            .collect();
        let outs = run_pi_z(4, inputs.clone(), Attack::none());
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn all_negative() {
        let inputs: Vec<Int> = [-100i64, -90, -95, -99, -91, -97, -93]
            .iter()
            .map(|&v| Int::from_i64(v))
            .collect();
        let outs = run_pi_z(7, inputs.clone(), Attack::none());
        assert_ca(&outs, &inputs);
    }

    #[test]
    fn sensor_scenario_from_the_introduction() {
        // Honest sensors read −10.05…−10.03 °C; byzantine ones claim +100 °C.
        let n = 7;
        let t = 2;
        let inputs: Vec<Int> = vec![-1005i64, -1004, -1004, -1003, -1005, 10_000, 10_000]
            .into_iter()
            .map(Int::from_i64)
            .collect();
        let attack = Attack::new(ca_adversary::AttackKind::Lying(LieKind::ExtremeHigh));
        let sim = attack.install(Sim::new(n), n, t);
        let report = sim.run(|ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan));
        let outs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
        assert_ca(&outs, &inputs[..5]);
    }

    #[test]
    fn attack_matrix() {
        let n = 7;
        let t = 2;
        for attack in Attack::standard_suite(23) {
            let mut inputs: Vec<Int> = (0..n as i64).map(|i| Int::from_i64(-1000 - i)).collect();
            if attack.is_lying() {
                for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
                    inputs[p.index()] = match attack.lie_for(idx).unwrap() {
                        LieKind::ExtremeHigh => Int::from_i64(i64::MAX),
                        LieKind::ExtremeLow => Int::from_i64(i64::MIN),
                        LieKind::Split => unreachable!(),
                    };
                }
            }
            let honest: Vec<Int> = match attack.kind {
                ca_adversary::AttackKind::None | ca_adversary::AttackKind::Adaptive => {
                    inputs.clone()
                }
                _ => inputs[..n - t].to_vec(),
            };
            let outs = run_pi_z(n, inputs.clone(), attack);
            assert_ca(&outs, &honest);
        }
    }
}
