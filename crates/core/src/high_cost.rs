//! `HighCostCA` (Appendix A.4, Theorem 3): king-style Convex Agreement at
//! `O(ℓ·n³)` bits and `O(n)` rounds — a variant of the Median Validity
//! protocol of Stolz–Wattenhofer [47] (itself a variant of the king BA [7]).
//!
//! Used in two roles:
//!
//! * as a subroutine of the optimal protocol (`AddLastBlock` and the
//!   block-size estimation of `Π_ℕ`), always on *short* inputs where its
//!   cubic cost is immaterial;
//! * as an experiment baseline for the `O(ℓn³)` row of T1/F1/F2.
//!
//! ## Structure
//!
//! **Setup stage.** Everyone distributes its input; receiving `n − t + k`
//! values means at most `k` are byzantine, so the `(k+1)`-th lowest and
//! `(k+1)`-th highest received values bound a *trusted interval* inside the
//! honest range (Lemma 10). Parties exchange intervals and pick a
//! `SUGGESTION` covered by `≥ n − t` of them (so by `≥ t + 1` honest ones).
//!
//! **Search stage.** `t + 1` king phases: values with an `n − t` receive
//! quorum are *proposed*; proposals backed `t + 1` times are adopted; the
//! phase king pushes its pick to parties lacking an `n − t` propose quorum,
//! who accept it only if it coincides with their value or falls in their
//! trusted interval. The first honest king forces agreement (Lemma 14),
//! and agreement persists (Lemma 13); every adopted value stays inside
//! some honest trusted interval (Lemma 11), giving convex validity.
//!
//! Following the paper's remark, every received value is filtered through a
//! caller-supplied domain predicate (the paper's "ignore any values outside
//! `ℕ`"; for `AddLastBlock`, "not exactly one block long").

use std::collections::BTreeMap;

use ca_ba::Value;
use ca_net::{Comm, CommExt, PartyId};

/// Runs `HighCostCA` on `input`; `valid` is the domain predicate applied to
/// every received value (the paper's "ignore values outside ℕ").
///
/// Guarantees (for `t < n/3`, honest inputs satisfying `valid`):
/// Termination, Agreement, Convex Validity w.r.t. the `Ord` on `V`.
///
/// # Examples
///
/// ```
/// use ca_core::high_cost_ca;
/// use ca_net::Sim;
///
/// let inputs = [30u64, 10, 20, 25];
/// let report = Sim::new(4).run(|ctx, id| high_cost_ca(ctx, inputs[id.index()], |_| true));
/// let outs = report.honest_outputs();
/// assert!(outs.windows(2).all(|w| w[0] == w[1]));           // Agreement
/// assert!((10..=30).contains(outs[0]));                     // Convex Validity
/// ```
pub fn high_cost_ca<V, F>(ctx: &mut dyn Comm, input: V, valid: F) -> V
where
    V: Value,
    F: Fn(&V) -> bool,
{
    ctx.scoped("high_cost", |ctx| {
        ctx.trace_input(|| ca_net::compact_debug(&input));
        let n = ctx.n();
        let t = ctx.t();
        let quorum = n - t;

        // --- Setup stage ---
        let inbox = ctx.exchange(&input);
        let mut values: Vec<V> = inbox
            .decode_each::<V>()
            .into_iter()
            .map(|(_, v)| v)
            .filter(|v| valid(v))
            .collect();
        values.sort();
        // Received n−t+k values ⇒ at most k byzantine among them.
        let k = values.len().saturating_sub(quorum);
        let (interval_min, interval_max) = if values.is_empty() {
            // Unreachable with n−t honest senders; deterministic fallback.
            (input.clone(), input.clone())
        } else {
            (values[k].clone(), values[values.len() - 1 - k].clone())
        };

        let inbox = ctx.exchange(&(interval_min.clone(), interval_max.clone()));
        let intervals: Vec<(V, V)> = inbox
            .decode_each::<(V, V)>()
            .into_iter()
            .map(|(_, iv)| iv)
            .filter(|(lo, hi)| valid(lo) && valid(hi))
            .collect();
        // SUGGESTION: a value inside ≥ n−t received intervals. A maximal
        // coverage point can always be chosen among the interval minima;
        // take the smallest qualifying one for determinism.
        let mut candidates: Vec<&V> = intervals.iter().map(|(lo, _)| lo).collect();
        candidates.sort();
        candidates.dedup();
        let suggestion = candidates
            .into_iter()
            .find(|c| {
                intervals
                    .iter()
                    .filter(|(lo, hi)| lo <= *c && *c <= hi)
                    .count()
                    >= quorum
            })
            .cloned()
            // Unreachable when ≥ n−t honest intervals were received
            // (Corollary 4); deterministic fallback.
            .unwrap_or_else(|| interval_min.clone());

        let mut current = suggestion.clone();

        // --- Search stage: t + 1 king phases ---
        for phase in 0..=t {
            let king = PartyId(phase % n);

            // Exchange current values.
            let inbox = ctx.exchange(&current);
            let mut counts: BTreeMap<V, usize> = BTreeMap::new();
            for (_, v) in inbox.decode_each::<V>() {
                if valid(&v) {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            let proposal: Option<V> = counts
                .iter()
                .find(|(_, c)| **c >= quorum)
                .map(|(v, _)| v.clone());

            // Propose round.
            if let Some(p) = &proposal {
                ctx.send_all(p);
            }
            let inbox = ctx.next_round();
            let mut prop_counts: BTreeMap<V, usize> = BTreeMap::new();
            for (_, v) in inbox.decode_each::<V>() {
                if valid(&v) {
                    *prop_counts.entry(v).or_insert(0) += 1;
                }
            }
            let backed: Option<V> = prop_counts
                .iter()
                .find(|(_, c)| **c > t)
                .map(|(v, _)| v.clone());
            let strongly_backed = prop_counts.values().any(|c| *c >= quorum);
            if let Some(v) = &backed {
                current = v.clone();
            }

            // King round.
            if ctx.me() == king {
                let king_value = backed.clone().unwrap_or_else(|| suggestion.clone());
                ctx.send_all(&king_value);
            }
            let inbox = ctx.next_round();
            let king_value: Option<V> = inbox.decode_from::<V>(king).filter(|v| valid(v));

            // Vote round: endorse the king's value only if it matches our
            // own or falls inside our trusted interval.
            if let Some(kv) = &king_value {
                if *kv == current || (interval_min <= *kv && *kv <= interval_max) {
                    ctx.send_all(kv);
                }
            }
            let inbox = ctx.next_round();
            if !strongly_backed {
                let mut vote_counts: BTreeMap<V, usize> = BTreeMap::new();
                for (_, v) in inbox.decode_each::<V>() {
                    if valid(&v) {
                        *vote_counts.entry(v).or_insert(0) += 1;
                    }
                }
                if let Some((v, _)) = vote_counts.iter().find(|(_, c)| **c > t) {
                    current = v.clone();
                }
            }
        }

        ctx.trace_decide(|| ca_net::compact_debug(&current));
        current
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::{Equivocate, Garbage, Replay};
    use ca_net::{Corruption, Sim};

    fn check_ca(outs: &[&u64], honest_inputs: &[u64]) {
        assert!(!outs.is_empty());
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement: {outs:?}");
        let lo = honest_inputs.iter().min().unwrap();
        let hi = honest_inputs.iter().max().unwrap();
        assert!(
            outs[0] >= lo && outs[0] <= hi,
            "convex validity: {} ∉ [{lo}, {hi}]",
            outs[0]
        );
    }

    #[test]
    fn honest_run_is_convex() {
        let inputs = [100u64, 50, 75, 90, 10, 60, 55];
        let report = Sim::new(7).run(|ctx, id| high_cost_ca(ctx, inputs[id.index()], |_| true));
        check_ca(&report.honest_outputs(), &inputs);
    }

    #[test]
    fn identical_inputs_stay_fixed() {
        let report = Sim::new(4).run(|ctx, _| high_cost_ca(ctx, 42u64, |_| true));
        for out in report.honest_outputs() {
            assert_eq!(*out, 42);
        }
    }

    #[test]
    fn convex_under_all_message_attacks() {
        let n = 7;
        let inputs = [30u64, 31, 29, 33, 28, 0, 0];
        for adv in 0..4 {
            let report = {
                let s = Sim::new(n)
                    .corrupt(PartyId(5), Corruption::Scripted)
                    .corrupt(PartyId(6), Corruption::Scripted);
                let s = match adv {
                    0 => s,
                    1 => s.with_adversary(Garbage::new(31)),
                    2 => s.with_adversary(Replay::new(32)),
                    _ => s.with_adversary(Equivocate::new(33)),
                };
                s.run(|ctx, id| high_cost_ca(ctx, inputs[id.index()], |_| true))
            };
            check_ca(&report.honest_outputs(), &inputs[..5]);
        }
    }

    #[test]
    fn lying_extremes_cannot_leave_honest_range() {
        let n = 10; // t = 3
        let mut inputs = vec![500u64, 510, 520, 505, 515, 508, 512];
        inputs.extend([u64::MAX, 0, u64::MAX]); // liars
        let report = Sim::new(n)
            .corrupt(PartyId(7), Corruption::LyingHonest)
            .corrupt(PartyId(8), Corruption::LyingHonest)
            .corrupt(PartyId(9), Corruption::LyingHonest)
            .run(|ctx, id| high_cost_ca(ctx, inputs[id.index()], |_| true));
        check_ca(&report.honest_outputs(), &inputs[..7]);
    }

    #[test]
    fn domain_predicate_filters_byzantine_values() {
        use ca_bits::BitString;
        // Blocks of exactly 4 bits; a lying party ships a 2-bit "block".
        let n = 4;
        let blocks = ["1010", "1011", "1001", "11"];
        let report = Sim::new(n)
            .corrupt(PartyId(3), Corruption::LyingHonest)
            .run(|ctx, id| {
                let b = BitString::parse_binary(blocks[id.index()]).unwrap();
                high_cost_ca(ctx, b, |v: &BitString| v.len() == 4)
            });
        for out in report.honest_outputs() {
            assert_eq!(out.len(), 4, "short byzantine block leaked through");
            let v = out.val().to_u64().unwrap();
            assert!((0b1001..=0b1011).contains(&v));
        }
    }

    #[test]
    fn rounds_are_linear_in_n() {
        let report = Sim::new(7).run(|ctx, _| high_cost_ca(ctx, 5u64, |_| true));
        // setup (2) + 4 rounds × (t+1 = 3 phases) = 14.
        assert_eq!(report.metrics.rounds, 14);
    }
}
