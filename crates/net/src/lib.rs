//! Synchronous network substrate (paper §2).
//!
//! The paper's model: `n` parties in a fully connected network of
//! authenticated channels; synchronized clocks; every message delivered
//! within a publicly known `Δ` — i.e. computation proceeds in *lock-step
//! rounds*. An adaptive, rushing adversary corrupts up to `t < n/3` parties.
//!
//! This crate implements that model exactly and measurably:
//!
//! * [`Comm`] — the channel abstraction protocol code is written against
//!   (`send`, `next_round`). The same protocol code runs on the simulator
//!   here and on the TCP runtime in `ca-runtime`.
//! * [`Sim`] — the deterministic lock-step executor: one OS thread per
//!   honest party, exact per-scope bit/round accounting, and a rushing
//!   adversary hook that sees the honest messages of round `r` *before*
//!   choosing the corrupted parties' round-`r` messages (and may adaptively
//!   corrupt more parties mid-protocol).
//! * [`Adversary`] / [`RoundView`] — the attacker interface; strategy
//!   implementations live in `ca-adversary`.
//! * [`Metrics`] — the quantities the paper bounds: `BITSℓ(Π)` (bits sent by
//!   honest parties) and `ROUNDSℓ(Π)`, with per-subprotocol breakdowns.
//!
//! # Examples
//!
//! A one-round all-to-all exchange under simulation:
//!
//! ```
//! use ca_net::{Comm, CommExt, Sim};
//!
//! let report = Sim::new(4).run(|ctx: &mut dyn Comm, _id| {
//!     let inbox = ctx.exchange(&7u64); // send 7 to everyone, advance a round
//!     inbox.decode_each::<u64>().len()
//! });
//! assert!(report.outputs.iter().all(|o| o == &Some(4)));
//! assert_eq!(report.metrics.rounds, 1);
//! ```

mod adversary;
mod comm;
mod delay;
mod inbox;
mod metrics;
mod parallel;
mod sim;

pub use adversary::{Adversary, RoundActions, RoundView, SendSpec, Silent};
// Re-exported so downstream code can name the types that appear in
// `Metrics` and `Sim::with_trace` (and render values for the `CommExt`
// trace helpers) without a separate `ca-trace` import.
pub use ca_trace::{compact_debug, Histogram, TraceSink};
pub use comm::{Comm, CommExt, FaultEstimate};
pub use delay::{DelayedSim, EdgeDelays, EdgeRule};
pub use inbox::Inbox;
pub use metrics::{Metrics, ScopeMetrics};
pub use parallel::run_parallel;
pub use sim::{Corruption, RunReport, Sim};

use std::fmt;

/// Identity of one of the `n` parties, 0-indexed.
///
/// (The paper indexes parties `P₁ … Pₙ`; this API is 0-based.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartyId(pub usize);

impl PartyId {
    /// The party's index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl ca_codec::Encode for PartyId {
    fn encode(&self, w: &mut ca_codec::Writer) {
        self.0.encode(w);
    }
    fn encoded_len(&self) -> usize {
        ca_codec::Encode::encoded_len(&self.0)
    }
}

impl ca_codec::Decode for PartyId {
    fn decode(r: &mut ca_codec::Reader<'_>) -> Result<Self, ca_codec::CodecError> {
        Ok(PartyId(usize::decode(r)?))
    }
}

/// Maximum tolerable number of corruptions for `n` parties under `t < n/3`.
pub fn max_faults(n: usize) -> usize {
    n.saturating_sub(1) / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_faults_threshold() {
        assert_eq!(max_faults(1), 0);
        assert_eq!(max_faults(3), 0);
        assert_eq!(max_faults(4), 1);
        assert_eq!(max_faults(6), 1);
        assert_eq!(max_faults(7), 2);
        assert_eq!(max_faults(10), 3);
        for n in 1..100 {
            assert!(3 * max_faults(n) < n);
        }
    }
}
