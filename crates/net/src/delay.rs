//! Seeded per-edge delay/reorder/drop injection for the simulator.
//!
//! [`EdgeDelays`] is a pure function from `(seed, from, to, seq)` to a
//! delivery delay (or a drop), built on a splitmix64-style bit mixer — no
//! RNG state, no ordering sensitivity, byte-reproducible across runs and
//! platforms. [`DelayedSim`] plugs it into [`Sim`]: a message sent in
//! round `r` with sampled delay `d` arrives at round `r + ⌊d/Δ⌋`, so a
//! lock-step protocol experiences late (reordered relative to round
//! boundaries) and lost messages exactly as a Δ-timeout runtime would on
//! a jittery network. The async executor (`ca-async`) reuses the same
//! sampler for its virtual-time event queue, which is what makes the
//! sync-vs-async benchmark (AS1) an apples-to-apples comparison: both
//! backends face the identical delay distribution.

use std::sync::Arc;

use crate::sim::{Corruption, RunReport, Sim};
use crate::{Comm, PartyId, TraceSink};

/// One targeted delay/drop rule. `None` endpoints are wildcards.
#[derive(Debug, Clone, Default)]
pub struct EdgeRule {
    /// Sender filter (`None` = any sender).
    pub from: Option<usize>,
    /// Receiver filter (`None` = any receiver).
    pub to: Option<usize>,
    /// Extra delay added on top of the base + jitter sample.
    pub extra_delay: u64,
    /// Drop probability in percent (0–100), sampled per message.
    pub drop_pct: u8,
}

impl EdgeRule {
    fn matches(&self, from: usize, to: usize) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Deterministic per-edge delay sampler (time units are abstract; the
/// consumer decides what one unit means — `DelayedSim` divides by Δ,
/// the async executor uses them as virtual time directly).
#[derive(Debug, Clone)]
pub struct EdgeDelays {
    seed: u64,
    base: u64,
    jitter: u64,
    rules: Vec<EdgeRule>,
}

/// splitmix64 finalizer: a high-quality 64-bit bit mixer. Pure and
/// stateless — determinism comes for free.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EdgeDelays {
    /// Every edge gets `base + U[0, jitter]` delay, sampled per message.
    pub fn uniform(seed: u64, base: u64, jitter: u64) -> Self {
        Self {
            seed,
            base,
            jitter,
            rules: Vec::new(),
        }
    }

    /// Adds a targeted rule (extra delay and/or probabilistic drop).
    #[must_use]
    pub fn with_rule(mut self, rule: EdgeRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Samples the delivery delay of message number `seq` on edge
    /// `from → to`. `None` means the message is dropped on the wire.
    ///
    /// Self-edges are never delayed or dropped (self-delivery is local).
    pub fn sample(&self, from: usize, to: usize, seq: u64) -> Option<u64> {
        if from == to {
            return Some(0);
        }
        let h = mix(self.seed
            ^ mix(((from as u64) << 32) | to as u64)
            ^ mix(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let mut delay = self.base;
        if self.jitter > 0 {
            delay += h % (self.jitter + 1);
        }
        let mut drop_pct = 0u8;
        for rule in &self.rules {
            if rule.matches(from, to) {
                delay += rule.extra_delay;
                drop_pct = drop_pct.max(rule.drop_pct);
            }
        }
        if drop_pct > 0 && (h >> 32) % 100 < u64::from(drop_pct) {
            return None;
        }
        Some(delay)
    }
}

/// A [`Sim`] whose message deliveries go through an [`EdgeDelays`]
/// sampler: sends are held back across round boundaries (arrival round
/// `sent + ⌊delay/Δ⌋`) or dropped entirely, instead of the barrier's
/// usual perfect next-round delivery.
///
/// This breaks the synchronous model on purpose — protocols that assume
/// "everything sent in round r is in round r's inbox" will see stale or
/// missing values. Quorum-waiting protocols (and the async executor's
/// conformance tests) are the intended tenants. Dropped messages are
/// still metered as sent: the bits hit the wire; the network ate them.
pub struct DelayedSim {
    sim: Sim,
}

impl DelayedSim {
    /// `n` parties whose messages are delayed per `delays`, with round
    /// length `delta` time units (`delta = 0` is treated as 1).
    pub fn new(n: usize, delays: EdgeDelays, delta: u64) -> Self {
        Self {
            sim: Sim::new(n).with_delay_model(delays, delta),
        }
    }

    /// See [`Sim::with_t`].
    #[must_use]
    pub fn with_t(mut self, t: usize) -> Self {
        self.sim = self.sim.with_t(t);
        self
    }

    /// See [`Sim::corrupt`].
    #[must_use]
    pub fn corrupt(mut self, party: PartyId, mode: Corruption) -> Self {
        self.sim = self.sim.corrupt(party, mode);
        self
    }

    /// See [`Sim::with_max_rounds`].
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.sim = self.sim.with_max_rounds(max_rounds);
        self
    }

    /// See [`Sim::with_trace`].
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sim = self.sim.with_trace(sink);
        self
    }

    /// See [`Sim::run`].
    pub fn run<O, F>(self, party: F) -> RunReport<O>
    where
        O: Send,
        F: Fn(&mut dyn Comm, PartyId) -> O + Sync,
    {
        self.sim.run(party)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommExt;

    /// A quorum-waiting averaging protocol: each iteration, re-send
    /// `(iter, value)` every round until `n − t` values with
    /// `iter' ≥ iter` have arrived (own value included), then average.
    /// Tolerates late and reordered delivery by construction.
    fn quorum_avg(ctx: &mut dyn Comm, start: u64, iters: u64) -> u64 {
        let n = ctx.n();
        let quorum = ctx.quorum();
        let mut value = start;
        let mut latest: Vec<Option<(u64, u64)>> = vec![None; n];
        for iter in 0..iters {
            latest[ctx.me().0] = Some((iter, value));
            loop {
                let inbox = ctx.exchange(&(iter, value));
                for p in 0..n {
                    let p = PartyId(p);
                    if let Some((i, v)) = inbox.decode_latest_from::<(u64, u64)>(p) {
                        if latest[p.0].is_none_or(|(old, _)| i > old) {
                            latest[p.0] = Some((i, v));
                        }
                    }
                }
                let fresh: Vec<u64> = latest
                    .iter()
                    .flatten()
                    .filter(|(i, _)| *i >= iter)
                    .map(|(_, v)| *v)
                    .collect();
                if fresh.len() >= quorum {
                    value = fresh.iter().sum::<u64>() / fresh.len() as u64;
                    break;
                }
            }
        }
        value
    }

    #[test]
    fn delayed_sim_holds_messages_across_rounds() {
        // Delays 10..=19 against a round length of 12: roughly half of all
        // messages land one round late, so the quorum loop must wait.
        let report = DelayedSim::new(4, EdgeDelays::uniform(5, 10, 9), 12)
            .with_max_rounds(200)
            .run(|ctx, id| quorum_avg(ctx, id.0 as u64 * 100, 4));
        let outs: Vec<u64> = report.honest_outputs().into_iter().copied().collect();
        assert_eq!(outs.len(), 4);
        let spread = outs.iter().max().unwrap() - outs.iter().min().unwrap();
        assert!(spread <= 150, "averaging should contract, got {outs:?}");
        assert!(
            report.metrics.rounds > 4,
            "late deliveries must cost extra waiting rounds, got {}",
            report.metrics.rounds
        );
    }

    #[test]
    fn delayed_runs_are_deterministic() {
        let run = || {
            DelayedSim::new(4, EdgeDelays::uniform(9, 8, 8), 10)
                .with_max_rounds(200)
                .run(|ctx, id| quorum_avg(ctx, id.0 as u64 * 7, 3))
        };
        let a = run();
        let b = run();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.honest_bits, b.metrics.honest_bits);
    }

    #[test]
    fn sampler_is_deterministic_and_seed_sensitive() {
        let a = EdgeDelays::uniform(7, 10, 5);
        let b = EdgeDelays::uniform(7, 10, 5);
        let c = EdgeDelays::uniform(8, 10, 5);
        let mut differs = false;
        for seq in 0..64 {
            for from in 0..4 {
                for to in 0..4 {
                    assert_eq!(a.sample(from, to, seq), b.sample(from, to, seq));
                    if a.sample(from, to, seq) != c.sample(from, to, seq) {
                        differs = true;
                    }
                }
            }
        }
        assert!(differs, "different seeds must induce different schedules");
    }

    #[test]
    fn delays_stay_in_range_and_self_edges_are_free() {
        let d = EdgeDelays::uniform(42, 10, 5);
        for seq in 0..256 {
            let delay = d.sample(0, 1, seq).unwrap();
            assert!((10..=15).contains(&delay), "delay {delay} out of range");
            assert_eq!(d.sample(2, 2, seq), Some(0));
        }
    }

    #[test]
    fn rules_target_edges_and_drop() {
        let d = EdgeDelays::uniform(1, 4, 0).with_rule(EdgeRule {
            from: Some(0),
            to: None,
            extra_delay: 100,
            drop_pct: 100,
        });
        for seq in 0..32 {
            assert_eq!(d.sample(0, 1, seq), None, "from-0 edges always drop");
            assert_eq!(d.sample(1, 2, seq), Some(4), "other edges untouched");
        }
        let partial = EdgeDelays::uniform(3, 4, 0).with_rule(EdgeRule {
            from: None,
            to: Some(2),
            extra_delay: 0,
            drop_pct: 50,
        });
        let dropped = (0..200)
            .filter(|&seq| partial.sample(1, 2, seq).is_none())
            .count();
        assert!(
            (50..150).contains(&dropped),
            "~50% drop expected, saw {dropped}/200"
        );
    }
}
