//! Per-round received messages.

use bytes::Bytes;
use ca_codec::Decode;

use crate::PartyId;

/// All messages delivered to one party in one round, grouped by sender.
///
/// Byzantine senders may deliver zero, one, or many (possibly malformed)
/// messages per round; honest protocol steps expect at most one. The typed
/// accessors implement the standard convention: only the *first* message
/// from each sender is considered, and a message that fails to decode is
/// treated exactly like silence.
#[derive(Debug, Clone, Default)]
pub struct Inbox {
    /// `by_sender[p]` = payloads received from party `p` this round, in
    /// submission order.
    by_sender: Vec<Vec<Bytes>>,
}

impl Inbox {
    /// Creates an inbox for `n` potential senders.
    pub fn with_parties(n: usize) -> Self {
        Self {
            by_sender: vec![Vec::new(); n],
        }
    }

    /// Records a delivery (used by network executors).
    pub fn push(&mut self, from: PartyId, payload: Bytes) {
        self.by_sender[from.0].push(payload);
    }

    /// Number of parties in the network.
    pub fn party_count(&self) -> usize {
        self.by_sender.len()
    }

    /// Raw payloads received from `sender`, in order.
    pub fn raw_from(&self, sender: PartyId) -> &[Bytes] {
        &self.by_sender[sender.0]
    }

    /// Senders that delivered at least one message this round, ascending.
    pub fn senders(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.by_sender
            .iter()
            .enumerate()
            .filter(|(_, msgs)| !msgs.is_empty())
            .map(|(i, _)| PartyId(i))
    }

    /// Decodes the first message from `sender` as `T`; `None` on silence or
    /// malformed bytes.
    pub fn decode_from<T: Decode>(&self, sender: PartyId) -> Option<T> {
        let first = self.by_sender[sender.0].first()?;
        T::decode_from_slice(first).ok()
    }

    /// Decodes the first message of every sender, skipping silent or
    /// malformed ones. Result is ordered by sender id.
    pub fn decode_each<T: Decode>(&self) -> Vec<(PartyId, T)> {
        (0..self.by_sender.len())
            .filter_map(|i| self.decode_from::<T>(PartyId(i)).map(|v| (PartyId(i), v)))
            .collect()
    }

    /// Decodes the *latest* well-formed message from `sender` as `T`.
    ///
    /// The first-message convention of [`Inbox::decode_from`] bakes in a
    /// round-barrier assumption: at most one honest message per sender per
    /// round. Under a delay model ([`crate::DelayedSim`]) a round's inbox
    /// can legitimately stack a late round-`r` message *and* a fresh
    /// round-`r+1` message from the same honest sender — delivery order is
    /// send order, so the freshest state is the last parseable payload.
    pub fn decode_latest_from<T: Decode>(&self, sender: PartyId) -> Option<T> {
        self.by_sender[sender.0]
            .iter()
            .rev()
            .find_map(|m| T::decode_from_slice(m).ok())
    }

    /// Decodes *every* message of every sender that parses as `T`
    /// (for steps that legitimately accept multiple messages per sender).
    pub fn decode_all<T: Decode>(&self) -> Vec<(PartyId, T)> {
        let mut out = Vec::new();
        for (i, msgs) in self.by_sender.iter().enumerate() {
            for m in msgs {
                if let Ok(v) = T::decode_from_slice(m) {
                    out.push((PartyId(i), v));
                }
            }
        }
        out
    }

    /// Total payload bytes in this inbox.
    pub fn total_bytes(&self) -> usize {
        self.by_sender
            .iter()
            .flat_map(|msgs| msgs.iter().map(Bytes::len))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_codec::Encode;

    fn inbox3() -> Inbox {
        let mut inbox = Inbox::with_parties(3);
        inbox.push(PartyId(0), 11u64.encode_to_vec().into());
        inbox.push(PartyId(2), Bytes::from_static(b"\xff\xff\xff garbage"));
        inbox.push(PartyId(2), 22u64.encode_to_vec().into());
        inbox
    }

    #[test]
    fn decode_from_takes_first_only() {
        let inbox = inbox3();
        assert_eq!(inbox.decode_from::<u64>(PartyId(0)), Some(11));
        assert_eq!(inbox.decode_from::<u64>(PartyId(1)), None); // silent
        assert_eq!(inbox.decode_from::<u64>(PartyId(2)), None); // first is garbage
    }

    #[test]
    fn decode_each_skips_bad_senders() {
        let decoded = inbox3().decode_each::<u64>();
        assert_eq!(decoded, vec![(PartyId(0), 11)]);
    }

    #[test]
    fn decode_latest_takes_last_well_formed() {
        let inbox = inbox3();
        assert_eq!(inbox.decode_latest_from::<u64>(PartyId(0)), Some(11));
        assert_eq!(inbox.decode_latest_from::<u64>(PartyId(1)), None);
        assert_eq!(inbox.decode_latest_from::<u64>(PartyId(2)), Some(22));
        let mut stacked = Inbox::with_parties(2);
        stacked.push(PartyId(1), 5u64.encode_to_vec().into());
        stacked.push(PartyId(1), 6u64.encode_to_vec().into());
        assert_eq!(stacked.decode_latest_from::<u64>(PartyId(1)), Some(6));
    }

    #[test]
    fn decode_all_sees_later_messages() {
        let decoded = inbox3().decode_all::<u64>();
        assert_eq!(decoded, vec![(PartyId(0), 11), (PartyId(2), 22)]);
    }

    #[test]
    fn senders_ordered() {
        let senders: Vec<_> = inbox3().senders().collect();
        assert_eq!(senders, vec![PartyId(0), PartyId(2)]);
    }
}
