//! Communication and round accounting.
//!
//! The paper bounds `BITSℓ(Π)` — the worst-case total number of bits sent by
//! *honest* parties — and `ROUNDSℓ(Π)`. The simulator measures both exactly,
//! attributed to hierarchical protocol scopes (e.g.
//! `"pi_n/find_prefix/lba+"`), which is what powers the per-subprotocol
//! breakdown experiment (F3).

use std::collections::BTreeMap;
use std::fmt;

use ca_trace::Histogram;

/// Counters for one scope path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeMetrics {
    /// Bits sent by honest parties while this scope was innermost.
    pub honest_bits: u64,
    /// Messages sent by honest parties (excluding self-delivery).
    pub honest_msgs: u64,
    /// Rounds spent while this scope was innermost.
    pub rounds: u64,
}

impl ScopeMetrics {
    fn absorb(&mut self, other: &ScopeMetrics) {
        self.honest_bits += other.honest_bits;
        self.honest_msgs += other.honest_msgs;
        self.rounds += other.rounds;
    }
}

/// Aggregate measurements of one protocol run.
///
/// # What `honest_bits` includes
///
/// `honest_bits` counts **payload bits only**: `8 ×` the encoded message
/// length handed to `Comm::send_bytes`, summed over honest senders,
/// excluding self-delivery. It deliberately excludes transport framing
/// (length prefixes, round tags, `ca-runtime`'s `Frame` envelope): the
/// paper's `BITSℓ(Π)` is a statement about the protocol, not about any
/// particular wire format. The TCP runtime's actual wire overhead is
/// documented and computable via `ca-runtime`'s `Frame::wire_len`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total bits sent by honest parties: the paper's `BITSℓ(Π)`.
    pub honest_bits: u64,
    /// Total messages sent by honest parties (excluding self-delivery).
    pub honest_msgs: u64,
    /// Bits sent by corrupted parties (informational; not part of `BITSℓ`).
    pub adversary_bits: u64,
    /// Rounds executed: the paper's `ROUNDSℓ(Π)`.
    pub rounds: u64,
    /// Per-scope breakdown, keyed by `/`-joined scope path.
    pub per_scope: BTreeMap<String, ScopeMetrics>,
    /// Size distribution (payload bytes) of honest messages.
    pub msg_bytes: Histogram,
    /// Distribution of honest bits sent per completed round.
    pub round_bits: Histogram,
    /// Per-scope message-size distributions (same keys as `per_scope`).
    pub scope_msg_bytes: BTreeMap<String, Histogram>,
    /// Honest bits accumulated since the last completed round (feeds
    /// `round_bits`; private so the histograms stay consistent).
    bits_this_round: u64,
}

impl Metrics {
    /// Records an honest send of `bytes` payload bytes under `scope`.
    pub fn record_honest_send(&mut self, scope: &str, bytes: usize) {
        let bits = 8 * bytes as u64;
        self.honest_bits += bits;
        self.honest_msgs += 1;
        self.bits_this_round += bits;
        self.msg_bytes.record(bytes as u64);
        let entry = self.per_scope.entry(scope.to_owned()).or_default();
        entry.honest_bits += bits;
        entry.honest_msgs += 1;
        self.scope_msg_bytes
            .entry(scope.to_owned())
            .or_default()
            .record(bytes as u64);
    }

    /// Records a corrupted-party send.
    pub fn record_adversary_send(&mut self, bytes: usize) {
        self.adversary_bits += 8 * bytes as u64;
    }

    /// Records one completed round attributed to `scope`.
    pub fn record_round(&mut self, scope: &str) {
        self.rounds += 1;
        self.per_scope.entry(scope.to_owned()).or_default().rounds += 1;
        self.round_bits.record(self.bits_this_round);
        self.bits_this_round = 0;
    }

    /// Sums counters over every scope whose path starts with `prefix`
    /// (path components compared exactly).
    pub fn scope_subtree(&self, prefix: &str) -> ScopeMetrics {
        let mut total = ScopeMetrics::default();
        for (path, m) in &self.per_scope {
            if path == prefix || path.starts_with(&format!("{prefix}/")) {
                total.absorb(m);
            }
        }
        total
    }

    /// Merges another run's metrics into this one (used by multi-run sweeps).
    pub fn absorb(&mut self, other: &Metrics) {
        self.honest_bits += other.honest_bits;
        self.honest_msgs += other.honest_msgs;
        self.adversary_bits += other.adversary_bits;
        self.rounds += other.rounds;
        for (path, m) in &other.per_scope {
            self.per_scope.entry(path.clone()).or_default().absorb(m);
        }
        self.msg_bytes.merge(&other.msg_bytes);
        self.round_bits.merge(&other.round_bits);
        for (path, h) in &other.scope_msg_bytes {
            self.scope_msg_bytes
                .entry(path.clone())
                .or_default()
                .merge(h);
        }
        self.bits_this_round += other.bits_this_round;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} rounds, {} honest bits ({} msgs), {} adversary bits",
            self.rounds, self.honest_bits, self.honest_msgs, self.adversary_bits
        )?;
        for (path, m) in &self.per_scope {
            writeln!(
                f,
                "  {:<40} {:>12} bits {:>8} msgs {:>6} rounds",
                path, m.honest_bits, m.honest_msgs, m.rounds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_subtree_sums_children() {
        let mut m = Metrics::default();
        m.record_honest_send("a/b", 10);
        m.record_honest_send("a/c", 5);
        m.record_honest_send("a", 1);
        m.record_honest_send("ab", 100); // must NOT match prefix "a"
        let sub = m.scope_subtree("a");
        assert_eq!(sub.honest_bits, 8 * 16);
        assert_eq!(sub.honest_msgs, 3);
    }

    #[test]
    fn histograms_track_sends_and_rounds() {
        let mut m = Metrics::default();
        m.record_honest_send("a", 10);
        m.record_honest_send("a", 100);
        m.record_round("a");
        m.record_honest_send("b", 1);
        m.record_round("b");
        assert_eq!(m.msg_bytes.count(), 3);
        assert_eq!(m.msg_bytes.max(), 100);
        assert_eq!(m.round_bits.count(), 2);
        assert_eq!(m.round_bits.max(), 8 * 110);
        assert_eq!(m.round_bits.min(), 8);
        assert_eq!(m.scope_msg_bytes["a"].count(), 2);
        assert_eq!(m.scope_msg_bytes["b"].sum(), 1);
    }

    #[test]
    fn metrics_equality_is_field_exact() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.record_honest_send("x", 4);
        assert_ne!(a, b);
        b.record_honest_send("x", 4);
        assert_eq!(a, b);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Metrics::default();
        a.record_honest_send("x", 1);
        a.record_round("x");
        let mut b = Metrics::default();
        b.record_honest_send("x", 2);
        b.record_adversary_send(4);
        a.absorb(&b);
        assert_eq!(a.honest_bits, 24);
        assert_eq!(a.adversary_bits, 32);
        assert_eq!(a.per_scope["x"].honest_msgs, 2);
        assert_eq!(a.rounds, 1);
    }
}
