//! The channel abstraction protocol code is written against.

use bytes::Bytes;
use ca_codec::Encode;

use crate::{Inbox, PartyId};

/// A party's view of the synchronous network (paper §2).
///
/// Protocol functions take `&mut dyn Comm`, which lets the same code run on
/// the lock-step simulator ([`crate::Sim`]) and on the TCP runtime in
/// `ca-runtime`.
///
/// # Round semantics
///
/// Sends are buffered; [`Comm::next_round`] flushes them, waits for the round
/// boundary (`Δ` in the real world, the barrier in the simulator), and
/// returns everything delivered this round. All honest parties of a
/// deterministic synchronous protocol call `next_round` the same number of
/// times, which is what keeps instances aligned without message tags.
pub trait Comm {
    /// Number of parties `n`.
    fn n(&self) -> usize;

    /// Corruption budget `t` (`t < n/3`).
    fn t(&self) -> usize;

    /// This party's identity.
    fn me(&self) -> PartyId;

    /// Buffers `payload` for delivery to `to` at the next round boundary.
    ///
    /// Sending to oneself is allowed; it is delivered like any other message
    /// but does not count as network communication.
    fn send_bytes(&mut self, to: PartyId, payload: Bytes);

    /// Flushes buffered sends, advances to the next round, and returns the
    /// messages delivered to this party.
    fn next_round(&mut self) -> Inbox;

    /// Enters a named metrics scope (bits/rounds are attributed to the
    /// innermost scope). Prefer [`CommExt::scoped`].
    fn push_scope(&mut self, name: &str);

    /// Leaves the innermost metrics scope.
    fn pop_scope(&mut self);
}

/// Ergonomic extension methods available on every [`Comm`]
/// (including `&mut dyn Comm`).
pub trait CommExt: Comm {
    /// Encodes and sends `msg` to `to`.
    fn send<T: Encode + ?Sized>(&mut self, to: PartyId, msg: &T) {
        self.send_bytes(to, Bytes::from(msg.encode_to_vec()));
    }

    /// Encodes and sends `msg` to every party (including self — the paper's
    /// "send to all parties").
    fn send_all<T: Encode + ?Sized>(&mut self, msg: &T) {
        let payload = Bytes::from(msg.encode_to_vec());
        for p in 0..self.n() {
            self.send_bytes(PartyId(p), payload.clone());
        }
    }

    /// `send_all(msg)` followed by `next_round()`: the ubiquitous all-to-all
    /// exchange step.
    fn exchange<T: Encode + ?Sized>(&mut self, msg: &T) -> Inbox {
        self.send_all(msg);
        self.next_round()
    }

    /// Runs `f` inside the metrics scope `name`.
    fn scoped<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope(name);
        let out = f(self);
        self.pop_scope();
        out
    }

    /// `n − t`: the guaranteed number of honest parties (a quorum).
    fn quorum(&self) -> usize {
        self.n() - self.t()
    }
}

impl<C: Comm + ?Sized> CommExt for C {}
