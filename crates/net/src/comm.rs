//! The channel abstraction protocol code is written against.

use bytes::Bytes;
use ca_codec::Encode;

use crate::{Inbox, PartyId};

/// A transport's running estimate of how many parties are actually
/// misbehaving, fed to adaptive protocols (the `f`-adaptive fast path in
/// `ca-core`) so they can size their optimism to observed reality rather
/// than the worst-case budget `t`.
///
/// The estimate is *local* and *monotone pessimistic*: it only ever counts
/// parties this transport has concrete evidence against (stopped streams,
/// queue-overflow disconnects). A byzantine party that lies politely is
/// invisible here — adaptive protocols must therefore treat the estimate as
/// advisory and certify any shortcut with an agreement sub-protocol before
/// acting on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultEstimate {
    /// Parties that have gone silent (EOF, never connected).
    pub silent: usize,
    /// Parties with active evidence of misbehavior (e.g. flooding until
    /// the transport cut them off).
    pub suspected: usize,
}

impl FaultEstimate {
    /// Total observed faults: silent plus actively suspected parties.
    pub fn observed(&self) -> usize {
        self.silent + self.suspected
    }

    /// Whether the observed fault count is within `budget` — the gate an
    /// adaptive protocol checks before proposing its fast path.
    pub fn within(&self, budget: usize) -> bool {
        self.observed() <= budget
    }
}

/// A party's view of the synchronous network (paper §2).
///
/// Protocol functions take `&mut dyn Comm`, which lets the same code run on
/// the lock-step simulator ([`crate::Sim`]) and on the TCP runtime in
/// `ca-runtime`.
///
/// # Round semantics
///
/// Sends are buffered; [`Comm::next_round`] flushes them, waits for the round
/// boundary (`Δ` in the real world, the barrier in the simulator), and
/// returns everything delivered this round. All honest parties of a
/// deterministic synchronous protocol call `next_round` the same number of
/// times, which is what keeps instances aligned without message tags.
pub trait Comm {
    /// Number of parties `n`.
    fn n(&self) -> usize;

    /// Corruption budget `t` (`t < n/3`).
    fn t(&self) -> usize;

    /// This party's identity.
    fn me(&self) -> PartyId;

    /// Buffers `payload` for delivery to `to` at the next round boundary.
    ///
    /// Sending to oneself is allowed; it is delivered like any other message
    /// but does not count as network communication.
    fn send_bytes(&mut self, to: PartyId, payload: Bytes);

    /// Flushes buffered sends, advances to the next round, and returns the
    /// messages delivered to this party.
    fn next_round(&mut self) -> Inbox;

    /// Enters a named metrics scope (bits/rounds are attributed to the
    /// innermost scope). Prefer [`CommExt::scoped`].
    fn push_scope(&mut self, name: &str);

    /// Leaves the innermost metrics scope.
    fn pop_scope(&mut self);

    /// Parties this transport has stopped hearing from: their stream
    /// ended or the transport cut them off (queue overflow). The
    /// protocol model already treats such peers as silent-byzantine —
    /// `next_round` simply never again delivers from them — so protocol
    /// code needs no special handling; this accessor exists for
    /// *accounting* (service stats, experiments). Transports without a
    /// liveness notion (the simulator) report no one.
    fn silent_parties(&self) -> Vec<PartyId> {
        Vec::new()
    }

    /// This transport's current [`FaultEstimate`]. The default derives it
    /// entirely from [`Comm::silent_parties`]; transports with richer
    /// misbehavior evidence (the TCP runtime's overflow disconnects)
    /// override it to split silent from suspected parties.
    fn fault_estimate(&self) -> FaultEstimate {
        FaultEstimate {
            silent: self.silent_parties().len(),
            suspected: 0,
        }
    }

    /// Whether a trace sink is attached and recording. Instrumentation
    /// sites check this before rendering event values, so transports
    /// without tracing (the default) pay one virtual call and nothing
    /// else — prefer the lazy [`CommExt::trace_input`]-style helpers.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Emits a protocol-level trace event, stamped by the transport with
    /// this party's id, current round, and scope path. A no-op unless
    /// the transport has a sink attached.
    fn trace(&mut self, event: ca_trace::Event) {
        let _ = event;
    }
}

/// Ergonomic extension methods available on every [`Comm`]
/// (including `&mut dyn Comm`).
pub trait CommExt: Comm {
    /// Encodes and sends `msg` to `to`.
    // ca-budget: metered — bytes land in Metrics via the transport's send_bytes
    fn send<T: Encode + ?Sized>(&mut self, to: PartyId, msg: &T) {
        self.send_bytes(to, Bytes::from(msg.encode_to_vec()));
    }

    /// Encodes and sends `msg` to every party (including self — the paper's
    /// "send to all parties").
    // ca-budget: metered — bytes land in Metrics via the transport's send_bytes
    fn send_all<T: Encode + ?Sized>(&mut self, msg: &T) {
        let payload = Bytes::from(msg.encode_to_vec());
        for p in 0..self.n() {
            self.send_bytes(PartyId(p), payload.clone());
        }
    }

    /// `send_all(msg)` followed by `next_round()`: the ubiquitous all-to-all
    /// exchange step.
    // ca-budget: metered — delegates to send_all
    fn exchange<T: Encode + ?Sized>(&mut self, msg: &T) -> Inbox {
        self.send_all(msg);
        self.next_round()
    }

    /// Runs `f` inside the metrics scope `name`.
    fn scoped<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope(name);
        let out = f(self);
        self.pop_scope();
        out
    }

    /// `n − t`: the guaranteed number of honest parties (a quorum).
    fn quorum(&self) -> usize {
        self.n() - self.t()
    }

    /// Traces this party's protocol input. `render` runs only when a
    /// sink is recording, so rendering cost never touches untraced runs.
    fn trace_input(&mut self, render: impl FnOnce() -> String) {
        if self.trace_enabled() {
            self.trace(ca_trace::Event::Input { value: render() });
        }
    }

    /// Traces this party's decision (lazily rendered, like
    /// [`CommExt::trace_input`]).
    fn trace_decide(&mut self, render: impl FnOnce() -> String) {
        if self.trace_enabled() {
            self.trace(ca_trace::Event::Decide { value: render() });
        }
    }

    /// Traces a fast-path decision (lazily rendered). The rendered value
    /// must equal the one passed to [`CommExt::trace_decide`] in the same
    /// scope — the `fast-path-agreement` trace invariant checks it.
    fn trace_fast_path(&mut self, render: impl FnOnce() -> String) {
        if self.trace_enabled() {
            self.trace(ca_trace::Event::FastPathTaken { value: render() });
        }
    }

    /// Traces abandonment of the fast path with a short machine-readable
    /// reason (e.g. `"incomplete"`, `"mismatch"`, `"ba-rejected"`).
    fn trace_fallback(&mut self, reason: &str) {
        if self.trace_enabled() {
            self.trace(ca_trace::Event::FallbackTriggered {
                reason: reason.to_owned(),
            });
        }
    }

    /// Traces a free-form protocol annotation (lazily rendered).
    fn trace_note(&mut self, label: &str, render: impl FnOnce() -> String) {
        if self.trace_enabled() {
            self.trace(ca_trace::Event::Note {
                label: label.to_owned(),
                value: render(),
            });
        }
    }
}

impl<C: Comm + ?Sized> CommExt for C {}
