//! Parallel composition of synchronous sub-protocols.
//!
//! The paper's baseline "CA via `n` broadcasts" (§1) assumes the `n`
//! broadcast instances run *in parallel*: one physical round carries one
//! round of every instance, so the composition costs the max of the
//! instances' round counts, not the sum. This module provides that
//! combinator for coroutine-style protocol code:
//!
//! [`run_parallel`] starts `k` logical instances of protocol code, each
//! seeing its own [`Comm`]; their sends are tagged with the instance index
//! and multiplexed onto the parent channel, and all instances advance
//! rounds in lock step (an instance that finishes early simply stops
//! contributing messages).
//!
//! Correctness relies on the same fact the simulator relies on globally:
//! honest parties of a deterministic synchronous protocol call
//! `next_round` in lock step, so the `i`-th physical round carries the
//! `i`-th logical round of every live instance, and tagging by instance
//! index is enough to demultiplex.

use std::sync::mpsc;

use bytes::Bytes;
use ca_codec::{Decode, Encode, Reader, Writer};

use crate::{Comm, Inbox, PartyId};

/// Wire envelope for multiplexed sub-instance messages.
struct Tagged {
    instance: u32,
    payload: Vec<u8>,
}

impl Encode for Tagged {
    fn encode(&self, w: &mut Writer) {
        self.instance.encode(w);
        w.put_raw(&self.payload);
    }
    fn encoded_len(&self) -> usize {
        Encode::encoded_len(&self.instance) + self.payload.len()
    }
}

impl Decode for Tagged {
    fn decode(r: &mut Reader<'_>) -> Result<Self, ca_codec::CodecError> {
        let instance = u32::decode(r)?;
        let payload = r.get_raw(r.remaining())?.to_vec();
        Ok(Tagged { instance, payload })
    }
}

enum ToParent {
    Round {
        sends: Vec<(PartyId, Bytes)>,
    },
    Done {
        sends: Vec<(PartyId, Bytes)>,
    },
    /// The instance's body panicked: it will contribute nothing further.
    /// Without this message the parent would wait forever for a Round
    /// submission that never comes; the payload itself is re-raised from
    /// the thread handle and propagated after every instance is joined.
    Panicked,
}

/// The per-instance `Comm` handed to sub-protocol closures.
struct SubComm {
    n: usize,
    t: usize,
    me: PartyId,
    pending: Vec<(PartyId, Bytes)>,
    to_parent: mpsc::Sender<(usize, ToParent)>,
    from_parent: mpsc::Receiver<Inbox>,
    index: usize,
}

impl Comm for SubComm {
    fn n(&self) -> usize {
        self.n
    }
    fn t(&self) -> usize {
        self.t
    }
    fn me(&self) -> PartyId {
        self.me
    }
    fn send_bytes(&mut self, to: PartyId, payload: Bytes) {
        self.pending.push((to, payload));
    }
    fn next_round(&mut self) -> Inbox {
        let sends = std::mem::take(&mut self.pending);
        self.to_parent
            .send((self.index, ToParent::Round { sends }))
            // ca-lint: allow(panic-path) — in-process executor channel, not a network path
            .expect("parent alive");
        // ca-lint: allow(panic-path) — in-process executor channel, see above
        self.from_parent.recv().expect("parent alive")
    }
    fn push_scope(&mut self, _name: &str) {}
    fn pop_scope(&mut self) {}
}

/// Runs `k` logical instances of `body` in parallel over one physical
/// [`Comm`], returning their outputs in instance order.
///
/// Each instance `i` runs `body(sub_ctx, i)` on its own thread with a
/// virtual channel; one physical round carries one logical round of every
/// still-running instance. Instances of a deterministic synchronous
/// protocol stay aligned across honest parties, exactly like the top-level
/// protocol does.
///
/// The physical communication equals the sum of the instances' logical
/// communication plus an `O(1)`-byte instance tag per message; the physical
/// round count is the max (not the sum) of the instances' round counts.
///
/// # Examples
///
/// ```
/// use ca_net::{run_parallel, CommExt, Sim};
///
/// // Three all-to-all exchanges sharing ONE physical round.
/// let report = Sim::new(3).run(|ctx, _id| {
///     run_parallel(ctx, 3, |sub, idx| {
///         sub.exchange(&(idx as u64)).decode_each::<u64>().len()
///     })
/// });
/// assert_eq!(report.metrics.rounds, 1);
/// assert!(report.honest_outputs().iter().all(|o| **o == vec![3, 3, 3]));
/// ```
pub fn run_parallel<O, F>(ctx: &mut dyn Comm, k: usize, body: F) -> Vec<O>
where
    O: Send,
    F: Fn(&mut dyn Comm, usize) -> O + Sync,
{
    assert!(k > 0, "need at least one instance");
    assert!(u32::try_from(k).is_ok(), "too many instances");
    let n = ctx.n();
    let t = ctx.t();
    let me = ctx.me();
    // Sub-instances multiplex onto the parent channel and keep the
    // parent's metrics scope, so their `Comm`s do not trace individually;
    // one parent-level note marks the composition instead.
    if ctx.trace_enabled() {
        ctx.trace(ca_trace::Event::Note {
            label: "parallel".to_owned(),
            value: format!("k={k}"),
        });
    }

    std::thread::scope(|scope| {
        let (to_parent_tx, to_parent_rx) = mpsc::channel::<(usize, ToParent)>();
        let mut inbox_txs = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for index in 0..k {
            let (inbox_tx, inbox_rx) = mpsc::channel::<Inbox>();
            inbox_txs.push(inbox_tx);
            let to_parent = to_parent_tx.clone();
            let body = &body;
            handles.push(scope.spawn(move || {
                let mut sub = SubComm {
                    n,
                    t,
                    me,
                    pending: Vec::new(),
                    to_parent: to_parent.clone(),
                    from_parent: inbox_rx,
                    index,
                };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    body(&mut sub, index)
                })) {
                    Ok(out) => {
                        // Sign off, flushing any trailing sends in the same
                        // message so the parent's cycle accounting stays
                        // deterministic.
                        let sends = std::mem::take(&mut sub.pending);
                        let _ = to_parent.send((index, ToParent::Done { sends }));
                        out
                    }
                    Err(payload) => {
                        let _ = to_parent.send((index, ToParent::Panicked));
                        std::panic::resume_unwind(payload);
                    }
                }
            }));
        }
        drop(to_parent_tx);

        let mut live: Vec<bool> = vec![true; k];

        while live.iter().any(|l| *l) {
            // Collect, from every live instance, either a Round submission
            // or its termination (a finishing instance sends a final
            // flush-Round followed by Done; both are consumed here).
            let mut round_sends: Vec<(u32, Vec<(PartyId, Bytes)>)> = Vec::new();
            let mut waiting: Vec<bool> = vec![false; k];
            while (0..k).any(|i| live[i] && !waiting[i]) {
                // ca-lint: allow(panic-path) — in-process executor channel, not a network path
                let (index, msg) = to_parent_rx.recv().expect("instances alive");
                match msg {
                    ToParent::Round { sends } => {
                        round_sends.push((index as u32, sends));
                        waiting[index] = true;
                    }
                    ToParent::Done { sends } => {
                        round_sends.push((index as u32, sends));
                        live[index] = false;
                        waiting[index] = false;
                    }
                    ToParent::Panicked => {
                        live[index] = false;
                        waiting[index] = false;
                    }
                }
            }
            let anyone_waiting = waiting.iter().any(|w| *w);

            // One physical round carries this cycle's logical round. If no
            // instance is waiting, trailing sends are merely buffered into
            // the parent (flushed at its next round boundary).
            for (instance, sends) in round_sends {
                for (to, payload) in sends {
                    let tagged = Tagged {
                        instance,
                        payload: payload.to_vec(),
                    };
                    ctx.send_bytes(to, Bytes::from(tagged.encode_to_vec()));
                }
            }
            if !anyone_waiting {
                break;
            }
            let physical = ctx.next_round();

            // Demultiplex into per-instance inboxes.
            let mut inboxes: Vec<Inbox> = (0..k).map(|_| Inbox::with_parties(n)).collect();
            for sender in 0..n {
                for raw in physical.raw_from(PartyId(sender)) {
                    if let Ok(tagged) = Tagged::decode_from_slice(raw) {
                        let idx = tagged.instance as usize;
                        if idx < k {
                            inboxes[idx].push(PartyId(sender), Bytes::from(tagged.payload));
                        }
                    }
                }
            }
            for (index, inbox) in inboxes.into_iter().enumerate() {
                if waiting[index] {
                    waiting[index] = false;
                    let _ = inbox_txs[index].send(inbox);
                }
            }
        }

        // Join EVERY instance before surfacing a panic (the TcpCluster
        // join discipline): stopping at the first failure would drop the
        // surviving instances' results and could leave them blocked.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        let mut outputs = Vec::with_capacity(k);
        let mut first_panic = None;
        for res in joined {
            match res {
                Ok(out) => outputs.push(out),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            // Re-raise the ORIGINAL payload so callers see the real
            // failure, not a generic "instance panicked".
            std::panic::resume_unwind(payload);
        }
        outputs
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommExt, Sim};

    #[test]
    fn parallel_instances_are_isolated() {
        // Each instance exchanges its own tagged value; cross-talk would
        // corrupt the per-instance sums.
        let report = Sim::new(4).run(|ctx, _id| {
            run_parallel(ctx, 3, |sub, idx| {
                let inbox = sub.exchange(&(idx as u64 * 1000));
                inbox
                    .decode_each::<u64>()
                    .into_iter()
                    .map(|(_, v)| v)
                    .sum::<u64>()
            })
        });
        for out in report.honest_outputs() {
            assert_eq!(out, &vec![0u64, 4000, 8000]);
        }
        // All three instances shared ONE physical round.
        assert_eq!(report.metrics.rounds, 1);
    }

    #[test]
    fn uneven_round_counts() {
        // Instance i runs i+1 rounds; physical rounds = max = 3.
        let report = Sim::new(3).run(|ctx, _id| {
            run_parallel(ctx, 3, |sub, idx| {
                let mut heard = 0;
                for r in 0..=idx as u64 {
                    let inbox = sub.exchange(&r);
                    heard += inbox.decode_each::<u64>().len();
                }
                heard
            })
        });
        assert_eq!(report.metrics.rounds, 3);
        for out in report.honest_outputs() {
            assert_eq!(out, &vec![3, 6, 9]);
        }
    }

    #[test]
    fn nested_real_protocol() {
        // Parallel binary phase-king-like voting: just verify round sharing
        // with a nontrivial multi-round body and distinct inputs per party.
        let report = Sim::new(4).run(|ctx, id| {
            run_parallel(ctx, 2, |sub, idx| {
                let mut v = (id.index() + idx) as u64;
                for _ in 0..3 {
                    let inbox = sub.exchange(&v);
                    v = inbox
                        .decode_each::<u64>()
                        .into_iter()
                        .map(|(_, x)| x)
                        .max()
                        .unwrap_or(v);
                }
                v
            })
        });
        assert_eq!(report.metrics.rounds, 3);
        for out in report.honest_outputs() {
            assert_eq!(out, &vec![3, 4]); // max over ids (0..=3) + idx
        }
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn zero_instances_rejected() {
        Sim::new(2).run(|ctx, _| run_parallel(ctx, 0, |_, _| ()));
    }

    /// Single-party transport that just reflects sends back, so the panic
    /// path can be exercised without the simulator re-wrapping payloads.
    struct Loopback {
        pending: Vec<Bytes>,
    }

    impl Comm for Loopback {
        fn n(&self) -> usize {
            1
        }
        fn t(&self) -> usize {
            0
        }
        fn me(&self) -> PartyId {
            PartyId(0)
        }
        fn send_bytes(&mut self, _to: PartyId, payload: Bytes) {
            self.pending.push(payload);
        }
        fn next_round(&mut self) -> Inbox {
            let mut inbox = Inbox::with_parties(1);
            for payload in self.pending.drain(..) {
                inbox.push(PartyId(0), payload);
            }
            inbox
        }
        fn push_scope(&mut self, _name: &str) {}
        fn pop_scope(&mut self) {}
    }

    /// An instance that panics mid-protocol — after a round in which a
    /// sibling already finished — must not deadlock the parent (which
    /// would otherwise wait forever for the dead instance's submission)
    /// and must surface its ORIGINAL panic payload after all instances
    /// are joined.
    #[test]
    #[should_panic(expected = "instance 1 exploded")]
    fn instance_panic_propagates_original_payload() {
        let mut ctx = Loopback {
            pending: Vec::new(),
        };
        run_parallel(&mut ctx, 2, |sub, idx| {
            if idx == 1 {
                let _ = sub.exchange(&1u64);
                panic!("instance 1 exploded");
            }
            // Instance 0 finishes immediately; only instance 1 is live
            // when the panic happens.
        });
    }
}
