//! The adversary interface (paper §2: adaptive, rushing, up to `t < n/3`).

use bytes::Bytes;

use crate::PartyId;

/// One message injected by the adversary: `from` must be a corrupted party.
#[derive(Debug, Clone)]
pub struct SendSpec {
    /// Corrupted sender the message is attributed to (channels are
    /// authenticated, so the adversary cannot forge honest senders).
    pub from: PartyId,
    /// Recipient.
    pub to: PartyId,
    /// Arbitrary payload (may be malformed).
    pub payload: Bytes,
}

/// What the adversary sees when it is invoked for round `r`.
///
/// Invocation happens *after* the honest parties have committed their
/// round-`r` messages — this models a **rushing** adversary: corrupted
/// parties' round-`r` messages may depend on the honest round-`r` messages.
#[derive(Debug)]
pub struct RoundView<'a> {
    /// Number of parties.
    pub n: usize,
    /// Corruption budget.
    pub t: usize,
    /// Current round number (0-based).
    pub round: u64,
    /// Parties currently corrupted (sorted).
    pub corrupted: &'a [PartyId],
    /// Every honest message of this round as `(from, to, payload)`,
    /// ordered by sender. Messages addressed to corrupted parties are
    /// included — the adversary reads all its parties' channels.
    pub honest_sends: &'a [(PartyId, PartyId, Bytes)],
}

impl RoundView<'_> {
    /// Honest round-`r` messages addressed to `to`.
    pub fn sends_to(&self, to: PartyId) -> impl Iterator<Item = &(PartyId, PartyId, Bytes)> {
        self.honest_sends.iter().filter(move |(_, t2, _)| *t2 == to)
    }

    /// Honest round-`r` messages originating from `from`.
    pub fn sends_from(&self, from: PartyId) -> impl Iterator<Item = &(PartyId, PartyId, Bytes)> {
        self.honest_sends.iter().filter(move |(f, _, _)| *f == from)
    }

    /// Parties not currently corrupted, ascending.
    pub fn honest_parties(&self) -> Vec<PartyId> {
        (0..self.n)
            .map(PartyId)
            .filter(|p| !self.corrupted.contains(p))
            .collect()
    }
}

/// The adversary's round-`r` decisions.
#[derive(Debug, Default)]
pub struct RoundActions {
    /// Additional parties to corrupt, effective *this* round: their honest
    /// round-`r` messages are suppressed and the adversary speaks for them
    /// from now on. The executor enforces the global budget `t`.
    pub corrupt: Vec<PartyId>,
    /// Messages sent by corrupted parties this round.
    pub sends: Vec<SendSpec>,
}

/// A byzantine adversary controlling the corrupted parties.
///
/// Strategy implementations live in `ca-adversary`; this trait is defined
/// here so the executor and the strategies don't depend on each other.
pub trait Adversary: Send {
    /// Called once per round with the rushing view; returns the corrupted
    /// parties' messages (and any adaptive-corruption requests).
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions;
}

/// The trivial adversary: corrupted parties stay silent (crash-like from
/// round 0). Also the right choice when no party is corrupted at all.
#[derive(Debug, Default, Clone)]
pub struct Silent;

impl Adversary for Silent {
    fn on_round(&mut self, _view: &RoundView<'_>) -> RoundActions {
        RoundActions::default()
    }
}

impl<F> Adversary for F
where
    F: FnMut(&RoundView<'_>) -> RoundActions + Send,
{
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        self(view)
    }
}

impl Adversary for Box<dyn Adversary> {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        (**self).on_round(view)
    }
}
