//! Deterministic lock-step simulator.

use std::any::Any;
use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::adversary::{Adversary, RoundView, Silent};
use crate::{Comm, Inbox, Metrics, PartyId};

/// How a party participates in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Corruption {
    /// Runs the protocol faithfully; counted in `BITSℓ`, output checked.
    #[default]
    Honest,
    /// Runs the protocol code faithfully **but is corrupted**: the paper
    /// notes byzantine parties "can act as honest parties with inputs of
    /// their own choice". Its bits are charged to the adversary and its
    /// output is discarded.
    LyingHonest,
    /// Fully adversary-controlled: no protocol thread; the [`Adversary`]
    /// speaks for it each round.
    Scripted,
}

/// Result of a simulated run.
#[derive(Debug)]
pub struct RunReport<O> {
    /// Per-party outputs; `Some` only for parties honest at the end of the
    /// run (adaptively corrupted or lying parties yield `None`).
    pub outputs: Vec<Option<O>>,
    /// Exact communication/round measurements.
    pub metrics: Metrics,
    /// Parties corrupted by the end of the run (lying + scripted).
    pub corrupted: Vec<PartyId>,
}

impl<O> RunReport<O> {
    /// Outputs of honest parties only.
    pub fn honest_outputs(&self) -> Vec<&O> {
        self.outputs.iter().filter_map(|o| o.as_ref()).collect()
    }

    /// Parties honest at the end of the run.
    pub fn honest_parties(&self) -> Vec<PartyId> {
        (0..self.outputs.len())
            .map(PartyId)
            .filter(|p| !self.corrupted.contains(p))
            .collect()
    }
}

/// Builder/executor for one synchronous protocol run (paper §2 model).
///
/// One OS thread per protocol-running party; the executor enforces lock-step
/// rounds, meters honest communication, and gives the adversary its rushing
/// view each round.
pub struct Sim {
    n: usize,
    t: usize,
    corruption: Vec<Corruption>,
    adversary: Box<dyn Adversary>,
    max_rounds: u64,
}

impl Sim {
    /// A run with `n` parties, all honest, `t = ⌊(n−1)/3⌋`, and the
    /// [`Silent`] adversary.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one party");
        Self {
            n,
            t: crate::max_faults(n),
            corruption: vec![Corruption::Honest; n],
            adversary: Box::new(Silent),
            max_rounds: 1_000_000,
        }
    }

    /// Overrides the corruption budget `t`.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n`.
    pub fn with_t(mut self, t: usize) -> Self {
        assert!(
            3 * t < self.n,
            "resilience requires t < n/3 (t = {t}, n = {})",
            self.n
        );
        self.t = t;
        self
    }

    /// Marks `party` as corrupted from the start, in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if the static corruption count would exceed `t`.
    pub fn corrupt(mut self, party: PartyId, mode: Corruption) -> Self {
        self.corruption[party.0] = mode;
        let count = self
            .corruption
            .iter()
            .filter(|c| **c != Corruption::Honest)
            .count();
        assert!(
            count <= self.t,
            "more than t = {} static corruptions",
            self.t
        );
        self
    }

    /// Installs the adversary controlling scripted parties.
    pub fn with_adversary(mut self, adversary: impl Adversary + 'static) -> Self {
        self.adversary = Box::new(adversary);
        self
    }

    /// Overrides the runaway-protocol safety valve (default 1 000 000 rounds).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Runs `party(ctx, id)` for every protocol-running party in lock-step.
    ///
    /// # Panics
    ///
    /// Propagates any panic from honest protocol code (a protocol bug), and
    /// panics if the round limit is exceeded or the adversary oversteps its
    /// corruption budget.
    pub fn run<O, F>(mut self, party: F) -> RunReport<O>
    where
        O: Send,
        F: Fn(&mut dyn Comm, PartyId) -> O + Sync,
    {
        install_quiet_shutdown_hook();
        let n = self.n;
        let t = self.t;
        let (submit_tx, submit_rx) = unbounded::<Submission<O>>();
        let mut deliver_txs: Vec<Option<Sender<Directive>>> = Vec::with_capacity(n);
        let mut deliver_rxs: Vec<Option<Receiver<Directive>>> = Vec::with_capacity(n);
        for mode in &self.corruption {
            if *mode == Corruption::Scripted {
                deliver_txs.push(None);
                deliver_rxs.push(None);
            } else {
                let (tx, rx) = unbounded();
                deliver_txs.push(Some(tx));
                deliver_rxs.push(Some(rx));
            }
        }

        let mut report = RunReport {
            outputs: (0..n).map(|_| None).collect(),
            metrics: Metrics::default(),
            corrupted: Vec::new(),
        };

        std::thread::scope(|scope| {
            // If the executor exits this closure by ANY path — including a
            // panic (budget violation, protocol-bug propagation) — every
            // party thread must be released from its round barrier, or the
            // scope's implicit join would deadlock.
            struct ShutdownGuard<'a>(&'a [Option<Sender<Directive>>]);
            impl Drop for ShutdownGuard<'_> {
                fn drop(&mut self) {
                    for tx in self.0.iter().flatten() {
                        let _ = tx.send(Directive::Shutdown);
                    }
                }
            }
            let _guard = ShutdownGuard(&deliver_txs);

            // Spawn protocol threads (honest + lying-honest parties).
            for (i, rx) in deliver_rxs.into_iter().enumerate() {
                let Some(rx) = rx else { continue };
                let submit_tx = submit_tx.clone();
                let party = &party;
                scope.spawn(move || {
                    let mut ctx = PartyCtx {
                        n,
                        t,
                        me: PartyId(i),
                        pending: Vec::new(),
                        scopes: Vec::new(),
                        submit_tx: submit_tx.clone(),
                        deliver_rx: rx,
                    };
                    let result =
                        panic::catch_unwind(AssertUnwindSafe(|| party(&mut ctx, PartyId(i))));
                    match result {
                        Ok(output) => {
                            let _ = submit_tx.send(Submission::Done {
                                from: i,
                                output,
                                sends: std::mem::take(&mut ctx.pending),
                            });
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<NetShutdown>().is_some() {
                                // Executor-initiated teardown; exit quietly.
                            } else {
                                let _ = submit_tx.send(Submission::Panicked {
                                    from: i,
                                    info: panic_message(&payload),
                                });
                            }
                        }
                    }
                });
            }
            drop(submit_tx);

            let mut corrupted: BTreeSet<PartyId> = self
                .corruption
                .iter()
                .enumerate()
                .filter(|(_, c)| **c != Corruption::Honest)
                .map(|(i, _)| PartyId(i))
                .collect();
            // Parties whose protocol thread is still running.
            let mut live: BTreeSet<usize> = (0..n)
                .filter(|i| self.corruption[*i] != Corruption::Scripted)
                .collect();
            let mut round: u64 = 0;

            'rounds: loop {
                // --- Collect one submission from every live thread. ---
                let mut waiting: Vec<usize> = Vec::new();
                let mut sends: Vec<(usize, Vec<(PartyId, Bytes)>)> = Vec::new();
                let mut scopes: Vec<(usize, String)> = Vec::new();
                let mut expected = live.clone();
                while !expected.is_empty() {
                    // ca-lint: allow(panic-path) — in-process simulator channel, not a network path
                    let sub = submit_rx.recv().expect("live parties hold senders");
                    match sub {
                        Submission::Round {
                            from,
                            sends: s,
                            scope,
                        } => {
                            // Stray submissions from adaptively-corrupted
                            // zombies are discarded.
                            if !expected.remove(&from) {
                                continue;
                            }
                            waiting.push(from);
                            scopes.push((from, scope));
                            sends.push((from, s));
                        }
                        Submission::Done {
                            from,
                            output,
                            sends: s,
                        } => {
                            if !expected.remove(&from) {
                                continue;
                            }
                            live.remove(&from);
                            if !corrupted.contains(&PartyId(from)) {
                                report.outputs[from] = Some(output);
                            }
                            sends.push((from, s));
                        }
                        Submission::Panicked { from, info } => {
                            // ca-lint: allow(panic-path) — the simulator deliberately surfaces
                            panic!("party P{from} panicked: {info}"); // a party-thread panic to the driving test
                        }
                    }
                }
                sends.sort_by_key(|(from, _)| *from);
                waiting.sort_unstable();

                // --- Rushing adversary phase. ---
                let honest_sends: Vec<(PartyId, PartyId, Bytes)> = sends
                    .iter()
                    .filter(|(from, _)| !corrupted.contains(&PartyId(*from)))
                    .flat_map(|(from, msgs)| {
                        msgs.iter()
                            .map(|(to, payload)| (PartyId(*from), *to, payload.clone()))
                    })
                    .collect();
                let corrupted_list: Vec<PartyId> = corrupted.iter().copied().collect();
                let view = RoundView {
                    n,
                    t,
                    round,
                    corrupted: &corrupted_list,
                    honest_sends: &honest_sends,
                };
                let actions = self.adversary.on_round(&view);

                // Adaptive corruptions take effect this round.
                for p in actions.corrupt {
                    assert!(p.0 < n, "adversary corrupted nonexistent {p}");
                    if corrupted.insert(p) {
                        assert!(
                            corrupted.len() <= t,
                            "adversary exceeded corruption budget t = {t}"
                        );
                        report.outputs[p.0] = None;
                        // Tear down the party's thread if it is still running.
                        if live.remove(&p.0) {
                            if let Some(tx) = &deliver_txs[p.0] {
                                let _ = tx.send(Directive::Shutdown);
                            }
                        }
                    }
                }

                // --- Metering + delivery assembly. ---
                let mut inboxes: Vec<Inbox> = (0..n).map(|_| Inbox::with_parties(n)).collect();
                for (from, msgs) in &sends {
                    let from_id = PartyId(*from);
                    let is_corrupt = corrupted.contains(&from_id);
                    if is_corrupt && self.corruption[*from] != Corruption::LyingHonest {
                        // Adaptively corrupted this round: its honest sends are
                        // suppressed (the adversary replaces them). Lying
                        // parties' sends still flow — they *are* the attack.
                        continue;
                    }
                    let scope = scopes
                        .iter()
                        .find(|(p, _)| p == from)
                        .map(|(_, s)| s.as_str())
                        .unwrap_or("_root");
                    for (to, payload) in msgs {
                        if *to != from_id {
                            // Self-delivery is free on a real network.
                            if is_corrupt {
                                report.metrics.record_adversary_send(payload.len());
                            } else {
                                report.metrics.record_honest_send(scope, payload.len());
                            }
                        }
                        if to.0 < n {
                            inboxes[to.0].push(from_id, payload.clone());
                        }
                    }
                }
                for spec in actions.sends {
                    assert!(
                        corrupted.contains(&spec.from),
                        "adversary sent from honest {} (channels are authenticated)",
                        spec.from
                    );
                    assert!(spec.to.0 < n, "adversary sent to nonexistent {}", spec.to);
                    report.metrics.record_adversary_send(spec.payload.len());
                    inboxes[spec.to.0].push(spec.from, spec.payload);
                }

                if waiting.is_empty() {
                    // Nobody is blocked on a round boundary: the protocol is over.
                    break 'rounds;
                }

                // Round attribution: innermost scope of the lowest-id honest
                // waiting party (all honest parties of a lock-step protocol
                // share the same scope).
                let round_scope = waiting
                    .iter()
                    .find(|p| !corrupted.contains(&PartyId(**p)))
                    .and_then(|p| scopes.iter().find(|(q, _)| q == p))
                    .map(|(_, s)| s.clone())
                    .unwrap_or_else(|| "_root".to_owned());
                report.metrics.record_round(&round_scope);

                // --- Deliver. ---
                for (i, inbox) in inboxes.into_iter().enumerate() {
                    if waiting.contains(&i) {
                        if let Some(tx) = &deliver_txs[i] {
                            let _ = tx.send(Directive::Deliver(inbox));
                        }
                    }
                }

                round += 1;
                assert!(
                    round <= self.max_rounds,
                    "round limit {} exceeded (runaway protocol?)",
                    self.max_rounds
                );
            }

            // Tear down any remaining threads (e.g. zombies of adaptive
            // corruption that were mid-computation).
            for tx in deliver_txs.iter().flatten() {
                let _ = tx.send(Directive::Shutdown);
            }
            report.corrupted = corrupted.into_iter().collect();
        });

        report
    }
}

/// Panic payload used for executor-initiated thread teardown.
struct NetShutdown;

/// Executor-initiated teardown unwinds party threads via a `NetShutdown`
/// panic that is always caught; the default panic hook would still print a
/// scary backtrace for each torn-down zombie (e.g. under adaptive
/// corruption). Install, once, a wrapper hook that stays silent for
/// exactly that payload.
fn install_quiet_shutdown_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<NetShutdown>().is_none() {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

enum Submission<O> {
    Round {
        from: usize,
        sends: Vec<(PartyId, Bytes)>,
        scope: String,
    },
    Done {
        from: usize,
        output: O,
        sends: Vec<(PartyId, Bytes)>,
    },
    Panicked {
        from: usize,
        info: String,
    },
}

enum Directive {
    Deliver(Inbox),
    Shutdown,
}

struct PartyCtx<O> {
    n: usize,
    t: usize,
    me: PartyId,
    pending: Vec<(PartyId, Bytes)>,
    scopes: Vec<String>,
    submit_tx: Sender<Submission<O>>,
    deliver_rx: Receiver<Directive>,
}

impl<O> Comm for PartyCtx<O> {
    fn n(&self) -> usize {
        self.n
    }

    fn t(&self) -> usize {
        self.t
    }

    fn me(&self) -> PartyId {
        self.me
    }

    fn send_bytes(&mut self, to: PartyId, payload: Bytes) {
        assert!(to.0 < self.n, "send to nonexistent {to}");
        self.pending.push((to, payload));
    }

    fn next_round(&mut self) -> Inbox {
        let sends = std::mem::take(&mut self.pending);
        let scope = if self.scopes.is_empty() {
            "_root".to_owned()
        } else {
            self.scopes.join("/")
        };
        self.submit_tx
            .send(Submission::Round {
                from: self.me.0,
                sends,
                scope,
            })
            // ca-lint: allow(panic-path) — in-process simulator channel, not a network path
            .expect("executor alive");
        match self.deliver_rx.recv() {
            Ok(Directive::Deliver(inbox)) => inbox,
            Ok(Directive::Shutdown) | Err(_) => panic::panic_any(NetShutdown),
        }
    }

    fn push_scope(&mut self, name: &str) {
        self.scopes.push(name.to_owned());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{RoundActions, SendSpec};
    use crate::CommExt;
    use ca_codec::Encode;

    /// Every party sends its id to all; checks everyone hears everyone.
    #[test]
    fn all_to_all_delivery() {
        let report = Sim::new(5).run(|ctx, id| {
            let inbox = ctx.exchange(&(id.0 as u64));
            inbox.decode_each::<u64>()
        });
        for out in report.honest_outputs() {
            let values: Vec<u64> = out.iter().map(|(_, v)| *v).collect();
            assert_eq!(values, vec![0, 1, 2, 3, 4]);
        }
        assert_eq!(report.metrics.rounds, 1);
        // 5 parties × 4 non-self messages, varint id = 1 byte each.
        assert_eq!(report.metrics.honest_msgs, 20);
        assert_eq!(report.metrics.honest_bits, 20 * 8);
    }

    #[test]
    fn multi_round_protocol() {
        let report = Sim::new(4).run(|ctx, id| {
            let mut sum = 0u64;
            for r in 0..3u64 {
                let inbox = ctx.exchange(&(r + id.0 as u64));
                sum += inbox
                    .decode_each::<u64>()
                    .iter()
                    .map(|(_, v)| v)
                    .sum::<u64>();
            }
            sum
        });
        assert_eq!(report.metrics.rounds, 3);
        let outs = report.honest_outputs();
        assert!(outs.iter().all(|&&o| o == **outs.first().unwrap()));
    }

    #[test]
    fn scripted_party_is_adversary_driven() {
        struct Echo;
        impl Adversary for Echo {
            fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
                // Rushing: echo back P0's message content + 1 to everyone.
                let mut actions = RoundActions::default();
                if let Some((_, _, payload)) = view.sends_from(PartyId(0)).next() {
                    let v = <u64 as ca_codec::Decode>::decode_from_slice(payload).unwrap();
                    for to in 0..view.n {
                        actions.sends.push(SendSpec {
                            from: PartyId(3),
                            to: PartyId(to),
                            payload: (v + 1).encode_to_vec().into(),
                        });
                    }
                }
                actions
            }
        }
        let report = Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(Echo)
            .run(|ctx, id| {
                if id.0 == 3 {
                    unreachable!("scripted party must not run protocol code");
                }
                let inbox = ctx.exchange(&42u64);
                inbox.decode_from::<u64>(PartyId(3))
            });
        assert_eq!(report.outputs[3], None);
        for out in report.honest_outputs() {
            assert_eq!(*out, Some(43)); // rushing echo observed same round
        }
        assert!(report.metrics.adversary_bits > 0);
    }

    #[test]
    fn lying_honest_runs_protocol_but_is_excluded() {
        let report = Sim::new(4)
            .corrupt(PartyId(1), Corruption::LyingHonest)
            .run(|ctx, id| {
                let inbox = ctx.exchange(&(if id.0 == 1 { 999u64 } else { 7 }));
                inbox
                    .decode_each::<u64>()
                    .iter()
                    .map(|(_, v)| *v)
                    .sum::<u64>()
            });
        // Lying party's message was delivered (999 + 3×7 = 1020)…
        for out in report.honest_outputs() {
            assert_eq!(*out, 1020);
        }
        // …but its output is discarded and its bits are the adversary's.
        assert_eq!(report.outputs[1], None);
        assert_eq!(report.metrics.honest_msgs, 9); // 3 honest × 3 non-self
        assert_eq!(report.metrics.adversary_bits, 3 * 2 * 8); // 999 = 2-byte varint
    }

    #[test]
    fn adaptive_corruption_suppresses_and_silences() {
        struct CorruptP0AtRound1;
        impl Adversary for CorruptP0AtRound1 {
            fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
                let mut a = RoundActions::default();
                if view.round == 1 {
                    a.corrupt.push(PartyId(0));
                }
                a
            }
        }
        let report = Sim::new(4)
            .with_adversary(CorruptP0AtRound1)
            .run(|ctx, _id| {
                let r0 = ctx.exchange(&1u64).decode_each::<u64>().len();
                let r1 = ctx.exchange(&2u64).decode_each::<u64>().len();
                (r0, r1)
            });
        assert_eq!(report.outputs[0], None);
        assert_eq!(report.corrupted, vec![PartyId(0)]);
        for out in report.honest_outputs() {
            assert_eq!(*out, (4, 3)); // P0 heard in round 0, suppressed in round 1
        }
    }

    #[test]
    fn scopes_attribute_bits_and_rounds() {
        let report = Sim::new(3).run(|ctx, _id| {
            ctx.scoped("phase_a", |ctx| {
                ctx.exchange(&1u64);
            });
            ctx.scoped("phase_b", |ctx| {
                ctx.scoped("inner", |ctx| {
                    ctx.exchange(&2u64);
                    ctx.exchange(&3u64);
                });
            });
        });
        assert_eq!(report.metrics.per_scope["phase_a"].rounds, 1);
        assert_eq!(report.metrics.per_scope["phase_b/inner"].rounds, 2);
        assert_eq!(report.metrics.scope_subtree("phase_b").rounds, 2);
        assert_eq!(
            report.metrics.honest_bits,
            report.metrics.scope_subtree("phase_a").honest_bits
                + report.metrics.scope_subtree("phase_b").honest_bits
        );
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn protocol_bug_propagates() {
        Sim::new(3).run(|ctx, id| {
            ctx.exchange(&1u64);
            if id.0 == 1 {
                panic!("intentional bug");
            }
            ctx.exchange(&2u64);
        });
    }

    #[test]
    #[should_panic(expected = "round limit")]
    fn runaway_protocol_hits_round_limit() {
        Sim::new(2).with_max_rounds(10).run(|ctx, _id| loop {
            ctx.exchange(&0u8);
        });
    }

    #[test]
    #[should_panic(expected = "corruption budget")]
    fn adversary_cannot_exceed_t() {
        struct GreedyCorruptor;
        impl Adversary for GreedyCorruptor {
            fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
                RoundActions {
                    corrupt: (0..view.n).map(PartyId).collect(),
                    sends: vec![],
                }
            }
        }
        Sim::new(4).with_adversary(GreedyCorruptor).run(|ctx, _id| {
            ctx.exchange(&0u8);
        });
    }

    #[test]
    #[should_panic(expected = "authenticated")]
    fn adversary_cannot_forge_honest_sender() {
        struct Forger;
        impl Adversary for Forger {
            fn on_round(&mut self, _view: &RoundView<'_>) -> RoundActions {
                RoundActions {
                    corrupt: vec![],
                    sends: vec![SendSpec {
                        from: PartyId(0), // honest!
                        to: PartyId(1),
                        payload: Bytes::from_static(b"forged"),
                    }],
                }
            }
        }
        Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(Forger)
            .run(|ctx, _id| {
                ctx.exchange(&0u8);
            });
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            Sim::new(5)
                .corrupt(PartyId(2), Corruption::LyingHonest)
                .run(|ctx, id| {
                    let mut acc = Vec::new();
                    for r in 0..4u64 {
                        let inbox = ctx.exchange(&(id.0 as u64 * 100 + r));
                        acc.push(inbox.decode_each::<u64>());
                    }
                    acc
                })
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.outputs.iter().collect::<Vec<_>>(),
            b.outputs.iter().collect::<Vec<_>>()
        );
        assert_eq!(a.metrics.honest_bits, b.metrics.honest_bits);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }
}
