//! Deterministic lock-step simulator.

use std::any::Any;
use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use bytes::Bytes;
use ca_trace::{Event as TraceEvent, NullSink, Record, TraceSink, ROOT_SCOPE};
use crossbeam::channel::{unbounded, Receiver, Sender};

use std::collections::BTreeMap;

use crate::adversary::{Adversary, RoundView, Silent};
use crate::delay::EdgeDelays;
use crate::{Comm, Inbox, Metrics, PartyId};

/// How a party participates in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Corruption {
    /// Runs the protocol faithfully; counted in `BITSℓ`, output checked.
    #[default]
    Honest,
    /// Runs the protocol code faithfully **but is corrupted**: the paper
    /// notes byzantine parties "can act as honest parties with inputs of
    /// their own choice". Its bits are charged to the adversary and its
    /// output is discarded.
    LyingHonest,
    /// Fully adversary-controlled: no protocol thread; the [`Adversary`]
    /// speaks for it each round.
    Scripted,
}

/// Result of a simulated run.
#[derive(Debug)]
pub struct RunReport<O> {
    /// Per-party outputs; `Some` only for parties honest at the end of the
    /// run (adaptively corrupted or lying parties yield `None`).
    pub outputs: Vec<Option<O>>,
    /// Exact communication/round measurements.
    pub metrics: Metrics,
    /// Parties corrupted by the end of the run (lying + scripted).
    pub corrupted: Vec<PartyId>,
}

impl<O> RunReport<O> {
    /// Outputs of honest parties only.
    pub fn honest_outputs(&self) -> Vec<&O> {
        self.outputs.iter().filter_map(|o| o.as_ref()).collect()
    }

    /// Parties honest at the end of the run.
    pub fn honest_parties(&self) -> Vec<PartyId> {
        (0..self.outputs.len())
            .map(PartyId)
            .filter(|p| !self.corrupted.contains(p))
            .collect()
    }
}

/// Builder/executor for one synchronous protocol run (paper §2 model).
///
/// One OS thread per protocol-running party; the executor enforces lock-step
/// rounds, meters honest communication, and gives the adversary its rushing
/// view each round.
pub struct Sim {
    n: usize,
    t: usize,
    corruption: Vec<Corruption>,
    adversary: Box<dyn Adversary>,
    max_rounds: u64,
    sink: Arc<dyn TraceSink>,
    delay_model: Option<DelayModel>,
}

/// Per-run state of the seeded delay injection (see [`crate::DelayedSim`]).
struct DelayModel {
    delays: EdgeDelays,
    /// Round length in delay time units; a sampled delay `d` postpones
    /// delivery by `⌊d/delta⌋` rounds.
    delta: u64,
    /// Global message counter feeding the sampler — deterministic because
    /// sends are processed in sorted (sender, submission) order.
    seq: u64,
    /// Messages held for a future round, keyed by arrival round.
    held: BTreeMap<u64, Vec<(PartyId, PartyId, Bytes)>>,
}

impl Sim {
    /// A run with `n` parties, all honest, `t = ⌊(n−1)/3⌋`, and the
    /// [`Silent`] adversary.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one party");
        Self {
            n,
            t: crate::max_faults(n),
            corruption: vec![Corruption::Honest; n],
            adversary: Box::new(Silent),
            max_rounds: 1_000_000,
            sink: Arc::new(NullSink),
            delay_model: None,
        }
    }

    /// Routes every protocol send through a seeded [`EdgeDelays`] sampler:
    /// delivery is postponed by `⌊delay/delta⌋` rounds (or dropped). Used
    /// via [`crate::DelayedSim`]; breaks the perfect-synchrony guarantee
    /// on purpose.
    #[must_use]
    pub(crate) fn with_delay_model(mut self, delays: EdgeDelays, delta: u64) -> Self {
        self.delay_model = Some(DelayModel {
            delays,
            delta: delta.max(1),
            seq: 0,
            held: BTreeMap::new(),
        });
        self
    }

    /// Overrides the corruption budget `t`.
    ///
    /// # Panics
    ///
    /// Panics unless `3t < n`.
    pub fn with_t(mut self, t: usize) -> Self {
        assert!(
            3 * t < self.n,
            "resilience requires t < n/3 (t = {t}, n = {})",
            self.n
        );
        self.t = t;
        self
    }

    /// Marks `party` as corrupted from the start, in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if the static corruption count would exceed `t`.
    pub fn corrupt(mut self, party: PartyId, mode: Corruption) -> Self {
        self.corruption[party.0] = mode;
        let count = self
            .corruption
            .iter()
            .filter(|c| **c != Corruption::Honest)
            .count();
        assert!(
            count <= self.t,
            "more than t = {} static corruptions",
            self.t
        );
        self
    }

    /// Installs the adversary controlling scripted parties.
    pub fn with_adversary(mut self, adversary: impl Adversary + 'static) -> Self {
        self.adversary = Box::new(adversary);
        self
    }

    /// Overrides the runaway-protocol safety valve (default 1 000 000 rounds).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Attaches a trace sink; every event of the run is recorded into it.
    ///
    /// Party threads buffer their records locally and ship them with each
    /// round submission; the executor flushes everything in a canonical
    /// order (round start → per-party records sorted by id → fault
    /// injections → sends → deliveries → round end), so two runs of the
    /// same protocol with the same inputs produce *byte-identical* JSONL
    /// traces regardless of thread scheduling — that determinism is what
    /// makes `ca-trace diff` meaningful.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Runs `party(ctx, id)` for every protocol-running party in lock-step.
    ///
    /// # Panics
    ///
    /// Propagates any panic from honest protocol code (a protocol bug), and
    /// panics if the round limit is exceeded or the adversary oversteps its
    /// corruption budget.
    pub fn run<O, F>(mut self, party: F) -> RunReport<O>
    where
        O: Send,
        F: Fn(&mut dyn Comm, PartyId) -> O + Sync,
    {
        install_quiet_shutdown_hook();
        let n = self.n;
        let t = self.t;
        let sink = Arc::clone(&self.sink);
        let tracing = sink.enabled();
        let (submit_tx, submit_rx) = unbounded::<Submission<O>>();
        let mut deliver_txs: Vec<Option<Sender<Directive>>> = Vec::with_capacity(n);
        let mut deliver_rxs: Vec<Option<Receiver<Directive>>> = Vec::with_capacity(n);
        for mode in &self.corruption {
            if *mode == Corruption::Scripted {
                deliver_txs.push(None);
                deliver_rxs.push(None);
            } else {
                let (tx, rx) = unbounded();
                deliver_txs.push(Some(tx));
                deliver_rxs.push(Some(rx));
            }
        }

        let mut report = RunReport {
            outputs: (0..n).map(|_| None).collect(),
            metrics: Metrics::default(),
            corrupted: Vec::new(),
        };

        std::thread::scope(|scope| {
            // If the executor exits this closure by ANY path — including a
            // panic (budget violation, protocol-bug propagation) — every
            // party thread must be released from its round barrier, or the
            // scope's implicit join would deadlock.
            struct ShutdownGuard<'a>(&'a [Option<Sender<Directive>>]);
            impl Drop for ShutdownGuard<'_> {
                fn drop(&mut self) {
                    for tx in self.0.iter().flatten() {
                        let _ = tx.send(Directive::Shutdown);
                    }
                }
            }
            let _guard = ShutdownGuard(&deliver_txs);

            // Spawn protocol threads (honest + lying-honest parties).
            for (i, rx) in deliver_rxs.into_iter().enumerate() {
                let Some(rx) = rx else { continue };
                let submit_tx = submit_tx.clone();
                let party = &party;
                scope.spawn(move || {
                    let mut ctx = PartyCtx {
                        n,
                        t,
                        me: PartyId(i),
                        pending: Vec::new(),
                        scopes: Vec::new(),
                        submit_tx: submit_tx.clone(),
                        deliver_rx: rx,
                        round: 0,
                        trace_on: tracing,
                        trace_buf: Vec::new(),
                    };
                    let result =
                        panic::catch_unwind(AssertUnwindSafe(|| party(&mut ctx, PartyId(i))));
                    match result {
                        Ok(output) => {
                            let _ = submit_tx.send(Submission::Done {
                                from: i,
                                output,
                                sends: std::mem::take(&mut ctx.pending),
                                trace: std::mem::take(&mut ctx.trace_buf),
                            });
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<NetShutdown>().is_some() {
                                // Executor-initiated teardown; exit quietly.
                            } else {
                                let _ = submit_tx.send(Submission::Panicked {
                                    from: i,
                                    // `as_ref()`: `&payload` would unsize-coerce the Box
                                    // itself to `&dyn Any` and every downcast would miss.
                                    info: panic_message(payload.as_ref()),
                                });
                            }
                        }
                    }
                });
            }
            drop(submit_tx);

            let mut corrupted: BTreeSet<PartyId> = self
                .corruption
                .iter()
                .enumerate()
                .filter(|(_, c)| **c != Corruption::Honest)
                .map(|(i, _)| PartyId(i))
                .collect();
            // Parties whose protocol thread is still running.
            let mut live: BTreeSet<usize> = (0..n)
                .filter(|i| self.corruption[*i] != Corruption::Scripted)
                .collect();
            let mut round: u64 = 0;

            // Statically corrupted parties are faulted before round 0.
            if tracing {
                for (i, mode) in self.corruption.iter().enumerate() {
                    let strategy = match mode {
                        Corruption::Honest => continue,
                        Corruption::LyingHonest => "static:lying_honest",
                        Corruption::Scripted => "static:scripted",
                    };
                    sink.record(&Record {
                        party: Some(i as u64),
                        round: 0,
                        scope: ROOT_SCOPE.to_owned(),
                        event: TraceEvent::FaultInjected {
                            strategy: strategy.to_owned(),
                        },
                    });
                }
            }

            'rounds: loop {
                if tracing {
                    sink.record(&Record {
                        party: None,
                        round,
                        scope: ROOT_SCOPE.to_owned(),
                        event: TraceEvent::RoundStart,
                    });
                }

                // --- Collect one submission from every live thread. ---
                let mut waiting: Vec<usize> = Vec::new();
                let mut sends: Vec<(usize, Vec<(PartyId, Bytes)>)> = Vec::new();
                let mut scopes: Vec<(usize, String)> = Vec::new();
                let mut party_traces: Vec<(usize, Vec<Record>)> = Vec::new();
                let mut expected = live.clone();
                while !expected.is_empty() {
                    // ca-lint: allow(panic-path) — in-process simulator channel, not a network path
                    let sub = submit_rx.recv().expect("live parties hold senders");
                    match sub {
                        Submission::Round {
                            from,
                            sends: s,
                            scope,
                            trace,
                        } => {
                            // Stray submissions from adaptively-corrupted
                            // zombies are discarded.
                            if !expected.remove(&from) {
                                continue;
                            }
                            waiting.push(from);
                            scopes.push((from, scope));
                            sends.push((from, s));
                            party_traces.push((from, trace));
                        }
                        Submission::Done {
                            from,
                            output,
                            sends: s,
                            trace,
                        } => {
                            if !expected.remove(&from) {
                                continue;
                            }
                            live.remove(&from);
                            if !corrupted.contains(&PartyId(from)) {
                                report.outputs[from] = Some(output);
                            }
                            sends.push((from, s));
                            party_traces.push((from, trace));
                        }
                        Submission::Panicked { from, info } => {
                            // ca-lint: allow(panic-path) — the simulator deliberately surfaces
                            panic!("party P{from} panicked: {info}"); // a party-thread panic to the driving test
                        }
                    }
                }
                sends.sort_by_key(|(from, _)| *from);
                waiting.sort_unstable();

                // Flush party-buffered records in id order: submission
                // arrival order is scheduler-dependent, this is not.
                if tracing {
                    party_traces.sort_by_key(|(from, _)| *from);
                    for (_, records) in &party_traces {
                        for r in records {
                            sink.record(r);
                        }
                    }
                }

                // --- Rushing adversary phase. ---
                let honest_sends: Vec<(PartyId, PartyId, Bytes)> = sends
                    .iter()
                    .filter(|(from, _)| !corrupted.contains(&PartyId(*from)))
                    .flat_map(|(from, msgs)| {
                        msgs.iter()
                            .map(|(to, payload)| (PartyId(*from), *to, payload.clone()))
                    })
                    .collect();
                let corrupted_list: Vec<PartyId> = corrupted.iter().copied().collect();
                let view = RoundView {
                    n,
                    t,
                    round,
                    corrupted: &corrupted_list,
                    honest_sends: &honest_sends,
                };
                let actions = self.adversary.on_round(&view);

                // Adaptive corruptions take effect this round.
                for p in actions.corrupt {
                    assert!(p.0 < n, "adversary corrupted nonexistent {p}");
                    if corrupted.insert(p) {
                        assert!(
                            corrupted.len() <= t,
                            "adversary exceeded corruption budget t = {t}"
                        );
                        if tracing {
                            sink.record(&Record {
                                party: Some(p.0 as u64),
                                round,
                                scope: ROOT_SCOPE.to_owned(),
                                event: TraceEvent::FaultInjected {
                                    strategy: "adaptive".to_owned(),
                                },
                            });
                        }
                        report.outputs[p.0] = None;
                        // Tear down the party's thread if it is still running.
                        if live.remove(&p.0) {
                            if let Some(tx) = &deliver_txs[p.0] {
                                let _ = tx.send(Directive::Shutdown);
                            }
                        }
                    }
                }

                // --- Metering + delivery assembly. ---
                let mut inboxes: Vec<Inbox> = (0..n).map(|_| Inbox::with_parties(n)).collect();
                // (receiver, sender, bytes) for this round's deliveries, in
                // assembly order — traced after the send events.
                let mut deliveries: Vec<(usize, usize, u64)> = Vec::new();
                // Messages held back by the delay model whose arrival round
                // has come are delivered first (they were sent earlier).
                if let Some(model) = self.delay_model.as_mut() {
                    for (from, to, payload) in model.held.remove(&round).unwrap_or_default() {
                        deliveries.push((to.0, from.0, payload.len() as u64));
                        inboxes[to.0].push(from, payload);
                    }
                }
                for (from, msgs) in &sends {
                    let from_id = PartyId(*from);
                    let is_corrupt = corrupted.contains(&from_id);
                    if is_corrupt && self.corruption[*from] != Corruption::LyingHonest {
                        // Adaptively corrupted this round: its honest sends are
                        // suppressed (the adversary replaces them). Lying
                        // parties' sends still flow — they *are* the attack.
                        continue;
                    }
                    let scope = scopes
                        .iter()
                        .find(|(p, _)| p == from)
                        .map(|(_, s)| s.as_str())
                        .unwrap_or(ROOT_SCOPE);
                    for (to, payload) in msgs {
                        if *to != from_id {
                            // Self-delivery is free on a real network.
                            if is_corrupt {
                                report.metrics.record_adversary_send(payload.len());
                            } else {
                                report.metrics.record_honest_send(scope, payload.len());
                            }
                            if tracing {
                                sink.record(&Record {
                                    party: Some(*from as u64),
                                    round,
                                    scope: if is_corrupt {
                                        ca_trace::ADVERSARY_SCOPE.to_owned()
                                    } else {
                                        scope.to_owned()
                                    },
                                    event: TraceEvent::Send {
                                        to: to.0 as u64,
                                        bytes: payload.len() as u64,
                                    },
                                });
                            }
                        }
                        if to.0 < n {
                            let mut arrival = round;
                            if let Some(model) = self.delay_model.as_mut() {
                                if *to != from_id {
                                    let seq = model.seq;
                                    model.seq += 1;
                                    match model.delays.sample(*from, to.0, seq) {
                                        // Dropped on the wire; the send was
                                        // already metered and traced above.
                                        None => continue,
                                        Some(d) => arrival = round + d / model.delta,
                                    }
                                }
                            }
                            if arrival > round {
                                if let Some(model) = self.delay_model.as_mut() {
                                    model.held.entry(arrival).or_default().push((
                                        from_id,
                                        *to,
                                        payload.clone(),
                                    ));
                                }
                            } else {
                                inboxes[to.0].push(from_id, payload.clone());
                                deliveries.push((to.0, *from, payload.len() as u64));
                            }
                        }
                    }
                }
                for spec in actions.sends {
                    assert!(
                        corrupted.contains(&spec.from),
                        "adversary sent from honest {} (channels are authenticated)",
                        spec.from
                    );
                    assert!(spec.to.0 < n, "adversary sent to nonexistent {}", spec.to);
                    report.metrics.record_adversary_send(spec.payload.len());
                    if tracing {
                        sink.record(&Record {
                            party: Some(spec.from.0 as u64),
                            round,
                            scope: ca_trace::ADVERSARY_SCOPE.to_owned(),
                            event: TraceEvent::Send {
                                to: spec.to.0 as u64,
                                bytes: spec.payload.len() as u64,
                            },
                        });
                    }
                    deliveries.push((spec.to.0, spec.from.0, spec.payload.len() as u64));
                    inboxes[spec.to.0].push(spec.from, spec.payload);
                }

                if waiting.is_empty() {
                    // Nobody is blocked on a round boundary: the protocol is over.
                    break 'rounds;
                }

                // Round attribution: innermost scope of the lowest-id honest
                // waiting party (all honest parties of a lock-step protocol
                // share the same scope).
                let round_scope = waiting
                    .iter()
                    .find(|p| !corrupted.contains(&PartyId(**p)))
                    .and_then(|p| scopes.iter().find(|(q, _)| q == p))
                    .map(|(_, s)| s.clone())
                    .unwrap_or_else(|| ROOT_SCOPE.to_owned());
                report.metrics.record_round(&round_scope);

                // Deliveries reach only the parties still at the barrier;
                // stamp each with the receiver's submitted scope.
                if tracing {
                    let mut ordered = deliveries;
                    ordered.sort_by_key(|&(to, _, _)| to);
                    for (to, from, bytes) in ordered {
                        if !waiting.contains(&to) {
                            continue;
                        }
                        let scope = scopes
                            .iter()
                            .find(|(p, _)| *p == to)
                            .map_or(ROOT_SCOPE, |(_, s)| s.as_str());
                        sink.record(&Record {
                            party: Some(to as u64),
                            round,
                            scope: scope.to_owned(),
                            event: TraceEvent::Deliver {
                                from: from as u64,
                                bytes,
                            },
                        });
                    }
                    sink.record(&Record {
                        party: None,
                        round,
                        scope: round_scope.clone(),
                        event: TraceEvent::RoundEnd,
                    });
                }

                // --- Deliver. ---
                for (i, inbox) in inboxes.into_iter().enumerate() {
                    if waiting.contains(&i) {
                        if let Some(tx) = &deliver_txs[i] {
                            let _ = tx.send(Directive::Deliver(inbox));
                        }
                    }
                }

                round += 1;
                assert!(
                    round <= self.max_rounds,
                    "round limit {} exceeded (runaway protocol?)",
                    self.max_rounds
                );
            }

            // Tear down any remaining threads (e.g. zombies of adaptive
            // corruption that were mid-computation).
            for tx in deliver_txs.iter().flatten() {
                let _ = tx.send(Directive::Shutdown);
            }
            report.corrupted = corrupted.into_iter().collect();
        });

        sink.flush();
        report
    }
}

/// Panic payload used for executor-initiated thread teardown.
struct NetShutdown;

/// Executor-initiated teardown unwinds party threads via a `NetShutdown`
/// panic that is always caught; the default panic hook would still print a
/// scary backtrace for each torn-down zombie (e.g. under adaptive
/// corruption). Install, once, a wrapper hook that stays silent for
/// exactly that payload.
fn install_quiet_shutdown_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<NetShutdown>().is_none() {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

enum Submission<O> {
    Round {
        from: usize,
        sends: Vec<(PartyId, Bytes)>,
        scope: String,
        /// Trace records buffered by the party since its last submission.
        trace: Vec<Record>,
    },
    Done {
        from: usize,
        output: O,
        sends: Vec<(PartyId, Bytes)>,
        trace: Vec<Record>,
    },
    Panicked {
        from: usize,
        info: String,
    },
}

enum Directive {
    Deliver(Inbox),
    Shutdown,
}

struct PartyCtx<O> {
    n: usize,
    t: usize,
    me: PartyId,
    pending: Vec<(PartyId, Bytes)>,
    scopes: Vec<String>,
    submit_tx: Sender<Submission<O>>,
    deliver_rx: Receiver<Directive>,
    /// Executor round this party's upcoming events belong to.
    round: u64,
    /// Whether the run has a recording sink (copied from the executor so
    /// the disabled path never allocates).
    trace_on: bool,
    /// Locally buffered records; shipped with the next submission and
    /// flushed by the executor in canonical order.
    trace_buf: Vec<Record>,
}

impl<O> PartyCtx<O> {
    fn scope_path(&self) -> String {
        if self.scopes.is_empty() {
            ROOT_SCOPE.to_owned()
        } else {
            self.scopes.join("/")
        }
    }

    fn buffer(&mut self, event: TraceEvent) {
        let record = Record {
            party: Some(self.me.0 as u64),
            round: self.round,
            scope: self.scope_path(),
            event,
        };
        self.trace_buf.push(record);
    }
}

impl<O> Comm for PartyCtx<O> {
    fn n(&self) -> usize {
        self.n
    }

    fn t(&self) -> usize {
        self.t
    }

    fn me(&self) -> PartyId {
        self.me
    }

    fn send_bytes(&mut self, to: PartyId, payload: Bytes) {
        assert!(to.0 < self.n, "send to nonexistent {to}");
        self.pending.push((to, payload));
    }

    fn next_round(&mut self) -> Inbox {
        let sends = std::mem::take(&mut self.pending);
        let scope = self.scope_path();
        self.submit_tx
            .send(Submission::Round {
                from: self.me.0,
                sends,
                scope,
                trace: std::mem::take(&mut self.trace_buf),
            })
            // ca-lint: allow(panic-path) — in-process simulator channel, not a network path
            .expect("executor alive");
        match self.deliver_rx.recv() {
            Ok(Directive::Deliver(inbox)) => {
                self.round += 1;
                inbox
            }
            Ok(Directive::Shutdown) | Err(_) => panic::panic_any(NetShutdown),
        }
    }

    fn push_scope(&mut self, name: &str) {
        self.scopes.push(name.to_owned());
        if self.trace_on {
            self.buffer(TraceEvent::ScopeEnter {
                name: name.to_owned(),
            });
        }
    }

    fn pop_scope(&mut self) {
        let popped = self.scopes.pop();
        if self.trace_on {
            if let Some(name) = popped {
                self.buffer(TraceEvent::ScopeExit { name });
            }
        }
    }

    fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    fn trace(&mut self, event: TraceEvent) {
        if self.trace_on {
            self.buffer(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{RoundActions, SendSpec};
    use crate::CommExt;
    use ca_codec::Encode;

    /// Every party sends its id to all; checks everyone hears everyone.
    #[test]
    fn all_to_all_delivery() {
        let report = Sim::new(5).run(|ctx, id| {
            let inbox = ctx.exchange(&(id.0 as u64));
            inbox.decode_each::<u64>()
        });
        for out in report.honest_outputs() {
            let values: Vec<u64> = out.iter().map(|(_, v)| *v).collect();
            assert_eq!(values, vec![0, 1, 2, 3, 4]);
        }
        assert_eq!(report.metrics.rounds, 1);
        // 5 parties × 4 non-self messages, varint id = 1 byte each.
        assert_eq!(report.metrics.honest_msgs, 20);
        assert_eq!(report.metrics.honest_bits, 20 * 8);
    }

    #[test]
    fn multi_round_protocol() {
        let report = Sim::new(4).run(|ctx, id| {
            let mut sum = 0u64;
            for r in 0..3u64 {
                let inbox = ctx.exchange(&(r + id.0 as u64));
                sum += inbox
                    .decode_each::<u64>()
                    .iter()
                    .map(|(_, v)| v)
                    .sum::<u64>();
            }
            sum
        });
        assert_eq!(report.metrics.rounds, 3);
        let outs = report.honest_outputs();
        assert!(outs.iter().all(|&&o| o == **outs.first().unwrap()));
    }

    #[test]
    fn scripted_party_is_adversary_driven() {
        struct Echo;
        impl Adversary for Echo {
            fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
                // Rushing: echo back P0's message content + 1 to everyone.
                let mut actions = RoundActions::default();
                if let Some((_, _, payload)) = view.sends_from(PartyId(0)).next() {
                    let v = <u64 as ca_codec::Decode>::decode_from_slice(payload).unwrap();
                    for to in 0..view.n {
                        actions.sends.push(SendSpec {
                            from: PartyId(3),
                            to: PartyId(to),
                            payload: (v + 1).encode_to_vec().into(),
                        });
                    }
                }
                actions
            }
        }
        let report = Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(Echo)
            .run(|ctx, id| {
                if id.0 == 3 {
                    unreachable!("scripted party must not run protocol code");
                }
                let inbox = ctx.exchange(&42u64);
                inbox.decode_from::<u64>(PartyId(3))
            });
        assert_eq!(report.outputs[3], None);
        for out in report.honest_outputs() {
            assert_eq!(*out, Some(43)); // rushing echo observed same round
        }
        assert!(report.metrics.adversary_bits > 0);
    }

    #[test]
    fn lying_honest_runs_protocol_but_is_excluded() {
        let report = Sim::new(4)
            .corrupt(PartyId(1), Corruption::LyingHonest)
            .run(|ctx, id| {
                let inbox = ctx.exchange(&(if id.0 == 1 { 999u64 } else { 7 }));
                inbox
                    .decode_each::<u64>()
                    .iter()
                    .map(|(_, v)| *v)
                    .sum::<u64>()
            });
        // Lying party's message was delivered (999 + 3×7 = 1020)…
        for out in report.honest_outputs() {
            assert_eq!(*out, 1020);
        }
        // …but its output is discarded and its bits are the adversary's.
        assert_eq!(report.outputs[1], None);
        assert_eq!(report.metrics.honest_msgs, 9); // 3 honest × 3 non-self
        assert_eq!(report.metrics.adversary_bits, 3 * 2 * 8); // 999 = 2-byte varint
    }

    #[test]
    fn adaptive_corruption_suppresses_and_silences() {
        struct CorruptP0AtRound1;
        impl Adversary for CorruptP0AtRound1 {
            fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
                let mut a = RoundActions::default();
                if view.round == 1 {
                    a.corrupt.push(PartyId(0));
                }
                a
            }
        }
        let report = Sim::new(4)
            .with_adversary(CorruptP0AtRound1)
            .run(|ctx, _id| {
                let r0 = ctx.exchange(&1u64).decode_each::<u64>().len();
                let r1 = ctx.exchange(&2u64).decode_each::<u64>().len();
                (r0, r1)
            });
        assert_eq!(report.outputs[0], None);
        assert_eq!(report.corrupted, vec![PartyId(0)]);
        for out in report.honest_outputs() {
            assert_eq!(*out, (4, 3)); // P0 heard in round 0, suppressed in round 1
        }
    }

    #[test]
    fn scopes_attribute_bits_and_rounds() {
        let report = Sim::new(3).run(|ctx, _id| {
            ctx.scoped("phase_a", |ctx| {
                ctx.exchange(&1u64);
            });
            ctx.scoped("phase_b", |ctx| {
                ctx.scoped("inner", |ctx| {
                    ctx.exchange(&2u64);
                    ctx.exchange(&3u64);
                });
            });
        });
        assert_eq!(report.metrics.per_scope["phase_a"].rounds, 1);
        assert_eq!(report.metrics.per_scope["phase_b/inner"].rounds, 2);
        assert_eq!(report.metrics.scope_subtree("phase_b").rounds, 2);
        assert_eq!(
            report.metrics.honest_bits,
            report.metrics.scope_subtree("phase_a").honest_bits
                + report.metrics.scope_subtree("phase_b").honest_bits
        );
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn protocol_bug_propagates() {
        Sim::new(3).run(|ctx, id| {
            ctx.exchange(&1u64);
            if id.0 == 1 {
                panic!("intentional bug");
            }
            ctx.exchange(&2u64);
        });
    }

    #[test]
    #[should_panic(expected = "round limit")]
    fn runaway_protocol_hits_round_limit() {
        Sim::new(2).with_max_rounds(10).run(|ctx, _id| loop {
            ctx.exchange(&0u8);
        });
    }

    #[test]
    #[should_panic(expected = "corruption budget")]
    fn adversary_cannot_exceed_t() {
        struct GreedyCorruptor;
        impl Adversary for GreedyCorruptor {
            fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
                RoundActions {
                    corrupt: (0..view.n).map(PartyId).collect(),
                    sends: vec![],
                }
            }
        }
        Sim::new(4).with_adversary(GreedyCorruptor).run(|ctx, _id| {
            ctx.exchange(&0u8);
        });
    }

    #[test]
    #[should_panic(expected = "authenticated")]
    fn adversary_cannot_forge_honest_sender() {
        struct Forger;
        impl Adversary for Forger {
            fn on_round(&mut self, _view: &RoundView<'_>) -> RoundActions {
                RoundActions {
                    corrupt: vec![],
                    sends: vec![SendSpec {
                        from: PartyId(0), // honest!
                        to: PartyId(1),
                        payload: Bytes::from_static(b"forged"),
                    }],
                }
            }
        }
        Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(Forger)
            .run(|ctx, _id| {
                ctx.exchange(&0u8);
            });
    }

    #[test]
    fn traced_run_emits_canonical_timeline() {
        let sink = Arc::new(ca_trace::RingBufferSink::new(4096));
        let report = Sim::new(3).with_trace(sink.clone()).run(|ctx, id| {
            ctx.trace_input(|| id.0.to_string());
            ctx.scoped("phase", |ctx| {
                ctx.exchange(&7u64);
            });
            // Decide the median input: stays inside the honest hull.
            ctx.trace_decide(|| "1".to_owned());
        });
        assert_eq!(report.metrics.rounds, 1);
        let records = sink.records();
        // Round boundaries present and ordered.
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds.first(), Some(&"round_start"));
        assert!(kinds.contains(&"round_end"), "{kinds:?}");
        // Every party contributed input, scope, sends, deliver, decide.
        for p in 0..3u64 {
            let mine: Vec<&Record> = records.iter().filter(|r| r.party == Some(p)).collect();
            assert!(mine.iter().any(|r| r.event.kind() == "input"));
            assert!(mine
                .iter()
                .any(|r| matches!(&r.event, TraceEvent::ScopeEnter { name } if name == "phase")));
            assert_eq!(
                mine.iter().filter(|r| r.event.kind() == "send").count(),
                2,
                "two non-self sends"
            );
            assert!(mine.iter().any(|r| r.event.kind() == "deliver"));
            assert!(mine.iter().any(|r| r.event.kind() == "decide"));
        }
        // Sends carry the scope they were submitted under.
        assert!(records
            .iter()
            .filter(|r| r.event.kind() == "send")
            .all(|r| r.scope == "phase"));
        // The whole trace passes the generic invariants.
        assert_eq!(ca_trace::check(&records), vec![]);
    }

    #[test]
    fn traces_are_deterministic_across_runs() {
        let run = || {
            let sink = Arc::new(ca_trace::RingBufferSink::new(1 << 16));
            Sim::new(4)
                .corrupt(PartyId(3), Corruption::LyingHonest)
                .with_trace(sink.clone())
                .run(|ctx, id| {
                    ctx.scoped("a", |ctx| {
                        ctx.exchange(&(id.0 as u64));
                    });
                    ctx.scoped("b", |ctx| {
                        ctx.exchange(&(id.0 as u64 + 10));
                    });
                });
            sink.records()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(ca_trace::first_divergence(&a, &b), None);
    }

    #[test]
    fn untraced_run_has_identical_metrics_to_traced() {
        let body = |ctx: &mut dyn Comm, id: PartyId| {
            ctx.scoped("x", |ctx| {
                ctx.exchange(&(id.0 as u64));
                ctx.exchange(&(id.0 as u64 * 3));
            });
        };
        let plain = Sim::new(4).run(body);
        let traced = Sim::new(4)
            .with_trace(Arc::new(ca_trace::RingBufferSink::new(1 << 16)))
            .run(body);
        assert_eq!(plain.metrics, traced.metrics);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            Sim::new(5)
                .corrupt(PartyId(2), Corruption::LyingHonest)
                .run(|ctx, id| {
                    let mut acc = Vec::new();
                    for r in 0..4u64 {
                        let inbox = ctx.exchange(&(id.0 as u64 * 100 + r));
                        acc.push(inbox.decode_each::<u64>());
                    }
                    acc
                })
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.outputs.iter().collect::<Vec<_>>(),
            b.outputs.iter().collect::<Vec<_>>()
        );
        assert_eq!(a.metrics.honest_bits, b.metrics.honest_bits);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }
}
