//! Systematic Reed–Solomon erasure coding (`RS.ENCODE` / `RS.DECODE`, §7).
//!
//! # Hot-path structure
//!
//! Encode and decode run *symbol-major over blocks of stripes*: the payload
//! is transposed once into per-position columns, and every `coefficient ×
//! column` product goes through a [`MulTable`] — two L1 lookups and an XOR
//! per symbol — instead of the generic log/antilog round-trip. Zero
//! coefficients are skipped and unit coefficients (systematic positions)
//! take a plain XOR path. The original stripe-at-a-time scalar kernels are
//! retained behind `#[cfg(any(test, feature = "scalar-oracle"))]` as the
//! differential-testing oracle and the baseline the P1 benchmark measures
//! against.

use std::error::Error;
use std::fmt;

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::gf::{Gf, MulTable, ORDER};

/// Stripes per cache block: 8192 symbols = 16 KiB per column block, so one
/// accumulator block plus one input column block stay L1/L2-resident across
/// the whole coefficient sweep of a row.
const STRIPE_BLOCK: usize = 8192;

/// One of the `n` codewords produced by [`ReedSolomon::encode`]
/// (the paper's `sᵢ`).
///
/// A share carries one `GF(2^16)` symbol per data stripe; its byte size is
/// `O(|payload| / k)`, i.e. `O(ℓ/n)` bits for the protocol's `k = n − t`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Share {
    symbols: Vec<Gf>,
}

impl Share {
    /// Number of stripes (symbols) in this share.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the share is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Share {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.symbols.len() as u64);
        for s in &self.symbols {
            w.put_raw(&s.0.to_be_bytes());
        }
    }

    fn encoded_len(&self) -> usize {
        Writer::varint_len(self.symbols.len() as u64) + 2 * self.symbols.len()
    }
}

impl Decode for Share {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        ShareRef::decode(r).map(|s| s.to_share())
    }
}

/// A borrowed view of an encoded [`Share`], decoded zero-copy from a
/// receive buffer.
///
/// The view keeps the exact encoded byte span, which is precisely what a
/// Merkle leaf commits to — so `Π_ℓBA+` can verify a received codeword
/// against the agreed accumulator root *without* re-encoding it, and only
/// materialize an owned [`Share`] (one symbol parse) for codewords that
/// pass verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareRef<'a> {
    /// The full encoded span: varint symbol count + big-endian symbols.
    encoded: &'a [u8],
    /// The symbol region (`2 × len` bytes) within `encoded`.
    symbols: &'a [u8],
}

impl<'a> ShareRef<'a> {
    /// Decodes a share without copying, borrowing from the reader's input.
    ///
    /// # Errors
    ///
    /// Same validation as [`Share::decode`]: [`CodecError::LengthOverrun`]
    /// when the claimed symbol count exceeds the remaining bytes (the
    /// claimed byte length is saturated, so a forged count near
    /// `usize::MAX` reports cleanly instead of overflowing).
    pub fn decode(r: &mut Reader<'a>) -> Result<Self, CodecError> {
        let span = r.rest();
        let before = r.remaining();
        let len = usize::decode(r)?;
        let claimed = len.saturating_mul(2);
        if claimed > r.remaining() {
            return Err(CodecError::LengthOverrun {
                claimed,
                available: r.remaining(),
            });
        }
        let symbols = r.get_raw(claimed)?;
        let consumed = before - r.remaining();
        Ok(ShareRef {
            encoded: &span[..consumed],
            symbols,
        })
    }

    /// Decodes from a complete slice, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`ShareRef::decode`], plus [`CodecError::TrailingBytes`].
    pub fn decode_from_slice(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let share = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(share)
    }

    /// Number of stripes (symbols) in the viewed share.
    pub fn len(&self) -> usize {
        self.symbols.len() / 2
    }

    /// Whether the viewed share is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The exact encoded bytes this view was decoded from — the Merkle
    /// leaf preimage, available without re-encoding.
    pub fn encoded_bytes(&self) -> &'a [u8] {
        self.encoded
    }

    /// Materializes an owned [`Share`] (parses the symbol bytes once).
    pub fn to_share(&self) -> Share {
        let symbols = self
            .symbols
            .chunks_exact(2)
            .map(|b| Gf(u16::from_be_bytes([b[0], b[1]])))
            .collect();
        Share { symbols }
    }
}

/// Errors from Reed–Solomon configuration or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RsError {
    /// `(n, k)` outside `1 ≤ k ≤ n ≤ 2^16 − 1`.
    InvalidParameters {
        /// Total shares requested.
        n: usize,
        /// Threshold requested.
        k: usize,
    },
    /// Fewer than `k` distinct, in-range shares were provided.
    NotEnoughShares {
        /// Distinct usable shares seen.
        got: usize,
        /// Threshold `k`.
        needed: usize,
    },
    /// A share index was `≥ n`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// Shares disagree on the stripe count.
    LengthMismatch,
    /// The reconstructed payload framing was invalid (corrupt shares that
    /// nevertheless passed external checks, or inconsistent share subsets).
    BadPayload,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidParameters { n, k } => {
                write!(f, "invalid RS parameters n = {n}, k = {k}")
            }
            RsError::NotEnoughShares { got, needed } => {
                write!(f, "not enough shares: got {got}, need {needed}")
            }
            RsError::IndexOutOfRange { index } => write!(f, "share index {index} out of range"),
            RsError::LengthMismatch => write!(f, "shares have differing lengths"),
            RsError::BadPayload => write!(f, "reconstructed payload is malformed"),
        }
    }
}

impl Error for RsError {}

/// A systematic `(n, k)` Reed–Solomon code over `GF(2^16)`.
///
/// The data polynomial `p` of degree `< k` is defined by its evaluations at
/// `α₀ … α_{k−1}` (the data symbols); share `i` is `p(αᵢ)`. Any `k` distinct
/// shares determine `p`, hence the data — this is `RS.DECODE` from `n − t`
/// codewords with `k = n − t`.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// parity_matrix[row][col] = L_col(α_{k+row}) where L is the Lagrange
    /// basis over the data points α₀ … α_{k−1}.
    parity_matrix: Vec<Vec<Gf>>,
}

impl ReedSolomon {
    /// Creates a code with `n` total shares and threshold `k`.
    ///
    /// The paper's `Π_ℓBA+` uses `k = n − t`.
    ///
    /// # Errors
    ///
    /// [`RsError::InvalidParameters`] unless `1 ≤ k ≤ n ≤ 2^16 − 1`.
    pub fn new(n: usize, k: usize) -> Result<Self, RsError> {
        if k == 0 || k > n || n > ORDER {
            return Err(RsError::InvalidParameters { n, k });
        }
        let data_points: Vec<Gf> = (0..k).map(Gf::alpha).collect();
        let parity_matrix = (k..n)
            .map(|row| lagrange_row(&data_points, Gf::alpha(row)))
            .collect();
        Ok(Self {
            n,
            k,
            parity_matrix,
        })
    }

    /// Total number of shares `n`.
    pub fn total_shares(&self) -> usize {
        self.n
    }

    /// Reconstruction threshold `k`.
    pub fn threshold(&self) -> usize {
        self.k
    }

    /// Frames `data` with its length and pads to a whole number of stripes.
    fn frame_payload(&self, data: &[u8]) -> Vec<u8> {
        let mut payload = Writer::with_capacity(data.len() + 9);
        payload.put_varint(data.len() as u64);
        payload.put_raw(data);
        let mut payload = payload.into_vec();
        let stripe_bytes = 2 * self.k;
        payload.resize(payload.len().div_ceil(stripe_bytes) * stripe_bytes, 0);
        payload
    }

    /// Strips the length framing from a reconstructed payload, rejecting
    /// nonzero padding.
    fn unframe(payload: &[u8]) -> Result<Vec<u8>, RsError> {
        let mut r = Reader::new(payload);
        let len = r.get_varint().map_err(|_| RsError::BadPayload)?;
        let len = usize::try_from(len).map_err(|_| RsError::BadPayload)?;
        let data = r.get_raw(len).map_err(|_| RsError::BadPayload)?.to_vec();
        // Remaining bytes must be zero padding.
        let consumed = payload.len() - r.remaining();
        if payload[consumed..].iter().any(|&b| b != 0) {
            return Err(RsError::BadPayload);
        }
        Ok(data)
    }

    /// Selects the first `k` distinct in-range shares and validates their
    /// stripe counts agree.
    fn pick<'s>(&self, shares: &'s [(usize, Share)]) -> Result<Vec<(usize, &'s Share)>, RsError> {
        let mut chosen: Vec<Option<&Share>> = vec![None; self.n];
        let mut distinct = 0;
        for (idx, share) in shares {
            if *idx >= self.n {
                return Err(RsError::IndexOutOfRange { index: *idx });
            }
            if chosen[*idx].is_none() {
                chosen[*idx] = Some(share);
                distinct += 1;
            }
        }
        if distinct < self.k {
            return Err(RsError::NotEnoughShares {
                got: distinct,
                needed: self.k,
            });
        }
        let picked: Vec<(usize, &Share)> = chosen
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, s)))
            .take(self.k)
            .collect();
        let stripes = picked[0].1.symbols.len();
        if picked.iter().any(|(_, s)| s.symbols.len() != stripes) {
            return Err(RsError::LengthMismatch);
        }
        Ok(picked)
    }

    /// Precomputes, for each data position `j`, how to reconstruct it from
    /// the picked evaluation points: directly (systematic fast path) or as
    /// a Lagrange combination.
    fn coeff_rows(&self, picked: &[(usize, &Share)]) -> Vec<CoeffRow> {
        let xs: Vec<Gf> = picked.iter().map(|(i, _)| Gf::alpha(*i)).collect();
        (0..self.k)
            .map(|j| {
                if let Some(pos) = picked.iter().position(|(i, _)| *i == j) {
                    CoeffRow::Direct(pos)
                } else {
                    CoeffRow::Combine(lagrange_row(&xs, Gf::alpha(j)))
                }
            })
            .collect()
    }

    /// `RS.ENCODE(v)`: splits `data` into `n` shares, any `k` of which
    /// reconstruct it.
    ///
    /// Blocked kernel: the payload is transposed once into `k` symbol
    /// columns, then every parity row is accumulated column-by-column over
    /// [`STRIPE_BLOCK`]-sized slices through [`MulTable`]s.
    pub fn encode(&self, data: &[u8]) -> Vec<Share> {
        let payload = self.frame_payload(data);
        let stripe_bytes = 2 * self.k;
        let stripes = payload.len() / stripe_bytes;

        // Transpose to symbol-major columns: cols[j · stripes + s] is data
        // symbol j of stripe s, so each coefficient sweep below reads and
        // writes contiguous memory.
        let mut cols = vec![Gf::ZERO; self.k * stripes];
        for (s, stripe) in payload.chunks_exact(stripe_bytes).enumerate() {
            for (j, sym) in stripe.chunks_exact(2).enumerate() {
                cols[j * stripes + s] = Gf(u16::from_be_bytes([sym[0], sym[1]]));
            }
        }

        let mut shares: Vec<Share> = Vec::with_capacity(self.n);
        // Systematic part: shares 0..k *are* the data columns.
        for col in cols.chunks_exact(stripes) {
            shares.push(Share {
                symbols: col.to_vec(),
            });
        }
        // Parity part: evaluate p at α_k … α_{n−1}, one block of stripes at
        // a time so the accumulator stays cache-resident across the k-column
        // sweep.
        for coeffs in &self.parity_matrix {
            let mut acc = vec![Gf::ZERO; stripes];
            let mut start = 0;
            while start < stripes {
                let end = stripes.min(start + STRIPE_BLOCK);
                for (coeff, col) in coeffs.iter().zip(cols.chunks_exact(stripes)) {
                    accumulate(&mut acc[start..end], *coeff, &col[start..end]);
                }
                start = end;
            }
            shares.push(Share { symbols: acc });
        }
        shares
    }

    /// `RS.DECODE`: reconstructs the original data from at least `k` shares
    /// given as `(index, share)` pairs (duplicates allowed, first wins).
    ///
    /// Blocked kernel: share symbol vectors are already columns, so no
    /// input transpose is needed; each missing data position is accumulated
    /// block-by-block through [`MulTable`]s, and present (systematic)
    /// positions are copied directly.
    ///
    /// # Errors
    ///
    /// See [`RsError`] — too few shares, bad indices, inconsistent lengths,
    /// or malformed payload framing.
    pub fn decode(&self, shares: &[(usize, Share)]) -> Result<Vec<u8>, RsError> {
        let picked = self.pick(shares)?;
        let stripes = picked[0].1.symbols.len();
        let coeff_rows = self.coeff_rows(&picked);

        let mut out_cols: Vec<Vec<Gf>> = Vec::with_capacity(self.k);
        for row in &coeff_rows {
            match row {
                CoeffRow::Direct(pos) => out_cols.push(picked[*pos].1.symbols.clone()),
                CoeffRow::Combine(coeffs) => {
                    let mut acc = vec![Gf::ZERO; stripes];
                    let mut start = 0;
                    while start < stripes {
                        let end = stripes.min(start + STRIPE_BLOCK);
                        for (coeff, (_, share)) in coeffs.iter().zip(&picked) {
                            accumulate(&mut acc[start..end], *coeff, &share.symbols[start..end]);
                        }
                        start = end;
                    }
                    out_cols.push(acc);
                }
            }
        }

        // Transpose back to stripe-major bytes and strip the framing.
        let stripe_bytes = 2 * self.k;
        let mut payload = vec![0u8; stripes * stripe_bytes];
        for (j, col) in out_cols.iter().enumerate() {
            for (s, sym) in col.iter().enumerate() {
                let be = sym.0.to_be_bytes();
                let off = s * stripe_bytes + 2 * j;
                payload[off] = be[0];
                payload[off + 1] = be[1];
            }
        }
        Self::unframe(&payload)
    }

    /// Stripe-at-a-time scalar `RS.ENCODE`, retained as the
    /// differential-testing oracle for the blocked kernel (and the baseline
    /// the P1 benchmark measures speedup against).
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn encode_scalar(&self, data: &[u8]) -> Vec<Share> {
        let payload = self.frame_payload(data);
        let stripe_bytes = 2 * self.k;
        let stripes = payload.len() / stripe_bytes;

        let mut shares = vec![
            Share {
                symbols: Vec::with_capacity(stripes)
            };
            self.n
        ];
        let mut data_syms = vec![Gf::ZERO; self.k];
        for s in 0..stripes {
            let base = s * stripe_bytes;
            for (j, sym) in data_syms.iter_mut().enumerate() {
                *sym = Gf(u16::from_be_bytes([
                    payload[base + 2 * j],
                    payload[base + 2 * j + 1],
                ]));
            }
            // Systematic part: shares 0..k carry the data symbols.
            for j in 0..self.k {
                shares[j].symbols.push(data_syms[j]);
            }
            // Parity part: evaluate p at α_k … α_{n−1}.
            for (row, share) in shares[self.k..].iter_mut().enumerate() {
                let mut acc = Gf::ZERO;
                for (c, &d) in data_syms.iter().enumerate() {
                    acc = acc.add(self.parity_matrix[row][c].mul(d));
                }
                share.symbols.push(acc);
            }
        }
        shares
    }

    /// Stripe-at-a-time scalar `RS.DECODE`, retained as the
    /// differential-testing oracle for the blocked kernel.
    ///
    /// # Errors
    ///
    /// See [`RsError`] — same contract as [`ReedSolomon::decode`].
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn decode_scalar(&self, shares: &[(usize, Share)]) -> Result<Vec<u8>, RsError> {
        let picked = self.pick(shares)?;
        let stripes = picked[0].1.symbols.len();
        let coeff_rows = self.coeff_rows(&picked);

        let stripe_bytes = 2 * self.k;
        let mut payload = vec![0u8; stripes * stripe_bytes];
        for s in 0..stripes {
            for (j, row) in coeff_rows.iter().enumerate() {
                let sym = match row {
                    CoeffRow::Direct(pos) => picked[*pos].1.symbols[s],
                    CoeffRow::Combine(coeffs) => {
                        let mut acc = Gf::ZERO;
                        for (c, (_, share)) in picked.iter().enumerate() {
                            acc = acc.add(coeffs[c].mul(share.symbols[s]));
                        }
                        acc
                    }
                };
                let be = sym.0.to_be_bytes();
                payload[s * stripe_bytes + 2 * j] = be[0];
                payload[s * stripe_bytes + 2 * j + 1] = be[1];
            }
        }
        Self::unframe(&payload)
    }
}

/// `acc[i] ^= coeff · col[i]` with the zero/one fast paths: zero
/// coefficients are skipped outright and unit coefficients take a plain
/// XOR (no table build, no lookups).
#[inline]
fn accumulate(acc: &mut [Gf], coeff: Gf, col: &[Gf]) {
    if coeff == Gf::ZERO {
        return;
    }
    if coeff == Gf::ONE {
        for (a, &x) in acc.iter_mut().zip(col) {
            *a = a.add(x);
        }
        return;
    }
    MulTable::new(coeff).mul_acc(acc, col);
}

enum CoeffRow {
    /// The data symbol is directly present at this position of the picked set.
    Direct(usize),
    /// Linear combination of the picked symbols with these coefficients.
    Combine(Vec<Gf>),
}

/// Lagrange basis evaluations: `out[i] = Lᵢ(x)` over the nodes `xs`.
fn lagrange_row(xs: &[Gf], x: Gf) -> Vec<Gf> {
    (0..xs.len())
        .map(|i| {
            let mut num = Gf::ONE;
            let mut den = Gf::ONE;
            for (j, &xj) in xs.iter().enumerate() {
                if i != j {
                    num = num.mul(x.add(xj));
                    den = den.mul(xs[i].add(xj));
                }
            }
            num.div(den)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_all_shares() {
        let rs = ReedSolomon::new(7, 5).unwrap();
        let data = b"hello reed-solomon";
        let shares = rs.encode(data);
        assert_eq!(shares.len(), 7);
        let pairs: Vec<_> = shares.into_iter().enumerate().collect();
        assert_eq!(rs.decode(&pairs).unwrap(), data);
    }

    #[test]
    fn round_trip_every_k_subset() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..57).collect();
        let shares = rs.encode(&data);
        // All C(6,4) subsets.
        for a in 0..6 {
            for b in a + 1..6 {
                for c in b + 1..6 {
                    for d in c + 1..6 {
                        let subset: Vec<_> = [a, b, c, d]
                            .iter()
                            .map(|&i| (i, shares[i].clone()))
                            .collect();
                        assert_eq!(rs.decode(&subset).unwrap(), data, "{a}{b}{c}{d}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_data_round_trips() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let shares = rs.encode(b"");
        let pairs: Vec<_> = shares.into_iter().enumerate().skip(1).collect();
        assert_eq!(rs.decode(&pairs).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn too_few_shares_rejected() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let shares = rs.encode(b"abc");
        let pairs: Vec<_> = shares.into_iter().enumerate().take(2).collect();
        assert!(matches!(
            rs.decode(&pairs),
            Err(RsError::NotEnoughShares { got: 2, needed: 3 })
        ));
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let shares = rs.encode(b"abc");
        let pairs = vec![
            (0, shares[0].clone()),
            (0, shares[0].clone()),
            (1, shares[1].clone()),
        ];
        assert!(matches!(
            rs.decode(&pairs),
            Err(RsError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn bad_index_rejected() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let shares = rs.encode(b"abc");
        let pairs = vec![(9, shares[0].clone())];
        assert!(matches!(
            rs.decode(&pairs),
            Err(RsError::IndexOutOfRange { index: 9 })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReedSolomon::new(0, 0).is_err());
        assert!(ReedSolomon::new(3, 4).is_err());
        assert!(ReedSolomon::new(1 << 16, 5).is_err());
        assert!(ReedSolomon::new(65535, 5).is_ok());
    }

    #[test]
    fn share_size_is_data_over_k() {
        let rs = ReedSolomon::new(31, 21).unwrap();
        let data = vec![0xaa; 100_000];
        let shares = rs.encode(&data);
        let share_bytes = shares[0].byte_len();
        // ~ 100_000 / 21 ≈ 4762 plus framing slack.
        assert!(
            share_bytes < 100_000 / 21 + 64,
            "share too big: {share_bytes}"
        );
    }

    #[test]
    fn determinism() {
        let rs = ReedSolomon::new(7, 5).unwrap();
        assert_eq!(rs.encode(b"same input"), rs.encode(b"same input"));
    }

    #[test]
    fn share_codec_round_trip() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let share = rs.encode(b"codec me").remove(3);
        let bytes = share.encode_to_vec();
        assert_eq!(Share::decode_from_slice(&bytes).unwrap(), share);
    }

    #[test]
    fn share_ref_borrows_exact_encoded_span() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let share = rs.encode(b"view me without copying").remove(4);
        let bytes = share.encode_to_vec();
        let view = ShareRef::decode_from_slice(&bytes).unwrap();
        assert_eq!(view.encoded_bytes(), &bytes[..]);
        assert_eq!(view.len(), share.len());
        assert_eq!(view.to_share(), share);

        // Mid-stream decode captures only the share's span.
        let mut stream = 42u32.encode_to_vec();
        let start = stream.len();
        stream.extend_from_slice(&bytes);
        stream.extend_from_slice(b"tail");
        let mut r = Reader::new(&stream);
        assert_eq!(u32::decode(&mut r).unwrap(), 42);
        let view = ShareRef::decode(&mut r).unwrap();
        assert_eq!(view.encoded_bytes(), &stream[start..start + bytes.len()]);
        assert_eq!(r.rest(), b"tail");
    }

    #[test]
    fn share_decode_forged_length_saturates_claim() {
        // Regression: a forged varint count near usize::MAX used to compute
        // `claimed: 2 * len` with an unchecked multiply — an overflow panic
        // in debug builds on the error path. The claim must saturate.
        for forged in [usize::MAX, usize::MAX / 2 + 1, usize::MAX - 7] {
            let mut w = Writer::new();
            w.put_varint(forged as u64);
            let bytes = w.into_vec();
            let err = Share::decode_from_slice(&bytes).unwrap_err();
            match err {
                CodecError::LengthOverrun { claimed, available } => {
                    assert_eq!(claimed, forged.saturating_mul(2), "forged = {forged}");
                    assert_eq!(available, 0);
                }
                other => panic!("expected LengthOverrun, got {other:?}"),
            }
        }
    }

    /// Deterministic pseudo-random k-subset of 0..n from a seed.
    fn seeded_subset(n: usize, k: usize, seed: u64) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            indices.swap(i, (s % (i as u64 + 1)) as usize);
        }
        indices.truncate(k);
        indices
    }

    #[test]
    fn blocked_matches_scalar_at_n_256() {
        // The acceptance-scale differential: blocked and scalar kernels must
        // be byte-identical at the P1 grid's largest n, on both a
        // systematic-heavy and a parity-heavy subset.
        let n = 256;
        let t = (n - 1) / 3;
        let k = n - t; // 171
        let rs = ReedSolomon::new(n, k).unwrap();
        let data: Vec<u8> = (0..40_000u32)
            .map(|i| i.wrapping_mul(2654435761) as u8)
            .collect();

        let blocked = rs.encode(&data);
        let scalar = rs.encode_scalar(&data);
        assert_eq!(blocked, scalar);

        // Systematic-heavy: data positions present, Direct fast path.
        let subset: Vec<_> = (0..k).map(|i| (i, blocked[i].clone())).collect();
        assert_eq!(
            rs.decode(&subset).unwrap(),
            rs.decode_scalar(&subset).unwrap()
        );
        assert_eq!(rs.decode(&subset).unwrap(), data);

        // Parity-heavy: all parity shares plus the tail of the data shares —
        // maximal Combine work.
        let subset: Vec<_> = (n - k..n).map(|i| (i, blocked[i].clone())).collect();
        assert_eq!(
            rs.decode(&subset).unwrap(),
            rs.decode_scalar(&subset).unwrap()
        );
        assert_eq!(rs.decode(&subset).unwrap(), data);
    }

    #[test]
    fn blocked_matches_scalar_across_block_boundary() {
        // Stripe counts straddling STRIPE_BLOCK exercise the block loop's
        // remainder handling. Keep k small so the payload stays manageable.
        let rs = ReedSolomon::new(4, 2).unwrap();
        for stripes in [
            STRIPE_BLOCK - 1,
            STRIPE_BLOCK,
            STRIPE_BLOCK + 1,
            2 * STRIPE_BLOCK + 3,
        ] {
            // 2k bytes per stripe, minus framing slack so counts land near
            // the boundary.
            let data = vec![0x5au8; stripes * 4 - 3];
            let blocked = rs.encode(&data);
            let scalar = rs.encode_scalar(&data);
            assert_eq!(blocked, scalar, "stripes = {stripes}");
            let subset: Vec<_> = [2usize, 3]
                .iter()
                .map(|&i| (i, blocked[i].clone()))
                .collect();
            assert_eq!(
                rs.decode(&subset).unwrap(),
                rs.decode_scalar(&subset).unwrap(),
                "stripes = {stripes}"
            );
            assert_eq!(rs.decode(&subset).unwrap(), data, "stripes = {stripes}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_round_trip_random_subsets(
            data in proptest::collection::vec(any::<u8>(), 0..500),
            n in 4usize..20,
            seed in any::<u64>(),
        ) {
            let t = (n - 1) / 3;
            let k = n - t;
            let rs = ReedSolomon::new(n, k).unwrap();
            let shares = rs.encode(&data);
            let subset: Vec<_> = seeded_subset(n, k, seed)
                .into_iter()
                .map(|i| (i, shares[i].clone()))
                .collect();
            prop_assert_eq!(rs.decode(&subset).unwrap(), data);
        }

        #[test]
        fn prop_reencode_matches(data in proptest::collection::vec(any::<u8>(), 0..300)) {
            // decode → encode must reproduce the identical share vector
            // (determinism is what lets Π_ℓBA+ cross-check codewords).
            let rs = ReedSolomon::new(7, 5).unwrap();
            let shares = rs.encode(&data);
            let subset: Vec<_> = shares.iter().cloned().enumerate().skip(2).collect();
            let decoded = rs.decode(&subset).unwrap();
            prop_assert_eq!(rs.encode(&decoded), shares);
        }

        #[test]
        fn prop_blocked_matches_scalar(
            data in proptest::collection::vec(any::<u8>(), 0..800),
            n in 4usize..40,
            seed in any::<u64>(),
        ) {
            // The blocked kernels must be byte-identical to the retained
            // scalar oracle across random (n, k, data, subset).
            let t = (n - 1) / 3;
            let k = n - t;
            let rs = ReedSolomon::new(n, k).unwrap();
            let blocked = rs.encode(&data);
            let scalar = rs.encode_scalar(&data);
            prop_assert_eq!(&blocked, &scalar);
            let subset: Vec<_> = seeded_subset(n, k, seed)
                .into_iter()
                .map(|i| (i, blocked[i].clone()))
                .collect();
            prop_assert_eq!(rs.decode(&subset).unwrap(), rs.decode_scalar(&subset).unwrap());
            prop_assert_eq!(rs.decode(&subset).unwrap(), data);
        }
    }
}
