//! Systematic Reed–Solomon erasure coding (`RS.ENCODE` / `RS.DECODE`, §7).

use std::error::Error;
use std::fmt;

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::gf::{Gf, ORDER};

/// One of the `n` codewords produced by [`ReedSolomon::encode`]
/// (the paper's `sᵢ`).
///
/// A share carries one `GF(2^16)` symbol per data stripe; its byte size is
/// `O(|payload| / k)`, i.e. `O(ℓ/n)` bits for the protocol's `k = n − t`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Share {
    symbols: Vec<Gf>,
}

impl Share {
    /// Number of stripes (symbols) in this share.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the share is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Share {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.symbols.len() as u64);
        for s in &self.symbols {
            w.put_raw(&s.0.to_be_bytes());
        }
    }

    fn encoded_len(&self) -> usize {
        Writer::varint_len(self.symbols.len() as u64) + 2 * self.symbols.len()
    }
}

impl Decode for Share {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = usize::decode(r)?;
        if len.saturating_mul(2) > r.remaining() {
            return Err(CodecError::LengthOverrun {
                claimed: 2 * len,
                available: r.remaining(),
            });
        }
        let mut symbols = Vec::with_capacity(len);
        for _ in 0..len {
            let raw = r.get_raw(2)?;
            symbols.push(Gf(u16::from_be_bytes([raw[0], raw[1]])));
        }
        Ok(Share { symbols })
    }
}

/// Errors from Reed–Solomon configuration or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RsError {
    /// `(n, k)` outside `1 ≤ k ≤ n ≤ 2^16 − 1`.
    InvalidParameters {
        /// Total shares requested.
        n: usize,
        /// Threshold requested.
        k: usize,
    },
    /// Fewer than `k` distinct, in-range shares were provided.
    NotEnoughShares {
        /// Distinct usable shares seen.
        got: usize,
        /// Threshold `k`.
        needed: usize,
    },
    /// A share index was `≥ n`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// Shares disagree on the stripe count.
    LengthMismatch,
    /// The reconstructed payload framing was invalid (corrupt shares that
    /// nevertheless passed external checks, or inconsistent share subsets).
    BadPayload,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidParameters { n, k } => {
                write!(f, "invalid RS parameters n = {n}, k = {k}")
            }
            RsError::NotEnoughShares { got, needed } => {
                write!(f, "not enough shares: got {got}, need {needed}")
            }
            RsError::IndexOutOfRange { index } => write!(f, "share index {index} out of range"),
            RsError::LengthMismatch => write!(f, "shares have differing lengths"),
            RsError::BadPayload => write!(f, "reconstructed payload is malformed"),
        }
    }
}

impl Error for RsError {}

/// A systematic `(n, k)` Reed–Solomon code over `GF(2^16)`.
///
/// The data polynomial `p` of degree `< k` is defined by its evaluations at
/// `α₀ … α_{k−1}` (the data symbols); share `i` is `p(αᵢ)`. Any `k` distinct
/// shares determine `p`, hence the data — this is `RS.DECODE` from `n − t`
/// codewords with `k = n − t`.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// parity_matrix[row][col] = L_col(α_{k+row}) where L is the Lagrange
    /// basis over the data points α₀ … α_{k−1}.
    parity_matrix: Vec<Vec<Gf>>,
}

impl ReedSolomon {
    /// Creates a code with `n` total shares and threshold `k`.
    ///
    /// The paper's `Π_ℓBA+` uses `k = n − t`.
    ///
    /// # Errors
    ///
    /// [`RsError::InvalidParameters`] unless `1 ≤ k ≤ n ≤ 2^16 − 1`.
    pub fn new(n: usize, k: usize) -> Result<Self, RsError> {
        if k == 0 || k > n || n > ORDER {
            return Err(RsError::InvalidParameters { n, k });
        }
        let data_points: Vec<Gf> = (0..k).map(Gf::alpha).collect();
        let parity_matrix = (k..n)
            .map(|row| lagrange_row(&data_points, Gf::alpha(row)))
            .collect();
        Ok(Self {
            n,
            k,
            parity_matrix,
        })
    }

    /// Total number of shares `n`.
    pub fn total_shares(&self) -> usize {
        self.n
    }

    /// Reconstruction threshold `k`.
    pub fn threshold(&self) -> usize {
        self.k
    }

    /// `RS.ENCODE(v)`: splits `data` into `n` shares, any `k` of which
    /// reconstruct it.
    pub fn encode(&self, data: &[u8]) -> Vec<Share> {
        // Frame the payload with its length so decode can strip padding.
        let mut payload = Writer::with_capacity(data.len() + 9);
        payload.put_varint(data.len() as u64);
        payload.put_raw(data);
        let mut payload = payload.into_vec();
        let stripe_bytes = 2 * self.k;
        payload.resize(payload.len().div_ceil(stripe_bytes) * stripe_bytes, 0);
        let stripes = payload.len() / stripe_bytes;

        let mut shares = vec![
            Share {
                symbols: Vec::with_capacity(stripes)
            };
            self.n
        ];
        let mut data_syms = vec![Gf::ZERO; self.k];
        for s in 0..stripes {
            let base = s * stripe_bytes;
            for (j, sym) in data_syms.iter_mut().enumerate() {
                *sym = Gf(u16::from_be_bytes([
                    payload[base + 2 * j],
                    payload[base + 2 * j + 1],
                ]));
            }
            // Systematic part: shares 0..k carry the data symbols.
            for j in 0..self.k {
                shares[j].symbols.push(data_syms[j]);
            }
            // Parity part: evaluate p at α_k … α_{n−1}.
            for (row, share) in shares[self.k..].iter_mut().enumerate() {
                let mut acc = Gf::ZERO;
                for (c, &d) in data_syms.iter().enumerate() {
                    acc = acc.add(self.parity_matrix[row][c].mul(d));
                }
                share.symbols.push(acc);
            }
        }
        shares
    }

    /// `RS.DECODE`: reconstructs the original data from at least `k` shares
    /// given as `(index, share)` pairs (duplicates allowed, first wins).
    ///
    /// # Errors
    ///
    /// See [`RsError`] — too few shares, bad indices, inconsistent lengths,
    /// or malformed payload framing.
    pub fn decode(&self, shares: &[(usize, Share)]) -> Result<Vec<u8>, RsError> {
        let mut chosen: Vec<Option<&Share>> = vec![None; self.n];
        let mut distinct = 0;
        for (idx, share) in shares {
            if *idx >= self.n {
                return Err(RsError::IndexOutOfRange { index: *idx });
            }
            if chosen[*idx].is_none() {
                chosen[*idx] = Some(share);
                distinct += 1;
            }
        }
        if distinct < self.k {
            return Err(RsError::NotEnoughShares {
                got: distinct,
                needed: self.k,
            });
        }
        let picked: Vec<(usize, &Share)> = chosen
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, s)))
            .take(self.k)
            .collect();
        let stripes = picked[0].1.symbols.len();
        if picked.iter().any(|(_, s)| s.symbols.len() != stripes) {
            return Err(RsError::LengthMismatch);
        }

        // Precompute, for each data position j, the Lagrange coefficients of
        // the picked evaluation points at α_j. Fast path: a picked share at
        // index j < k *is* the data symbol (systematic code), but using the
        // matrix keeps the code uniform; we special-case only availability.
        let xs: Vec<Gf> = picked.iter().map(|(i, _)| Gf::alpha(*i)).collect();
        let mut coeff_rows: Vec<CoeffRow> = Vec::with_capacity(self.k);
        for j in 0..self.k {
            if let Some(pos) = picked.iter().position(|(i, _)| *i == j) {
                coeff_rows.push(CoeffRow::Direct(pos));
            } else {
                coeff_rows.push(CoeffRow::Combine(lagrange_row(&xs, Gf::alpha(j))));
            }
        }

        let stripe_bytes = 2 * self.k;
        let mut payload = vec![0u8; stripes * stripe_bytes];
        for s in 0..stripes {
            for (j, row) in coeff_rows.iter().enumerate() {
                let sym = match row {
                    CoeffRow::Direct(pos) => picked[*pos].1.symbols[s],
                    CoeffRow::Combine(coeffs) => {
                        let mut acc = Gf::ZERO;
                        for (c, (_, share)) in picked.iter().enumerate() {
                            acc = acc.add(coeffs[c].mul(share.symbols[s]));
                        }
                        acc
                    }
                };
                let be = sym.0.to_be_bytes();
                payload[s * stripe_bytes + 2 * j] = be[0];
                payload[s * stripe_bytes + 2 * j + 1] = be[1];
            }
        }

        // Strip framing.
        let mut r = Reader::new(&payload);
        let len = r.get_varint().map_err(|_| RsError::BadPayload)?;
        let len = usize::try_from(len).map_err(|_| RsError::BadPayload)?;
        let data = r.get_raw(len).map_err(|_| RsError::BadPayload)?.to_vec();
        // Remaining bytes must be zero padding.
        let consumed = payload.len() - r.remaining();
        if payload[consumed..].iter().any(|&b| b != 0) {
            return Err(RsError::BadPayload);
        }
        Ok(data)
    }
}

enum CoeffRow {
    /// The data symbol is directly present at this position of the picked set.
    Direct(usize),
    /// Linear combination of the picked symbols with these coefficients.
    Combine(Vec<Gf>),
}

/// Lagrange basis evaluations: `out[i] = Lᵢ(x)` over the nodes `xs`.
fn lagrange_row(xs: &[Gf], x: Gf) -> Vec<Gf> {
    (0..xs.len())
        .map(|i| {
            let mut num = Gf::ONE;
            let mut den = Gf::ONE;
            for (j, &xj) in xs.iter().enumerate() {
                if i != j {
                    num = num.mul(x.add(xj));
                    den = den.mul(xs[i].add(xj));
                }
            }
            num.div(den)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_all_shares() {
        let rs = ReedSolomon::new(7, 5).unwrap();
        let data = b"hello reed-solomon";
        let shares = rs.encode(data);
        assert_eq!(shares.len(), 7);
        let pairs: Vec<_> = shares.into_iter().enumerate().collect();
        assert_eq!(rs.decode(&pairs).unwrap(), data);
    }

    #[test]
    fn round_trip_every_k_subset() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..57).collect();
        let shares = rs.encode(&data);
        // All C(6,4) subsets.
        for a in 0..6 {
            for b in a + 1..6 {
                for c in b + 1..6 {
                    for d in c + 1..6 {
                        let subset: Vec<_> = [a, b, c, d]
                            .iter()
                            .map(|&i| (i, shares[i].clone()))
                            .collect();
                        assert_eq!(rs.decode(&subset).unwrap(), data, "{a}{b}{c}{d}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_data_round_trips() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let shares = rs.encode(b"");
        let pairs: Vec<_> = shares.into_iter().enumerate().skip(1).collect();
        assert_eq!(rs.decode(&pairs).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn too_few_shares_rejected() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let shares = rs.encode(b"abc");
        let pairs: Vec<_> = shares.into_iter().enumerate().take(2).collect();
        assert!(matches!(
            rs.decode(&pairs),
            Err(RsError::NotEnoughShares { got: 2, needed: 3 })
        ));
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let shares = rs.encode(b"abc");
        let pairs = vec![
            (0, shares[0].clone()),
            (0, shares[0].clone()),
            (1, shares[1].clone()),
        ];
        assert!(matches!(
            rs.decode(&pairs),
            Err(RsError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn bad_index_rejected() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let shares = rs.encode(b"abc");
        let pairs = vec![(9, shares[0].clone())];
        assert!(matches!(
            rs.decode(&pairs),
            Err(RsError::IndexOutOfRange { index: 9 })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReedSolomon::new(0, 0).is_err());
        assert!(ReedSolomon::new(3, 4).is_err());
        assert!(ReedSolomon::new(1 << 16, 5).is_err());
        assert!(ReedSolomon::new(65535, 5).is_ok());
    }

    #[test]
    fn share_size_is_data_over_k() {
        let rs = ReedSolomon::new(31, 21).unwrap();
        let data = vec![0xaa; 100_000];
        let shares = rs.encode(&data);
        let share_bytes = shares[0].byte_len();
        // ~ 100_000 / 21 ≈ 4762 plus framing slack.
        assert!(
            share_bytes < 100_000 / 21 + 64,
            "share too big: {share_bytes}"
        );
    }

    #[test]
    fn determinism() {
        let rs = ReedSolomon::new(7, 5).unwrap();
        assert_eq!(rs.encode(b"same input"), rs.encode(b"same input"));
    }

    #[test]
    fn share_codec_round_trip() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let share = rs.encode(b"codec me").remove(3);
        let bytes = share.encode_to_vec();
        assert_eq!(Share::decode_from_slice(&bytes).unwrap(), share);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_round_trip_random_subsets(
            data in proptest::collection::vec(any::<u8>(), 0..500),
            n in 4usize..20,
            seed in any::<u64>(),
        ) {
            let t = (n - 1) / 3;
            let k = n - t;
            let rs = ReedSolomon::new(n, k).unwrap();
            let shares = rs.encode(&data);
            // Deterministic pseudo-random k-subset from the seed.
            let mut indices: Vec<usize> = (0..n).collect();
            let mut s = seed;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                indices.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let subset: Vec<_> = indices[..k].iter().map(|&i| (i, shares[i].clone())).collect();
            prop_assert_eq!(rs.decode(&subset).unwrap(), data);
        }

        #[test]
        fn prop_reencode_matches(data in proptest::collection::vec(any::<u8>(), 0..300)) {
            // decode → encode must reproduce the identical share vector
            // (determinism is what lets Π_ℓBA+ cross-check codewords).
            let rs = ReedSolomon::new(7, 5).unwrap();
            let shares = rs.encode(&data);
            let subset: Vec<_> = shares.iter().cloned().enumerate().skip(2).collect();
            let decoded = rs.decode(&subset).unwrap();
            prop_assert_eq!(rs.encode(&decoded), shares);
        }
    }
}
