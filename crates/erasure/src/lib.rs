//! Reed–Solomon erasure coding over `GF(2^16)`.
//!
//! The paper's extension protocol `Π_ℓBA+` (§7) assumes "standard RS codes
//! with parameters `(n, n−t)`": a deterministic `RS.ENCODE(v)` producing `n`
//! codewords of `O(|BITS(v)|/n)` bits each, such that any `n − t` codewords
//! reconstruct `v` (`RS.DECODE`). Corrupted codewords are *detected and
//! discarded* by Merkle witnesses before decoding, so only **erasure**
//! decoding is needed — no error locating.
//!
//! This crate implements the code from scratch:
//!
//! * [`gf`] — the field `GF(2^16)` with full log/antilog tables
//!   (supports up to `2^16 − 1` parties).
//! * [`ReedSolomon`] — systematic polynomial-evaluation encoding and
//!   Lagrange-interpolation erasure decoding.
//!
//! # Examples
//!
//! ```
//! use ca_erasure::ReedSolomon;
//!
//! # fn main() -> Result<(), ca_erasure::RsError> {
//! let rs = ReedSolomon::new(7, 5)?; // n = 7 parties, any 5 shares suffice
//! let shares = rs.encode(b"the quick brown fox");
//! let subset: Vec<_> = shares.iter().cloned().enumerate()
//!     .filter(|(i, _)| *i != 1 && *i != 4) // two shares lost
//!     .collect();
//! assert_eq!(rs.decode(&subset)?, b"the quick brown fox");
//! # Ok(())
//! # }
//! ```

pub mod gf;

mod rs;

pub use rs::{ReedSolomon, RsError, Share, ShareRef};
