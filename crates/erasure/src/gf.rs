//! The Galois field `GF(2^16)`.
//!
//! Arithmetic uses full logarithm/antilogarithm tables built once at first
//! use (`2 × 128 KiB`), giving O(1) multiply/divide. The field is generated
//! by the primitive polynomial `x^16 + x^12 + x^3 + x + 1` (0x1100B).
//!
//! The paper's RS codewords are "elements of a Galois Field `GF(2^a)` with
//! `n ≤ 2^a − 1`" — with `a = 16` this supports up to 65 535 parties.

use std::sync::OnceLock;

/// Primitive polynomial for GF(2^16): x^16 + x^12 + x^3 + x + 1.
const PRIMITIVE_POLY: u32 = 0x1100B;

/// Number of nonzero field elements.
pub const ORDER: usize = (1 << 16) - 1;

struct Tables {
    /// exp[i] = g^i for i in 0..2*ORDER (doubled to skip a modulo).
    exp: Vec<u16>,
    /// log[x] = i with g^i = x, for x != 0.
    log: Vec<u16>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * ORDER];
        let mut log = vec![0u16; 1 << 16];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(ORDER) {
            *e = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x10000 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in ORDER..2 * ORDER {
            exp[i] = exp[i - ORDER];
        }
        Tables { exp, log }
    })
}

/// An element of `GF(2^16)`.
///
/// Addition is XOR; multiplication/division go through the log tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf(pub u16);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// The generator `g` of the multiplicative group.
    pub fn generator() -> Gf {
        Gf(tables().exp[1])
    }

    /// `g^i`.
    pub fn alpha(i: usize) -> Gf {
        Gf(tables().exp[i % ORDER])
    }

    /// Field addition (XOR; also subtraction in characteristic 2).
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: named ops keep call sites explicit about GF semantics
    pub fn add(self, other: Gf) -> Gf {
        Gf(self.0 ^ other.0)
    }

    /// Field multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: named ops keep call sites explicit about GF semantics
    pub fn mul(self, other: Gf) -> Gf {
        if self.0 == 0 || other.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[other.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: named ops keep call sites explicit about GF semantics
    pub fn div(self, other: Gf) -> Gf {
        assert!(other.0 != 0, "division by zero in GF(2^16)");
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + ORDER - t.log[other.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn inv(self) -> Gf {
        Gf::ONE.div(self)
    }

    /// Exponentiation by squaring (used only in tests; encoding uses the
    /// tables directly).
    pub fn pow(self, mut e: u64) -> Gf {
        let mut base = self;
        let mut acc = Gf::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }
}

/// Split multiplication tables for one fixed `GF(2^16)` coefficient.
///
/// Multiplication by a constant is linear over `GF(2)`, so the product
/// decomposes over the low and high bytes of the variable operand:
/// `c · x = c · (x & 0xff) ⊕ c · (x & 0xff00)`. Tabulating both halves gives
/// `mul(x) = lo[x & 0xff] ^ hi[x >> 8]` — two L1 loads and an XOR per
/// symbol, with no branches and no dependence on the 384 KiB log/antilog
/// pair that the generic [`Gf::mul`] path streams through.
///
/// The table itself is built in the log domain (one index add plus one
/// antilog lookup per entry, 510 entries), so a build amortizes after a few
/// hundred symbols; the blocked RS kernels sweep thousands of stripes per
/// build. Both tables together occupy 1 KiB and stay L1-resident for the
/// whole sweep.
#[derive(Debug, Clone)]
pub struct MulTable {
    lo: [u16; 256],
    hi: [u16; 256],
}

impl MulTable {
    /// Builds the split tables for multiplication by `c`.
    pub fn new(c: Gf) -> Self {
        let mut lo = [0u16; 256];
        let mut hi = [0u16; 256];
        if c.0 != 0 {
            let t = tables();
            let log_c = t.log[c.0 as usize] as usize;
            for x in 1..256usize {
                lo[x] = t.exp[log_c + t.log[x] as usize];
                hi[x] = t.exp[log_c + t.log[x << 8] as usize];
            }
        }
        Self { lo, hi }
    }

    /// `c · x` through the split tables.
    #[inline]
    pub fn mul(&self, x: Gf) -> Gf {
        Gf(self.lo[(x.0 & 0xff) as usize] ^ self.hi[(x.0 >> 8) as usize])
    }

    /// Fused multiply-accumulate over a block: `acc[i] ^= c · xs[i]`.
    ///
    /// This is the RS inner loop; the slice form lets the compiler unroll
    /// and keep both tables hot across the whole block.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn mul_acc(&self, acc: &mut [Gf], xs: &[Gf]) {
        assert_eq!(acc.len(), xs.len(), "mul_acc length mismatch");
        for (a, &x) in acc.iter_mut().zip(xs) {
            a.0 ^= self.lo[(x.0 & 0xff) as usize] ^ self.hi[(x.0 >> 8) as usize];
        }
    }
}

/// Evaluates the polynomial `coeffs[0] + coeffs[1]·x + …` at `x` (Horner).
pub fn poly_eval(coeffs: &[Gf], x: Gf) -> Gf {
    let mut acc = Gf::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc.mul(x).add(c);
    }
    acc
}

/// Lagrange interpolation: given distinct points `(xᵢ, yᵢ)`, evaluates the
/// unique polynomial of degree `< points.len()` through them at `x`.
///
/// # Panics
///
/// Panics if two `xᵢ` coincide.
pub fn lagrange_eval(points: &[(Gf, Gf)], x: Gf) -> Gf {
    let mut acc = Gf::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Early exit: interpolating exactly at a sample point.
        if xi == x {
            return yi;
        }
        let mut num = Gf::ONE;
        let mut den = Gf::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(xi != xj, "duplicate x-coordinate in interpolation");
            num = num.mul(x.add(xj)); // (x − xj) = (x + xj) in char 2
            den = den.mul(xi.add(xj));
        }
        acc = acc.add(yi.mul(num.div(den)));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identities() {
        let a = Gf(0x1234);
        assert_eq!(a.add(Gf::ZERO), a);
        assert_eq!(a.mul(Gf::ONE), a);
        assert_eq!(a.mul(Gf::ZERO), Gf::ZERO);
        assert_eq!(a.add(a), Gf::ZERO); // characteristic 2
    }

    #[test]
    fn generator_has_full_order() {
        let g = Gf::generator();
        assert_eq!(g.pow(ORDER as u64), Gf::ONE);
        // Order divides 2^16-1 = 3 · 5 · 17 · 257; check proper divisors.
        for d in [3u64, 5, 17, 257] {
            assert_ne!(g.pow(ORDER as u64 / d), Gf::ONE, "divisor {d}");
        }
    }

    #[test]
    fn alpha_points_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(Gf::alpha(i)), "alpha({i}) repeats");
        }
    }

    #[test]
    fn alpha_wraps_at_order() {
        // g^ORDER = g^0 = 1: indices reduce mod the multiplicative order,
        // not mod 2^16 — an off-by-one here would silently alias evaluation
        // points for i ≥ ORDER.
        assert_eq!(Gf::alpha(ORDER), Gf::alpha(0));
        assert_eq!(Gf::alpha(ORDER), Gf::ONE);
        assert_eq!(Gf::alpha(ORDER + 1), Gf::alpha(1));
        assert_eq!(Gf::alpha(ORDER + 5), Gf::alpha(5));
        assert_eq!(Gf::alpha(2 * ORDER), Gf::ONE);
        assert_eq!(Gf::alpha(2 * ORDER + 7), Gf::alpha(7));
        // And the points just below the wrap stay distinct from their images.
        assert_ne!(Gf::alpha(ORDER - 1), Gf::alpha(ORDER));
    }

    #[test]
    fn mul_table_matches_generic_mul_exhaustive_coeffs() {
        // Spot-check a spread of coefficients against Gf::mul over a
        // structured operand set; the proptest below covers random pairs.
        let operands: Vec<u16> = (0..=255u16)
            .map(|b| b << 8 | b ^ 0x5a)
            .chain([0, 1, 2, 0x00ff, 0xff00, 0xffff, 0x1234])
            .collect();
        for c in [0u16, 1, 2, 3, 0x00ff, 0x0100, 0x8000, 0xffff, 0x1100] {
            let t = MulTable::new(Gf(c));
            for &x in &operands {
                assert_eq!(t.mul(Gf(x)), Gf(c).mul(Gf(x)), "c={c:#06x} x={x:#06x}");
            }
        }
    }

    #[test]
    fn mul_acc_accumulates_xor() {
        let c = Gf(0x1234);
        let t = MulTable::new(c);
        let xs: Vec<Gf> = (0..100u16).map(|i| Gf(i.wrapping_mul(2557))).collect();
        let mut acc: Vec<Gf> = (0..100u16).map(Gf).collect();
        let expect: Vec<Gf> = acc
            .iter()
            .zip(&xs)
            .map(|(&a, &x)| a.add(c.mul(x)))
            .collect();
        t.mul_acc(&mut acc, &xs);
        assert_eq!(acc, expect);
    }

    #[test]
    fn poly_eval_constant_and_linear() {
        assert_eq!(poly_eval(&[Gf(7)], Gf(99)), Gf(7));
        // p(x) = 3 + 2x at x=1 → 3 ^ 2 = 1.
        assert_eq!(poly_eval(&[Gf(3), Gf(2)], Gf::ONE), Gf(1));
    }

    #[test]
    fn lagrange_recovers_polynomial() {
        let coeffs = [Gf(5), Gf(17), Gf(300), Gf(9)];
        let points: Vec<(Gf, Gf)> = (1..=4)
            .map(|i| (Gf::alpha(i), poly_eval(&coeffs, Gf::alpha(i))))
            .collect();
        for x in [Gf::ZERO, Gf(1), Gf(12345), Gf::alpha(2)] {
            assert_eq!(lagrange_eval(&points, x), poly_eval(&coeffs, x));
        }
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
            let (a, b, c) = (Gf(a), Gf(b), Gf(c));
            prop_assert_eq!(a.add(b), b.add(a));
            prop_assert_eq!(a.mul(b), b.mul(a));
            prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        }

        #[test]
        fn prop_inverse(a in 1u16..) {
            let a = Gf(a);
            prop_assert_eq!(a.mul(a.inv()), Gf::ONE);
            prop_assert_eq!(a.div(a), Gf::ONE);
        }

        #[test]
        fn prop_div_is_mul_inv(a in any::<u16>(), b in 1u16..) {
            let (a, b) = (Gf(a), Gf(b));
            prop_assert_eq!(a.div(b), a.mul(b.inv()));
        }

        #[test]
        fn prop_mul_table_matches_generic_mul(c in any::<u16>(), x in any::<u16>()) {
            let t = MulTable::new(Gf(c));
            prop_assert_eq!(t.mul(Gf(x)), Gf(c).mul(Gf(x)));
        }
    }
}
