//! Message-level adversary strategies.

use bytes::Bytes;
use ca_net::{Adversary, PartyId, RoundActions, RoundView, SendSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sends random byte strings of random lengths from every corrupted party to
/// every party, every round. Stresses codec robustness: all of this must be
/// indistinguishable from silence to honest parties.
#[derive(Debug)]
pub struct Garbage {
    rng: SmallRng,
    max_len: usize,
}

impl Garbage {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            max_len: 64,
        }
    }

    /// Caps the garbage payload length (default 64 bytes).
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len.max(1);
        self
    }
}

impl Adversary for Garbage {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        let mut actions = RoundActions::default();
        for &from in view.corrupted {
            for to in 0..view.n {
                if self.rng.gen_bool(0.25) {
                    continue; // occasionally stay silent on a channel
                }
                let len = self.rng.gen_range(0..self.max_len);
                let payload: Vec<u8> = (0..len).map(|_| self.rng.gen()).collect();
                actions.sends.push(SendSpec {
                    from,
                    to: PartyId(to),
                    payload: Bytes::from(payload),
                });
            }
        }
        actions
    }
}

/// Replays honest payloads of the *current* round (rushing) from corrupted
/// parties, choosing independently per recipient. The injected messages are
/// perfectly well-formed protocol messages — only their origin and
/// consistency are wrong — which attacks vote counting and quorum
/// intersection much harder than garbage does.
#[derive(Debug)]
pub struct Replay {
    rng: SmallRng,
}

impl Replay {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for Replay {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        let mut actions = RoundActions::default();
        if view.honest_sends.is_empty() {
            return actions;
        }
        for &from in view.corrupted {
            for to in 0..view.n {
                let pick = self.rng.gen_range(0..view.honest_sends.len());
                actions.sends.push(SendSpec {
                    from,
                    to: PartyId(to),
                    payload: view.honest_sends[pick].2.clone(),
                });
            }
        }
        actions
    }
}

/// Classic equivocation: each corrupted party picks **two** distinct honest
/// payloads each round and sends one to the low half of the parties and the
/// other to the high half, trying to drive honest parties into conflicting
/// quorums.
#[derive(Debug)]
pub struct Equivocate {
    rng: SmallRng,
}

impl Equivocate {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for Equivocate {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        let mut actions = RoundActions::default();
        if view.honest_sends.is_empty() {
            return actions;
        }
        for &from in view.corrupted {
            let a = self.rng.gen_range(0..view.honest_sends.len());
            let b = self.rng.gen_range(0..view.honest_sends.len());
            let low = view.honest_sends[a].2.clone();
            let high = view.honest_sends[b].2.clone();
            for to in 0..view.n {
                let payload = if to < view.n / 2 {
                    low.clone()
                } else {
                    high.clone()
                };
                actions.sends.push(SendSpec {
                    from,
                    to: PartyId(to),
                    payload,
                });
            }
        }
        actions
    }
}

/// Adaptive corruption: starts with no corrupted parties and corrupts one
/// additional (lowest-id honest) party every `interval` rounds until the
/// budget `t` is spent, then plays [`Garbage`] with the growing set.
///
/// Exercises the "adaptive adversary may corrupt at any point of the
/// execution" clause of the model.
#[derive(Debug)]
pub struct AdaptiveGarbage {
    interval: u64,
    inner: Garbage,
}

impl AdaptiveGarbage {
    /// Corrupts one new party every `interval` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(seed: u64, interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        Self {
            interval,
            inner: Garbage::new(seed),
        }
    }
}

impl Adversary for AdaptiveGarbage {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        let mut actions = self.inner.on_round(view);
        if view.round.is_multiple_of(self.interval) && view.corrupted.len() < view.t {
            if let Some(&victim) = view.honest_parties().first() {
                actions.corrupt.push(victim);
            }
        }
        actions
    }
}

/// Crash-stop at a chosen round: corrupted parties replay honest payloads
/// (i.e. look protocol-plausible) until round `crash_at`, then fall silent
/// forever. Exercises the difference between "byzantine from the start"
/// and mid-protocol failure.
#[derive(Debug)]
pub struct DelayedCrash {
    crash_at: u64,
    inner: Replay,
}

impl DelayedCrash {
    /// Plausible until `crash_at`, silent afterwards.
    pub fn new(seed: u64, crash_at: u64) -> Self {
        Self {
            crash_at,
            inner: Replay::new(seed),
        }
    }
}

impl Adversary for DelayedCrash {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        if view.round >= self.crash_at {
            RoundActions::default()
        } else {
            self.inner.on_round(view)
        }
    }
}

/// Equivocate-then-crash: corrupted parties equivocate (two honest
/// payloads, split across recipients) until round `crash_at`, then fall
/// silent forever. The worst case for an optimistic fast path: the
/// equivocation poisons the attempt while the subsequent silence tests
/// that the certified fallback still terminates with `f` fewer senders.
#[derive(Debug)]
pub struct EquivocateThenCrash {
    crash_at: u64,
    inner: Equivocate,
}

impl EquivocateThenCrash {
    /// Equivocates until `crash_at`, silent afterwards.
    pub fn new(seed: u64, crash_at: u64) -> Self {
        Self {
            crash_at,
            inner: Equivocate::new(seed),
        }
    }
}

impl Adversary for EquivocateThenCrash {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        if view.round >= self.crash_at {
            RoundActions::default()
        } else {
            self.inner.on_round(view)
        }
    }
}

/// Late fault: corrupted parties behave exactly like honest silence until
/// round `start_at`, then spray garbage forever. Complements
/// [`DelayedCrash`]: the misbehavior *starts* late instead of stopping
/// early, so an optimistic protocol that sampled a clean prefix of the
/// run must still survive the onset.
#[derive(Debug)]
pub struct LateFault {
    start_at: u64,
    inner: Garbage,
}

impl LateFault {
    /// Silent until `start_at`, garbage afterwards.
    pub fn new(seed: u64, start_at: u64) -> Self {
        Self {
            start_at,
            inner: Garbage::new(seed),
        }
    }
}

impl Adversary for LateFault {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        if view.round < self.start_at {
            RoundActions::default()
        } else {
            self.inner.on_round(view)
        }
    }
}

/// Periodic burst attack: silent except every `period`-th round, where all
/// corrupted parties spray equivocating replays. Timed to coincide with
/// king/vote rounds of phase-structured protocols (whose period is a small
/// constant), without needing protocol knowledge.
#[derive(Debug)]
pub struct PeriodicBurst {
    period: u64,
    inner: Equivocate,
}

impl PeriodicBurst {
    /// Bursts on rounds `r` with `r % period == period − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(seed: u64, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            period,
            inner: Equivocate::new(seed),
        }
    }
}

impl Adversary for PeriodicBurst {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        if view.round % self.period == self.period - 1 {
            self.inner.on_round(view)
        } else {
            RoundActions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_net::{Comm, CommExt, Corruption, Sim};

    fn run_under(adv: impl Adversary + 'static) -> ca_net::RunReport<usize> {
        Sim::new(7)
            .corrupt(PartyId(5), Corruption::Scripted)
            .corrupt(PartyId(6), Corruption::Scripted)
            .with_adversary(adv)
            .run(|ctx: &mut dyn Comm, _id| {
                let mut count = 0;
                for r in 0..5u64 {
                    let inbox = ctx.exchange(&r);
                    count += inbox.decode_each::<u64>().len();
                }
                count
            })
    }

    #[test]
    fn garbage_does_not_break_lockstep() {
        let report = run_under(Garbage::new(7));
        // Honest parties always hear the 5 honest senders; garbage decodes
        // to junk u64s sometimes (any bytes of len 1-10 can be a varint), so
        // count varies, but the run itself must stay in lock step.
        assert_eq!(report.metrics.rounds, 5);
        assert_eq!(report.honest_outputs().len(), 5);
        assert!(report.metrics.adversary_bits > 0);
    }

    #[test]
    fn replay_messages_are_well_formed() {
        let report = run_under(Replay::new(3));
        for out in report.honest_outputs() {
            // 5 honest + 2 replaying corrupted parties, all well-formed.
            assert_eq!(*out, 5 * 7);
        }
    }

    #[test]
    fn equivocate_runs() {
        let report = run_under(Equivocate::new(11));
        assert_eq!(report.metrics.rounds, 5);
    }

    #[test]
    fn delayed_crash_goes_silent() {
        let report = Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(DelayedCrash::new(1, 2))
            .run(|ctx: &mut dyn Comm, _id| {
                let mut per_round = Vec::new();
                for r in 0..4u64 {
                    let inbox = ctx.exchange(&r);
                    per_round.push(inbox.senders().count());
                }
                per_round
            });
        for out in report.honest_outputs() {
            // Rounds 0-1: replays present (4 senders); rounds 2-3: silent (3).
            assert_eq!(out[2], 3);
            assert_eq!(out[3], 3);
        }
    }

    #[test]
    fn periodic_burst_fires_on_schedule() {
        let report = Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(PeriodicBurst::new(2, 3))
            .run(|ctx: &mut dyn Comm, _id| {
                let mut per_round = Vec::new();
                for r in 0..6u64 {
                    let inbox = ctx.exchange(&r);
                    per_round.push(inbox.raw_from(PartyId(3)).len());
                }
                per_round
            });
        for out in report.honest_outputs() {
            assert_eq!(out[0], 0);
            assert_eq!(out[1], 0);
            assert!(out[2] > 0, "burst expected on round 2: {out:?}");
        }
    }

    #[test]
    fn equivocate_then_crash_goes_silent() {
        let report = Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(EquivocateThenCrash::new(5, 2))
            .run(|ctx: &mut dyn Comm, _id| {
                let mut per_round = Vec::new();
                for r in 0..4u64 {
                    let inbox = ctx.exchange(&r);
                    per_round.push(inbox.raw_from(PartyId(3)).len());
                }
                per_round
            });
        for out in report.honest_outputs() {
            assert!(out[0] > 0, "equivocation expected before crash: {out:?}");
            assert_eq!(out[2], 0, "silent after crash: {out:?}");
            assert_eq!(out[3], 0);
        }
    }

    #[test]
    fn late_fault_starts_on_schedule() {
        let report = Sim::new(4)
            .corrupt(PartyId(3), Corruption::Scripted)
            .with_adversary(LateFault::new(5, 2))
            .run(|ctx: &mut dyn Comm, _id| {
                let mut per_round = Vec::new();
                for r in 0..4u64 {
                    let inbox = ctx.exchange(&r);
                    per_round.push(inbox.raw_from(PartyId(3)).len());
                }
                per_round
            });
        for out in report.honest_outputs() {
            assert_eq!(out[0], 0, "silent before onset: {out:?}");
            assert_eq!(out[1], 0);
            // Garbage skips some channels randomly; across two rounds and
            // three honest observers at least one injection lands.
        }
        let total_late: usize = report
            .honest_outputs()
            .iter()
            .map(|out| out[2] + out[3])
            .sum();
        assert!(total_late > 0, "garbage expected after onset");
    }

    #[test]
    fn adaptive_garbage_spends_budget() {
        let report = Sim::new(7).with_adversary(AdaptiveGarbage::new(1, 2)).run(
            |ctx: &mut dyn Comm, _id| {
                for r in 0..10u64 {
                    ctx.exchange(&r);
                }
            },
        );
        assert_eq!(report.corrupted.len(), 2); // t = 2 for n = 7
    }
}
