//! Named attack plans: the adversary matrix of experiment T4.

use ca_net::{Corruption, PartyId, Sim};

use crate::strategies::{
    AdaptiveGarbage, DelayedCrash, Equivocate, EquivocateThenCrash, Garbage, LateFault,
    PeriodicBurst, Replay,
};

/// How a lying (protocol-following but corrupted) party distorts its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LieKind {
    /// Report an implausibly huge value (the `+100 °C` sensor of the
    /// paper's introduction).
    ExtremeHigh,
    /// Report an implausibly tiny value.
    ExtremeLow,
    /// Half the liars go high, half go low — the strongest input attack
    /// against prefix search (maximizes disagreement at every bit).
    Split,
}

/// Identifies one adversary strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackKind {
    /// No corruption at all (baseline sanity).
    None,
    /// `t` scripted parties that never send (crash from round 0).
    Crash,
    /// `t` scripted parties spraying malformed bytes.
    Garbage,
    /// `t` scripted parties replaying honest payloads cross-channel.
    Replay,
    /// `t` scripted parties equivocating two honest payloads.
    Equivocate,
    /// `t` protocol-following parties with adversarial inputs.
    Lying(LieKind),
    /// Starts fully honest; adaptively corrupts up to `t` parties mid-run,
    /// then sprays garbage.
    Adaptive,
    /// `t` scripted parties that look plausible (replay) then crash-stop
    /// mid-protocol.
    DelayedCrash,
    /// `t` scripted parties silent except periodic equivocation bursts.
    Burst,
    /// `t` scripted parties equivocating until mid-protocol, then
    /// crash-stopping: poisons an optimistic fast path *and* removes the
    /// senders the fallback would like to hear from.
    EquivocateThenCrash,
    /// `t` scripted parties indistinguishable from honest silence early,
    /// spraying garbage from a late round on: misbehavior *onset* after a
    /// clean prefix.
    LateFault,
}

/// A reproducible attack plan: a strategy plus its RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attack {
    /// The strategy.
    pub kind: AttackKind,
    /// Seed for any randomness the strategy uses.
    pub seed: u64,
}

impl Attack {
    /// An attack of the given kind with seed 0.
    pub fn new(kind: AttackKind) -> Self {
        Self { kind, seed: 0 }
    }

    /// No-corruption baseline.
    pub fn none() -> Self {
        Self::new(AttackKind::None)
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The full adversary matrix used by experiment T4 and the protocol test
    /// suites.
    pub fn standard_suite(seed: u64) -> Vec<Attack> {
        [
            AttackKind::None,
            AttackKind::Crash,
            AttackKind::Garbage,
            AttackKind::Replay,
            AttackKind::Equivocate,
            AttackKind::Lying(LieKind::ExtremeHigh),
            AttackKind::Lying(LieKind::ExtremeLow),
            AttackKind::Lying(LieKind::Split),
            AttackKind::Adaptive,
            AttackKind::DelayedCrash,
            AttackKind::Burst,
        ]
        .into_iter()
        .map(|kind| Attack { kind, seed })
        .collect()
    }

    /// The fast-path conformance matrix: fault schedules aimed at a
    /// fault-*adaptive* protocol — misbehave exactly at the fault budget,
    /// stop misbehaving, or start late — kept separate from
    /// [`Attack::standard_suite`] (whose length and order are pinned by
    /// existing tests and proptest index ranges).
    pub fn conformance_suite(seed: u64) -> Vec<Attack> {
        [
            AttackKind::EquivocateThenCrash,
            AttackKind::LateFault,
            // f = t from round 0: the budget's edge, silent flavor.
            AttackKind::Crash,
            AttackKind::DelayedCrash,
            AttackKind::Burst,
        ]
        .into_iter()
        .map(|kind| Attack { kind, seed })
        .collect()
    }

    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self.kind {
            AttackKind::None => "honest",
            AttackKind::Crash => "crash",
            AttackKind::Garbage => "garbage",
            AttackKind::Replay => "replay",
            AttackKind::Equivocate => "equivocate",
            AttackKind::Lying(LieKind::ExtremeHigh) => "lying-high",
            AttackKind::Lying(LieKind::ExtremeLow) => "lying-low",
            AttackKind::Lying(LieKind::Split) => "lying-split",
            AttackKind::Adaptive => "adaptive",
            AttackKind::DelayedCrash => "delayed-crash",
            AttackKind::Burst => "burst",
            AttackKind::EquivocateThenCrash => "equivocate-then-crash",
            AttackKind::LateFault => "late-fault",
        }
    }

    /// The parties this plan corrupts from the start of a run with `n`
    /// parties and budget `t` (the highest-id parties, by convention).
    pub fn corrupted_parties(&self, n: usize, t: usize) -> Vec<PartyId> {
        match self.kind {
            AttackKind::None | AttackKind::Adaptive => Vec::new(),
            _ => (n - t..n).map(PartyId).collect(),
        }
    }

    /// Whether corrupted parties run the honest protocol code with lying
    /// inputs (as opposed to being message-scripted).
    pub fn is_lying(&self) -> bool {
        matches!(self.kind, AttackKind::Lying(_))
    }

    /// For lying plans: how the `i`-th corrupted party (0-based among the
    /// corrupted) distorts its input. `None` for non-lying plans.
    pub fn lie_for(&self, corrupted_index: usize) -> Option<LieKind> {
        match self.kind {
            AttackKind::Lying(LieKind::Split) => Some(if corrupted_index.is_multiple_of(2) {
                LieKind::ExtremeHigh
            } else {
                LieKind::ExtremeLow
            }),
            AttackKind::Lying(kind) => Some(kind),
            _ => None,
        }
    }

    /// The message-level adversary strategy this plan installs, with the
    /// plan's canonical parameters (adaptive interval 3, delayed crash at
    /// round 10, burst period 4). `None` for plans that need no message
    /// scripting (honest, crash-silent, lying).
    ///
    /// Exposed so harnesses that wrap strategies — e.g. the per-session
    /// adversary lift in `ca-engine` — construct exactly the adversary that
    /// [`Attack::install`] would.
    pub fn strategy(&self) -> Option<Box<dyn ca_net::Adversary>> {
        match self.kind {
            AttackKind::None | AttackKind::Crash | AttackKind::Lying(_) => None,
            AttackKind::Garbage => Some(Box::new(Garbage::new(self.seed))),
            AttackKind::Replay => Some(Box::new(Replay::new(self.seed))),
            AttackKind::Equivocate => Some(Box::new(Equivocate::new(self.seed))),
            AttackKind::Adaptive => Some(Box::new(AdaptiveGarbage::new(self.seed, 3))),
            AttackKind::DelayedCrash => Some(Box::new(DelayedCrash::new(self.seed, 10))),
            AttackKind::Burst => Some(Box::new(PeriodicBurst::new(self.seed, 4))),
            AttackKind::EquivocateThenCrash => {
                Some(Box::new(EquivocateThenCrash::new(self.seed, 6)))
            }
            AttackKind::LateFault => Some(Box::new(LateFault::new(self.seed, 8))),
        }
    }

    /// Configures a [`Sim`] for this plan: marks corrupted parties and
    /// installs the message-level adversary.
    ///
    /// For [`AttackKind::Lying`] plans the corrupted parties run the honest
    /// protocol code; the *harness* must feed them distorted inputs
    /// (see [`Attack::lie_for`]).
    pub fn install(&self, sim: Sim, n: usize, t: usize) -> Sim {
        let mode = if self.is_lying() {
            Corruption::LyingHonest
        } else {
            Corruption::Scripted
        };
        let sim = self
            .corrupted_parties(n, t)
            .into_iter()
            .fold(sim, |s, p| s.corrupt(p, mode));
        match self.strategy() {
            Some(adv) => sim.with_adversary(adv),
            None => sim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_kinds() {
        let suite = Attack::standard_suite(1);
        assert_eq!(suite.len(), 11);
        let names: std::collections::HashSet<_> = suite.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 11, "names must be distinct");
    }

    #[test]
    fn conformance_suite_is_distinct_and_scripted() {
        let suite = Attack::conformance_suite(1);
        assert_eq!(suite.len(), 5);
        let names: std::collections::HashSet<_> = suite.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 5, "names must be distinct");
        for a in &suite {
            assert!(
                !a.is_lying(),
                "{}: conformance attacks are scripted",
                a.name()
            );
            assert_eq!(a.corrupted_parties(7, 2).len(), 2, "{}", a.name());
        }
    }

    #[test]
    fn corrupted_parties_are_last_t() {
        let a = Attack::new(AttackKind::Crash);
        assert_eq!(a.corrupted_parties(7, 2), vec![PartyId(5), PartyId(6)]);
        assert!(Attack::none().corrupted_parties(7, 2).is_empty());
    }

    #[test]
    fn split_lie_alternates() {
        let a = Attack::new(AttackKind::Lying(LieKind::Split));
        assert_eq!(a.lie_for(0), Some(LieKind::ExtremeHigh));
        assert_eq!(a.lie_for(1), Some(LieKind::ExtremeLow));
        assert_eq!(Attack::none().lie_for(0), None);
    }
}
