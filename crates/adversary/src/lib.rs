//! Byzantine adversary strategies for the convex-agreement simulator.
//!
//! The paper's adversary (§2) is adaptive and computationally bounded; it
//! fully controls up to `t < n/3` corrupted parties. In the simulator
//! (`ca-net`) an adversary is anything implementing [`ca_net::Adversary`]:
//! it is invoked each round with a *rushing* view (all honest round-`r`
//! messages) and answers with the corrupted parties' round-`r` messages and
//! optional adaptive corruptions.
//!
//! Two complementary classes of attack are provided:
//!
//! * **Message-level strategies** (this crate): garbage injection,
//!   equivocation, replay of honest payloads, adaptive corruption — these
//!   stress decoding robustness, quorum logic, and agreement.
//! * **Input-level strategies** ("byzantine parties may act as honest
//!   parties with inputs of their own choice", paper §3): modelled by
//!   running the *honest protocol code* under
//!   [`ca_net::Corruption::LyingHonest`] with adversary-chosen inputs.
//!   [`Attack`] tells the harness which parties lie and how
//!   ([`LieKind`]).
//!
//! [`Attack::install`] wires a strategy into a [`ca_net::Sim`]; the set
//! [`Attack::standard_suite`] is the adversary matrix used by experiment T4
//! and by the protocol test suites.

mod attack;
mod strategies;

pub use attack::{Attack, AttackKind, LieKind};
pub use strategies::{
    AdaptiveGarbage, DelayedCrash, Equivocate, EquivocateThenCrash, Garbage, LateFault,
    PeriodicBurst, Replay,
};
