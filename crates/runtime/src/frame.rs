//! Wire frames for the TCP transport.
//!
//! # Overhead accounting
//!
//! This module is the single place where transport framing overhead is
//! defined. `ca_net::Metrics::honest_bits` — the paper's `BITSℓ(Π)` —
//! counts **payload bits only** (the encoded protocol message handed to
//! `Comm::send_bytes`); it never includes the envelope this module adds.
//! The real wire cost of any frame is computable via
//! [`Frame::wire_len`], and the per-message delta between wire and
//! payload via [`Frame::overhead`]: the frame discriminant, the round
//! tag, the payload length varint, and the transport's
//! [`LENGTH_PREFIX_LEN`]-byte length prefix. Keeping the two notions
//! separate means experiment numbers track the paper's model while the
//! deployment cost stays auditable from one definition.

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

/// Bytes of big-endian length prefix the TCP transport puts before every
/// encoded frame.
pub const LENGTH_PREFIX_LEN: usize = 4;

/// Hard ceiling on one frame *body* read off the wire: the codec's decode
/// capacity plus the largest possible framing (tag byte + two maximal
/// varints). A length prefix above this could never decode into a valid
/// [`Frame`] anyway, so the transport rejects it before allocating a
/// receive buffer.
pub const MAX_WIRE_FRAME_LEN: usize = ca_codec::MAX_DECODE_CAPACITY + 21;

/// Ceiling on a handshake (`Hello`) frame *body*, enforced by the accept
/// side before any allocation. A well-formed hello is a tag byte plus a
/// `u32` varint (at most 6 bytes); anything claiming more is a stray or
/// hostile connection and is dropped without consuming an accept slot.
pub const MAX_HELLO_FRAME_LEN: usize = 16;

/// A peer announced a frame body longer than [`MAX_WIRE_FRAME_LEN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The announced body length in bytes.
    pub claimed: u64,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame length {} exceeds the {MAX_WIRE_FRAME_LEN}-byte wire limit",
            self.claimed
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Validates an incoming length prefix **before any allocation**.
///
/// Readers must call this on the raw prefix and only then size their
/// receive buffer, so a malicious 4 GiB length claim costs nothing.
///
/// # Errors
///
/// [`FrameTooLarge`] when the claimed length exceeds
/// [`MAX_WIRE_FRAME_LEN`].
pub fn validate_frame_len(len: u32) -> Result<usize, FrameTooLarge> {
    let len = len as usize;
    if len > MAX_WIRE_FRAME_LEN {
        return Err(FrameTooLarge {
            claimed: len as u64,
        });
    }
    Ok(len)
}

/// [`validate_frame_len`] for the handshake path: same contract, but
/// against the far tighter [`MAX_HELLO_FRAME_LEN`] bound, since an
/// unauthenticated stray connection gets no allocation budget at all.
///
/// # Errors
///
/// [`FrameTooLarge`] when the claimed length exceeds
/// [`MAX_HELLO_FRAME_LEN`].
pub fn validate_hello_len(len: u32) -> Result<usize, FrameTooLarge> {
    let len = len as usize;
    if len > MAX_HELLO_FRAME_LEN {
        return Err(FrameTooLarge {
            claimed: len as u64,
        });
    }
    Ok(len)
}

/// A length-prefixed frame exchanged between two parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: announces the sender's party index.
    Hello {
        /// Sender's party index.
        from: u32,
    },
    /// A protocol message belonging to a specific round.
    Msg {
        /// Round the message was sent in.
        round: u64,
        /// Opaque protocol payload.
        payload: Vec<u8>,
    },
    /// End-of-round marker: the sender has flushed everything for `round`.
    Eor {
        /// The completed round.
        round: u64,
    },
    /// The sender's protocol terminated; treat as end-of-round for all
    /// future rounds.
    Bye,
}

impl Frame {
    /// Protocol payload bytes carried by this frame — the quantity
    /// metered as `honest_bits`. Zero for control frames.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        match self {
            Frame::Msg { payload, .. } => payload.len(),
            Frame::Hello { .. } | Frame::Eor { .. } | Frame::Bye => 0,
        }
    }

    /// Total bytes this frame occupies on the wire: the length prefix
    /// plus the encoded frame body.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        LENGTH_PREFIX_LEN + self.encoded_len()
    }

    /// Framing bytes beyond the protocol payload:
    /// `wire_len() − payload_len()`. For control frames this is the whole
    /// frame.
    #[must_use]
    pub fn overhead(&self) -> usize {
        self.wire_len() - self.payload_len()
    }
}

impl Encode for Frame {
    fn encode(&self, w: &mut Writer) {
        self.as_ref_frame().encode(w);
    }

    fn encoded_len(&self) -> usize {
        self.as_ref_frame().encoded_len()
    }
}

impl Decode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        FrameRef::decode(r).map(FrameRef::into_owned)
    }
}

/// A borrowed view of a [`Frame`], decoded zero-copy from a receive
/// buffer: the `Msg` payload is a slice into the buffer the frame body was
/// read from, so the reader task can hand it onward (via
/// `Bytes::slice_ref`) without the decode-then-copy round-trip.
///
/// Wire format and validation are identical to [`Frame`];
/// [`Frame::decode`] delegates here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRef<'a> {
    /// Connection handshake: announces the sender's party index.
    Hello {
        /// Sender's party index.
        from: u32,
    },
    /// A protocol message belonging to a specific round.
    Msg {
        /// Round the message was sent in.
        round: u64,
        /// Opaque protocol payload, borrowed from the receive buffer.
        payload: &'a [u8],
    },
    /// End-of-round marker: the sender has flushed everything for `round`.
    Eor {
        /// The completed round.
        round: u64,
    },
    /// The sender's protocol terminated; treat as end-of-round for all
    /// future rounds.
    Bye,
}

impl<'a> FrameRef<'a> {
    /// Decodes a frame body, borrowing the payload from the input.
    ///
    /// # Errors
    ///
    /// Same contract as [`Frame::decode`].
    pub fn decode(r: &mut Reader<'a>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(FrameRef::Hello {
                from: u32::decode(r)?,
            }),
            1 => Ok(FrameRef::Msg {
                round: u64::decode(r)?,
                payload: r.get_bytes()?,
            }),
            2 => Ok(FrameRef::Eor {
                round: u64::decode(r)?,
            }),
            3 => Ok(FrameRef::Bye),
            other => Err(CodecError::InvalidDiscriminant {
                type_name: "Frame",
                value: u64::from(other),
            }),
        }
    }

    /// Decodes a complete frame body, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`FrameRef::decode`], plus [`CodecError::TrailingBytes`].
    pub fn decode_from_slice(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let frame = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(frame)
    }

    /// Converts the view into an owned [`Frame`] (copies the payload).
    #[must_use]
    pub fn into_owned(self) -> Frame {
        match self {
            FrameRef::Hello { from } => Frame::Hello { from },
            FrameRef::Msg { round, payload } => Frame::Msg {
                round,
                payload: payload.to_vec(),
            },
            FrameRef::Eor { round } => Frame::Eor { round },
            FrameRef::Bye => Frame::Bye,
        }
    }
}

impl Frame {
    /// Borrows this frame as a [`FrameRef`].
    #[must_use]
    pub fn as_ref_frame(&self) -> FrameRef<'_> {
        match self {
            Frame::Hello { from } => FrameRef::Hello { from: *from },
            Frame::Msg { round, payload } => FrameRef::Msg {
                round: *round,
                payload,
            },
            Frame::Eor { round } => FrameRef::Eor { round: *round },
            Frame::Bye => FrameRef::Bye,
        }
    }
}

impl Encode for FrameRef<'_> {
    fn encode(&self, w: &mut Writer) {
        match self {
            FrameRef::Hello { from } => {
                w.put_u8(0);
                from.encode(w);
            }
            FrameRef::Msg { round, payload } => {
                w.put_u8(1);
                round.encode(w);
                w.put_bytes(payload);
            }
            FrameRef::Eor { round } => {
                w.put_u8(2);
                round.encode(w);
            }
            FrameRef::Bye => w.put_u8(3),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            FrameRef::Hello { from } => 1 + from.encoded_len(),
            FrameRef::Msg { round, payload } => {
                1 + round.encoded_len() + Writer::varint_len(payload.len() as u64) + payload.len()
            }
            FrameRef::Eor { round } => 1 + round.encoded_len(),
            FrameRef::Bye => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for f in [
            Frame::Hello { from: 3 },
            Frame::Msg {
                round: 17,
                payload: vec![1, 2, 3],
            },
            Frame::Eor { round: 9 },
            Frame::Bye,
        ] {
            let bytes = f.encode_to_vec();
            assert_eq!(Frame::decode_from_slice(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn junk_rejected() {
        assert!(Frame::decode_from_slice(&[9]).is_err());
        assert!(Frame::decode_from_slice(&[]).is_err());
        assert!(FrameRef::decode_from_slice(&[9]).is_err());
        assert!(FrameRef::decode_from_slice(&[]).is_err());
    }

    #[test]
    fn frame_ref_borrows_payload_from_input() {
        let f = Frame::Msg {
            round: 42,
            payload: vec![7, 8, 9, 10],
        };
        let bytes = f.encode_to_vec();
        let view = FrameRef::decode_from_slice(&bytes).unwrap();
        let FrameRef::Msg { round, payload } = view else {
            panic!("wrong variant");
        };
        assert_eq!(round, 42);
        assert_eq!(payload, &[7, 8, 9, 10]);
        // Zero-copy: the payload slice points into the encoded buffer.
        let base = bytes.as_ptr() as usize;
        let p = payload.as_ptr() as usize;
        assert!(p >= base && p + payload.len() <= base + bytes.len());
        assert_eq!(view.into_owned(), f);
    }

    #[test]
    fn frame_ref_encode_matches_owned_encode() {
        for f in [
            Frame::Hello { from: 3 },
            Frame::Msg {
                round: 300,
                payload: vec![0xCD; 200],
            },
            Frame::Eor { round: 9 },
            Frame::Bye,
        ] {
            let owned = f.encode_to_vec();
            let borrowed = f.as_ref_frame().encode_to_vec();
            assert_eq!(owned, borrowed);
            assert_eq!(f.encoded_len(), owned.len());
            assert_eq!(f.as_ref_frame().encoded_len(), owned.len());
        }
    }

    #[test]
    fn wire_len_matches_what_the_transport_writes() {
        for f in [
            Frame::Hello { from: 3 },
            Frame::Msg {
                round: 300,
                payload: vec![0; 200],
            },
            Frame::Eor { round: 9 },
            Frame::Bye,
        ] {
            let body = f.encode_to_vec();
            assert_eq!(f.wire_len(), LENGTH_PREFIX_LEN + body.len());
            assert_eq!(f.overhead(), f.wire_len() - f.payload_len());
        }
    }

    /// A malicious 4 GiB length prefix must yield a clean error from the
    /// pre-allocation check — never an OOM-sized buffer or a panic.
    #[test]
    fn four_gib_length_prefix_rejected_before_allocation() {
        let err = validate_frame_len(u32::MAX).unwrap_err();
        assert_eq!(err.claimed, u64::from(u32::MAX));
        assert!(err.to_string().contains("exceeds"));
        // The boundary is exact: the largest decodable body passes, one
        // byte more is refused.
        assert_eq!(
            validate_frame_len(MAX_WIRE_FRAME_LEN as u32),
            Ok(MAX_WIRE_FRAME_LEN)
        );
        assert!(validate_frame_len(MAX_WIRE_FRAME_LEN as u32 + 1).is_err());
    }

    /// Every well-formed frame the writer can produce passes the length
    /// validation the reader applies.
    #[test]
    fn valid_frames_pass_length_validation() {
        for f in [
            Frame::Hello { from: 7 },
            Frame::Msg {
                round: 12,
                payload: vec![0xAB; 4096],
            },
            Frame::Eor { round: 3 },
            Frame::Bye,
        ] {
            let body_len = f.encoded_len() as u32;
            assert_eq!(validate_frame_len(body_len), Ok(body_len as usize));
        }
    }

    #[test]
    fn msg_overhead_excludes_payload() {
        let f = Frame::Msg {
            round: 1,
            payload: vec![7; 100],
        };
        assert_eq!(f.payload_len(), 100);
        // 4-byte prefix + 1-byte tag + 1-byte round varint + 1-byte len
        // varint = 7 bytes of framing.
        assert_eq!(f.overhead(), 7);
    }
}
