//! Wire frames for the TCP transport.

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

/// A length-prefixed frame exchanged between two parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: announces the sender's party index.
    Hello {
        /// Sender's party index.
        from: u32,
    },
    /// A protocol message belonging to a specific round.
    Msg {
        /// Round the message was sent in.
        round: u64,
        /// Opaque protocol payload.
        payload: Vec<u8>,
    },
    /// End-of-round marker: the sender has flushed everything for `round`.
    Eor {
        /// The completed round.
        round: u64,
    },
    /// The sender's protocol terminated; treat as end-of-round for all
    /// future rounds.
    Bye,
}

impl Encode for Frame {
    fn encode(&self, w: &mut Writer) {
        match self {
            Frame::Hello { from } => {
                w.put_u8(0);
                from.encode(w);
            }
            Frame::Msg { round, payload } => {
                w.put_u8(1);
                round.encode(w);
                payload.encode(w);
            }
            Frame::Eor { round } => {
                w.put_u8(2);
                round.encode(w);
            }
            Frame::Bye => w.put_u8(3),
        }
    }
}

impl Decode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Frame::Hello {
                from: u32::decode(r)?,
            }),
            1 => Ok(Frame::Msg {
                round: u64::decode(r)?,
                payload: Vec::decode(r)?,
            }),
            2 => Ok(Frame::Eor {
                round: u64::decode(r)?,
            }),
            3 => Ok(Frame::Bye),
            other => Err(CodecError::InvalidDiscriminant {
                type_name: "Frame",
                value: u64::from(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for f in [
            Frame::Hello { from: 3 },
            Frame::Msg {
                round: 17,
                payload: vec![1, 2, 3],
            },
            Frame::Eor { round: 9 },
            Frame::Bye,
        ] {
            let bytes = f.encode_to_vec();
            assert_eq!(Frame::decode_from_slice(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn junk_rejected() {
        assert!(Frame::decode_from_slice(&[9]).is_err());
        assert!(Frame::decode_from_slice(&[]).is_err());
    }
}
