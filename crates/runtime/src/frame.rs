//! Wire frames for the TCP transport.
//!
//! # Overhead accounting
//!
//! This module is the single place where transport framing overhead is
//! defined. `ca_net::Metrics::honest_bits` — the paper's `BITSℓ(Π)` —
//! counts **payload bits only** (the encoded protocol message handed to
//! `Comm::send_bytes`); it never includes the envelope this module adds.
//! The real wire cost of any frame is computable via
//! [`Frame::wire_len`], and the per-message delta between wire and
//! payload via [`Frame::overhead`]: the frame discriminant, the round
//! tag, the payload length varint, and the transport's
//! [`LENGTH_PREFIX_LEN`]-byte length prefix. Keeping the two notions
//! separate means experiment numbers track the paper's model while the
//! deployment cost stays auditable from one definition.

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

/// Bytes of big-endian length prefix the TCP transport puts before every
/// encoded frame.
pub const LENGTH_PREFIX_LEN: usize = 4;

/// Hard ceiling on one frame *body* read off the wire: the codec's decode
/// capacity plus the largest possible framing (tag byte + two maximal
/// varints). A length prefix above this could never decode into a valid
/// [`Frame`] anyway, so the transport rejects it before allocating a
/// receive buffer.
pub const MAX_WIRE_FRAME_LEN: usize = ca_codec::MAX_DECODE_CAPACITY + 21;

/// Ceiling on a handshake (`Hello`) frame *body*, enforced by the accept
/// side before any allocation. A well-formed hello is a tag byte plus a
/// `u32` varint (at most 6 bytes); anything claiming more is a stray or
/// hostile connection and is dropped without consuming an accept slot.
pub const MAX_HELLO_FRAME_LEN: usize = 16;

/// A peer announced a frame body longer than [`MAX_WIRE_FRAME_LEN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The announced body length in bytes.
    pub claimed: u64,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame length {} exceeds the {MAX_WIRE_FRAME_LEN}-byte wire limit",
            self.claimed
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Validates an incoming length prefix **before any allocation**.
///
/// Readers must call this on the raw prefix and only then size their
/// receive buffer, so a malicious 4 GiB length claim costs nothing.
///
/// # Errors
///
/// [`FrameTooLarge`] when the claimed length exceeds
/// [`MAX_WIRE_FRAME_LEN`].
pub fn validate_frame_len(len: u32) -> Result<usize, FrameTooLarge> {
    let len = len as usize;
    if len > MAX_WIRE_FRAME_LEN {
        return Err(FrameTooLarge {
            claimed: len as u64,
        });
    }
    Ok(len)
}

/// [`validate_frame_len`] for the handshake path: same contract, but
/// against the far tighter [`MAX_HELLO_FRAME_LEN`] bound, since an
/// unauthenticated stray connection gets no allocation budget at all.
///
/// # Errors
///
/// [`FrameTooLarge`] when the claimed length exceeds
/// [`MAX_HELLO_FRAME_LEN`].
pub fn validate_hello_len(len: u32) -> Result<usize, FrameTooLarge> {
    let len = len as usize;
    if len > MAX_HELLO_FRAME_LEN {
        return Err(FrameTooLarge {
            claimed: len as u64,
        });
    }
    Ok(len)
}

/// A length-prefixed frame exchanged between two parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: announces the sender's party index.
    Hello {
        /// Sender's party index.
        from: u32,
    },
    /// A protocol message belonging to a specific round.
    Msg {
        /// Round the message was sent in.
        round: u64,
        /// Opaque protocol payload.
        payload: Vec<u8>,
    },
    /// End-of-round marker: the sender has flushed everything for `round`.
    Eor {
        /// The completed round.
        round: u64,
    },
    /// The sender's protocol terminated; treat as end-of-round for all
    /// future rounds.
    Bye,
}

impl Frame {
    /// Protocol payload bytes carried by this frame — the quantity
    /// metered as `honest_bits`. Zero for control frames.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        match self {
            Frame::Msg { payload, .. } => payload.len(),
            Frame::Hello { .. } | Frame::Eor { .. } | Frame::Bye => 0,
        }
    }

    /// Total bytes this frame occupies on the wire: the length prefix
    /// plus the encoded frame body.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        LENGTH_PREFIX_LEN + self.encoded_len()
    }

    /// Framing bytes beyond the protocol payload:
    /// `wire_len() − payload_len()`. For control frames this is the whole
    /// frame.
    #[must_use]
    pub fn overhead(&self) -> usize {
        self.wire_len() - self.payload_len()
    }
}

impl Encode for Frame {
    fn encode(&self, w: &mut Writer) {
        match self {
            Frame::Hello { from } => {
                w.put_u8(0);
                from.encode(w);
            }
            Frame::Msg { round, payload } => {
                w.put_u8(1);
                round.encode(w);
                payload.encode(w);
            }
            Frame::Eor { round } => {
                w.put_u8(2);
                round.encode(w);
            }
            Frame::Bye => w.put_u8(3),
        }
    }
}

impl Decode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Frame::Hello {
                from: u32::decode(r)?,
            }),
            1 => Ok(Frame::Msg {
                round: u64::decode(r)?,
                payload: Vec::decode(r)?,
            }),
            2 => Ok(Frame::Eor {
                round: u64::decode(r)?,
            }),
            3 => Ok(Frame::Bye),
            other => Err(CodecError::InvalidDiscriminant {
                type_name: "Frame",
                value: u64::from(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for f in [
            Frame::Hello { from: 3 },
            Frame::Msg {
                round: 17,
                payload: vec![1, 2, 3],
            },
            Frame::Eor { round: 9 },
            Frame::Bye,
        ] {
            let bytes = f.encode_to_vec();
            assert_eq!(Frame::decode_from_slice(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn junk_rejected() {
        assert!(Frame::decode_from_slice(&[9]).is_err());
        assert!(Frame::decode_from_slice(&[]).is_err());
    }

    #[test]
    fn wire_len_matches_what_the_transport_writes() {
        for f in [
            Frame::Hello { from: 3 },
            Frame::Msg {
                round: 300,
                payload: vec![0; 200],
            },
            Frame::Eor { round: 9 },
            Frame::Bye,
        ] {
            let body = f.encode_to_vec();
            assert_eq!(f.wire_len(), LENGTH_PREFIX_LEN + body.len());
            assert_eq!(f.overhead(), f.wire_len() - f.payload_len());
        }
    }

    /// A malicious 4 GiB length prefix must yield a clean error from the
    /// pre-allocation check — never an OOM-sized buffer or a panic.
    #[test]
    fn four_gib_length_prefix_rejected_before_allocation() {
        let err = validate_frame_len(u32::MAX).unwrap_err();
        assert_eq!(err.claimed, u64::from(u32::MAX));
        assert!(err.to_string().contains("exceeds"));
        // The boundary is exact: the largest decodable body passes, one
        // byte more is refused.
        assert_eq!(
            validate_frame_len(MAX_WIRE_FRAME_LEN as u32),
            Ok(MAX_WIRE_FRAME_LEN)
        );
        assert!(validate_frame_len(MAX_WIRE_FRAME_LEN as u32 + 1).is_err());
    }

    /// Every well-formed frame the writer can produce passes the length
    /// validation the reader applies.
    #[test]
    fn valid_frames_pass_length_validation() {
        for f in [
            Frame::Hello { from: 7 },
            Frame::Msg {
                round: 12,
                payload: vec![0xAB; 4096],
            },
            Frame::Eor { round: 3 },
            Frame::Bye,
        ] {
            let body_len = f.encoded_len() as u32;
            assert_eq!(validate_frame_len(body_len), Ok(body_len as usize));
        }
    }

    #[test]
    fn msg_overhead_excludes_payload() {
        let f = Frame::Msg {
            round: 1,
            payload: vec![7; 100],
        };
        assert_eq!(f.payload_len(), 100);
        // 4-byte prefix + 1-byte tag + 1-byte round varint + 1-byte len
        // varint = 7 bytes of framing.
        assert_eq!(f.overhead(), 7);
    }
}
