//! ca-lint: allow(nondeterminism) — this module is the one sanctioned
//! clock-injection boundary: `MonotonicClock` wraps `Instant` here so no
//! other runtime code has to touch the wall clock directly.
//!
//! Injectable time source for the TCP transport.
//!
//! The round loop in [`TcpParty`](crate::TcpParty) needs a notion of "Δ has
//! elapsed". Reading `Instant::now()` inline makes runs unreproducible and
//! untestable, so the deadline logic is written against this trait instead:
//! production uses [`MonotonicClock`], tests use [`ManualClock`] and advance
//! time explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source, reporting elapsed time since an arbitrary
/// (per-clock) epoch.
pub trait Clock: Send {
    /// Time elapsed since this clock's epoch. Must be monotonic.
    fn now(&self) -> Duration;
}

/// Real time: elapsed [`Instant`] since clock construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A test clock that only moves when told to.
///
/// Clones share the same underlying time, so a test can hold one handle
/// while the transport holds another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_when_told() {
        let clock = ManualClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now(), Duration::ZERO);
        handle.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        handle.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(500));
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let clock = MonotonicClock::default();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
