//! Scripted transport faults for crash-tolerance testing.
//!
//! A [`FaultPlan`] is a deterministic, per-party schedule of transport
//! misbehavior, keyed by round number. It is applied inside
//! [`TcpParty::next_round`](crate::TcpParty) — protocol code above the
//! `Comm` seam never sees it, which is exactly the point: the honest
//! parties must keep deciding while the transport underneath a faulty
//! party crashes, stalls, or emits garbage.
//!
//! Because the schedule is data (no randomness, no wall clock), a run
//! with a given plan is reproducible: pair it with a
//! [`ManualClock`](crate::ManualClock) and the honest parties' traces
//! are byte-stable across runs (modulo `peer_gone` observation records;
//! see [`ca_trace::Event::PeerGone`]).

use std::collections::BTreeSet;

/// A deterministic schedule of transport faults for one party.
///
/// Build one with the chainable constructors, then install it with
/// [`TcpParty::set_fault_plan`](crate::TcpParty::set_fault_plan) or
/// [`TcpCluster::with_fault_plan`](crate::TcpCluster::with_fault_plan).
///
/// # Examples
///
/// ```
/// use ca_runtime::FaultPlan;
///
/// // Crash at round 3 after sending garbage in round 2.
/// let plan = FaultPlan::new().garbage_in(2).crash_at(3);
/// assert!(plan.is_crash_round(3));
/// assert!(plan.is_crash_round(7)); // crashes are permanent
/// assert!(!plan.is_crash_round(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// First round in which the party is crashed (silent forever after).
    crash_at: Option<u64>,
    /// Rounds in which the party sends nothing (no messages, no
    /// end-of-round marker) but keeps listening.
    stall: BTreeSet<u64>,
    /// Rounds in which the party sends an undecodable frame to every
    /// peer before its real traffic.
    garbage: BTreeSet<u64>,
    /// Rounds in which the party does not drain its inbound events
    /// (messages for the round are later discarded as stale).
    slow_reader: BTreeSet<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash at the start of `round`: the party stops sending *and*
    /// listening, never says `Bye`, and its sockets close only after the
    /// already-queued frames drain — peers observe an abrupt EOF, exactly
    /// like a process kill.
    #[must_use]
    pub fn crash_at(mut self, round: u64) -> Self {
        self.crash_at = Some(round);
        self
    }

    /// Stay silent during `round`: buffered sends are discarded (they
    /// missed their synchronous window) and no end-of-round marker goes
    /// out, so peers wait the full `Δ` on this party.
    #[must_use]
    pub fn stall_in(mut self, round: u64) -> Self {
        self.stall.insert(round);
        self
    }

    /// Send one undecodable frame to every peer at the start of `round`.
    /// Honest receivers drop the connection on decode failure, so this
    /// models a byzantine transport getting itself disconnected.
    #[must_use]
    pub fn garbage_in(mut self, round: u64) -> Self {
        self.garbage.insert(round);
        self
    }

    /// Skip draining inbound events during `round`, as a reader that
    /// cannot keep up would. The round's messages are consumed late and
    /// discarded as stale.
    #[must_use]
    pub fn slow_reader_in(mut self, round: u64) -> Self {
        self.slow_reader.insert(round);
        self
    }

    /// Whether the party is crashed as of `round` (crashes persist).
    #[must_use]
    pub fn is_crash_round(&self, round: u64) -> bool {
        self.crash_at.is_some_and(|at| round >= at)
    }

    /// Whether the party stalls in exactly `round`.
    #[must_use]
    pub fn stalls_in(&self, round: u64) -> bool {
        self.stall.contains(&round)
    }

    /// Whether the party emits garbage in exactly `round`.
    #[must_use]
    pub fn emits_garbage_in(&self, round: u64) -> bool {
        self.garbage.contains(&round)
    }

    /// Whether the party skips its event drain in exactly `round`.
    #[must_use]
    pub fn skips_drain_in(&self, round: u64) -> bool {
        self.slow_reader.contains(&round)
    }

    /// Whether the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crash_at.is_none()
            && self.stall.is_empty()
            && self.garbage.is_empty()
            && self.slow_reader.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_schedules_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        for r in 0..10 {
            assert!(!plan.is_crash_round(r));
            assert!(!plan.stalls_in(r));
            assert!(!plan.emits_garbage_in(r));
            assert!(!plan.skips_drain_in(r));
        }
    }

    #[test]
    fn crash_is_permanent_from_its_round() {
        let plan = FaultPlan::new().crash_at(4);
        assert!(!plan.is_crash_round(3));
        assert!(plan.is_crash_round(4));
        assert!(plan.is_crash_round(100));
        assert!(!plan.is_empty());
    }

    #[test]
    fn round_scoped_faults_hit_only_their_round() {
        let plan = FaultPlan::new().stall_in(2).garbage_in(3).slow_reader_in(5);
        assert!(plan.stalls_in(2) && !plan.stalls_in(3));
        assert!(plan.emits_garbage_in(3) && !plan.emits_garbage_in(2));
        assert!(plan.skips_drain_in(5) && !plan.skips_drain_in(4));
    }
}
