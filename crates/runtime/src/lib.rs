//! Tokio TCP deployment runtime.
//!
//! The simulator in `ca-net` realizes the synchronous model as an explicit
//! lock-step executor; this crate realizes it the way the paper states it
//! (§2): real point-to-point channels where "all messages get delivered
//! within `Δ` time, and `Δ` is publicly known". Rounds are synchronized
//! with end-of-round markers plus a `Δ` timeout, so crashed peers delay a
//! round by at most `Δ` and can never stall the protocol.
//!
//! Protocol code is *identical* to what the simulator runs — anything
//! written against [`ca_net::Comm`] works here unchanged; each party's
//! protocol runs on a dedicated blocking thread while a tokio runtime
//! drives the sockets.
//!
//! The runtime also has an **event-driven mode** for asynchronous
//! protocols ([`ca_async::AsyncProtocol`]): [`run_async_party`] and
//! [`TcpCluster::run_async`] advance a protocol instance per delivered
//! message, with no round barriers and no Δ anywhere — the TCP
//! deployment of the same state machines the deterministic
//! [`ca_async::Executor`] schedules in tests.
//!
//! Scope: this runtime demonstrates deployment and is used by the
//! `tcp_cluster` example and the simulator-equivalence tests. It does not
//! meter communication (use the simulator for experiments) and it trusts
//! the transport for authentication, as the paper's model does.
//!
//! # Examples
//!
//! ```no_run
//! use ca_net::CommExt;
//! use ca_runtime::TcpCluster;
//! use std::time::Duration;
//!
//! let outputs = TcpCluster::new(4)
//!     .with_delta(Duration::from_millis(200))
//!     .run(|ctx, id| {
//!         let inbox = ctx.exchange(&(id.index() as u64));
//!         inbox.decode_each::<u64>().len()
//!     })
//!     .unwrap();
//! assert_eq!(outputs, vec![4, 4, 4, 4]);
//! ```

mod async_driver;
mod clock;
mod cluster;
mod fault;
mod frame;
mod party;
mod stats;

pub use async_driver::{run_async_party, AsyncTcpOpts};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use cluster::{ClusterReport, TcpCluster};
pub use fault::FaultPlan;
pub use frame::{
    validate_frame_len, validate_hello_len, Frame, FrameTooLarge, LENGTH_PREFIX_LEN,
    MAX_HELLO_FRAME_LEN, MAX_WIRE_FRAME_LEN,
};
pub use party::{EstablishOpts, RuntimeError, TcpParty};
pub use stats::RuntimeStats;
