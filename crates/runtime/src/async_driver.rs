//! Event-driven TCP driver: runs an [`AsyncProtocol`] over a
//! [`TcpParty`] with no round barriers and no Δ.
//!
//! The synchronous surface of [`TcpParty`] batches sends until
//! `next_round` and then waits on end-of-round markers under a Δ
//! timeout. The async driver inverts that: every [`Action::Send`] ships
//! immediately, and the protocol advances on each delivered message —
//! progress is quorum-driven, exactly as in the deterministic
//! [`ca_async::Executor`], but over real sockets. A protocol written
//! against [`AsyncProtocol`] therefore runs unchanged on both hosts.
//!
//! # Fault plans
//!
//! A [`FaultPlan`](crate::FaultPlan) installed on the party applies to
//! this path too, reinterpreted for a world without rounds: the plan's
//! round numbers are matched against the count of protocol messages this
//! party has delivered. "Crash at round 20" means "crash when the 20th
//! message arrives"; a stall discards the actions one delivery produces;
//! garbage ships an undecodable frame to every peer at that point.
//! Crashes and garbage behave exactly as on the sync path (abrupt EOF
//! after queued frames drain, decode-failure disconnect).
//!
//! # Termination
//!
//! Quorum-driven protocols never time out, but a deployment still needs
//! an exit: the driver returns once the protocol decides *and* the link
//! has been quiet for [`AsyncTcpOpts::linger`] (so late peers still get
//! this party's echo/ready responses — reliable-broadcast totality needs
//! deciders to keep participating), or unconditionally after
//! [`AsyncTcpOpts::deadline`] (a liveness backstop for runs with more
//! than `t` failures).

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Display;
use std::time::Duration;

use bytes::Bytes;
use ca_async::{Action, AsyncProtocol};
use ca_net::{Comm as _, PartyId};
use ca_trace::Event as TraceEvent;

use crate::party::Polled;
use crate::TcpParty;

/// Tuning for one [`run_async_party`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncTcpOpts {
    /// Hard wall-clock cap on the whole run (measured on the party's
    /// injected clock). The driver returns whatever the protocol has
    /// decided when it expires.
    pub deadline: Duration,
    /// How long each event poll blocks. Smaller is more responsive,
    /// larger burns fewer wakeups; correctness does not depend on it.
    pub poll: Duration,
    /// After deciding, keep serving peers until the link has been quiet
    /// this long. Must comfortably exceed one network round trip.
    pub linger: Duration,
    /// Trace scope the run's records live under.
    pub scope: String,
    /// Milliseconds one [`Action::SetTimer`] unit stretches to.
    pub ms_per_timer_unit: u64,
}

impl Default for AsyncTcpOpts {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(30),
            poll: Duration::from_millis(5),
            linger: Duration::from_millis(300),
            scope: "async".to_owned(),
            ms_per_timer_unit: 1,
        }
    }
}

/// Runs `proto` on `party` event-driven until it decides (plus the
/// linger window) or the deadline expires. Returns the decision, or
/// `None` if the protocol never decided — or crashed under its fault
/// plan, which wipes the decision exactly as the deterministic executor
/// does.
pub fn run_async_party<P: AsyncProtocol>(
    party: &mut TcpParty,
    mut proto: P,
    opts: &AsyncTcpOpts,
) -> Option<P::Output>
where
    P::Output: Display,
{
    let me = party.me();
    let start = party.clock_now();
    let plan = party.fault_plan();
    party.push_scope(&opts.scope);
    if let Some(repr) = proto.input_repr() {
        party.trace(TraceEvent::Input { value: repr });
    }

    // Self-deliveries stay local (Broadcast includes `me`); timers are
    // keyed by absolute fire time with a tiebreak sequence.
    let mut self_queue: VecDeque<Bytes> = VecDeque::new();
    let mut timers: BTreeMap<(Duration, u64), u64> = BTreeMap::new();
    let mut timer_seq: u64 = 0;
    let mut delivered: u64 = 0;
    let mut decided = false;
    let mut last_activity = start;

    let actions = proto.on_start();
    apply(
        party,
        &mut self_queue,
        &mut timers,
        &mut timer_seq,
        opts,
        actions,
    );

    loop {
        let now = party.clock_now();
        if party.is_crashed() || now.saturating_sub(start) >= opts.deadline {
            break;
        }

        // Local work first: self-deliveries, then due timers.
        if let Some(payload) = self_queue.pop_front() {
            party.trace(TraceEvent::Deliver {
                from: me.index() as u64,
                bytes: payload.len() as u64,
            });
            let actions = proto.on_message(me, &payload);
            apply(
                party,
                &mut self_queue,
                &mut timers,
                &mut timer_seq,
                opts,
                actions,
            );
        } else if timers
            .first_key_value()
            .is_some_and(|((at, _), _)| *at <= now)
        {
            let ((_, _), id) = timers.pop_first().expect("checked non-empty");
            let actions = proto.on_timer(id);
            apply(
                party,
                &mut self_queue,
                &mut timers,
                &mut timer_seq,
                opts,
                actions,
            );
        } else {
            match party.poll_event(opts.poll) {
                Polled::Msg { from, payload } => {
                    delivered += 1;
                    // The fault plan's "rounds" are delivered-message
                    // counts here (async has no rounds to key on).
                    if plan.is_crash_round(delivered) {
                        party.trace(TraceEvent::FaultInjected {
                            strategy: "crash:async".to_owned(),
                        });
                        party.crash_now();
                        break;
                    }
                    if plan.emits_garbage_in(delivered) {
                        party.trace(TraceEvent::FaultInjected {
                            strategy: "garbage".to_owned(),
                        });
                        party.send_garbage_now();
                    }
                    party.trace(TraceEvent::Deliver {
                        from: from as u64,
                        bytes: payload.len() as u64,
                    });
                    last_activity = party.clock_now();
                    let actions = proto.on_message(PartyId(from), &payload);
                    if plan.stalls_in(delivered) {
                        party.trace(TraceEvent::FaultInjected {
                            strategy: "stall".to_owned(),
                        });
                        // The delivery happened; its responses are lost.
                    } else {
                        apply(
                            party,
                            &mut self_queue,
                            &mut timers,
                            &mut timer_seq,
                            opts,
                            actions,
                        );
                    }
                }
                Polled::Housekeeping => {}
                Polled::Quiet => {
                    if decided && party.clock_now().saturating_sub(last_activity) >= opts.linger {
                        break;
                    }
                }
                Polled::Closed => break,
            }
        }

        if !decided {
            if let Some(out) = proto.output() {
                decided = true;
                party.trace(TraceEvent::Decide {
                    value: out.to_string(),
                });
            }
        }
    }

    party.pop_scope();
    if party.is_crashed() {
        // A crash wipes the decision, mirroring `ca_async::Executor`.
        return None;
    }
    proto.output()
}

/// Executes one batch of protocol actions against the transport.
fn apply(
    party: &mut TcpParty,
    self_queue: &mut VecDeque<Bytes>,
    timers: &mut BTreeMap<(Duration, u64), u64>,
    timer_seq: &mut u64,
    opts: &AsyncTcpOpts,
    actions: Vec<Action>,
) {
    let me = party.me().index();
    for action in actions {
        match action {
            Action::Send { to, payload } => {
                if to.index() == me {
                    self_queue.push_back(payload);
                } else {
                    party.send_now(to.index(), payload);
                }
            }
            Action::Broadcast { payload } => {
                for to in 0..party.n() {
                    if to == me {
                        self_queue.push_back(payload.clone());
                    } else {
                        party.send_now(to, payload.clone());
                    }
                }
            }
            Action::SetTimer { id, after } => {
                let at = party
                    .clock_now()
                    .saturating_add(Duration::from_millis(after * opts.ms_per_timer_unit));
                timers.insert((at, *timer_seq), id);
                *timer_seq += 1;
            }
            Action::Note { label, value } => {
                party.trace(TraceEvent::Note { label, value });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_are_sane() {
        let opts = AsyncTcpOpts::default();
        assert!(opts.deadline > opts.linger);
        assert!(opts.linger > opts.poll);
        assert_eq!(opts.scope, "async");
        assert_eq!(opts.ms_per_timer_unit, 1);
    }
}
