//! One TCP party: socket plumbing plus the `Comm` implementation.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::sync::mpsc as std_mpsc;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use ca_codec::{Decode, Encode};
use ca_net::{Comm, Inbox, PartyId};
use ca_trace::{Event as TraceEvent, Histogram, NullSink, Record, TraceSink, ROOT_SCOPE};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc as tokio_mpsc;

use crate::clock::{Clock, MonotonicClock};
use crate::Frame;

/// Errors from establishing or running a TCP party.
#[derive(Debug)]
pub enum RuntimeError {
    /// Socket-level failure during setup.
    Io(std::io::Error),
    /// A peer handshake was malformed.
    BadHandshake,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "io error: {e}"),
            RuntimeError::BadHandshake => write!(f, "malformed peer handshake"),
        }
    }
}

impl Error for RuntimeError {}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

/// Events flowing from the socket tasks to the protocol thread.
#[derive(Debug)]
enum Event {
    Msg {
        from: usize,
        round: u64,
        payload: Bytes,
    },
    Eor {
        from: usize,
        round: u64,
    },
    /// Peer said goodbye or its stream closed.
    Gone {
        from: usize,
    },
}

/// A fully connected TCP party implementing [`Comm`].
///
/// Create one per process with [`TcpParty::establish`], then hand it to
/// protocol code. Round semantics: `next_round` flushes sends tagged with
/// the current round plus an end-of-round marker, then waits until every
/// live peer's marker arrives or `Δ` elapses.
pub struct TcpParty {
    n: usize,
    t: usize,
    me: PartyId,
    delta: Duration,
    round: u64,
    pending: Vec<(PartyId, Bytes)>,
    scopes: Vec<String>,
    /// Sends frames to the per-peer writer tasks.
    writers: Vec<Option<tokio_mpsc::UnboundedSender<Frame>>>,
    /// Inbound events from all reader tasks.
    events: std_mpsc::Receiver<Event>,
    /// Messages received for rounds we have not reached yet.
    future_msgs: BTreeMap<u64, Vec<(usize, Bytes)>>,
    /// Time source for the Δ deadline; injectable for tests.
    clock: Box<dyn Clock>,
    /// Highest EOR round seen per peer.
    eor: Vec<u64>,
    /// Peers whose stream ended.
    gone: Vec<bool>,
    /// Trace destination ([`NullSink`] unless [`TcpParty::set_trace`]).
    sink: Arc<dyn TraceSink>,
    /// Observed `next_round` barrier latency in microseconds (measured
    /// with the injected [`Clock`], so deterministic under a manual
    /// clock).
    round_latency_us: Histogram,
    /// Keeps the tokio runtime driving the sockets alive.
    _runtime: tokio::runtime::Runtime,
}

impl TcpParty {
    /// Binds `addrs[me]`, connects to all peers, and returns a ready
    /// transport. Every party must call this with the same address list;
    /// the function blocks until the clique is established.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] if sockets cannot be bound/connected or a peer
    /// handshake is malformed.
    pub fn establish(
        me: PartyId,
        addrs: &[SocketAddr],
        delta: Duration,
    ) -> Result<Self, RuntimeError> {
        Self::establish_with_clock(me, addrs, delta, Box::new(MonotonicClock::default()))
    }

    /// [`TcpParty::establish`] with an explicit time source, so tests can
    /// drive the Δ deadline with a [`ManualClock`](crate::ManualClock).
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] if sockets cannot be bound/connected or a peer
    /// handshake is malformed.
    pub fn establish_with_clock(
        me: PartyId,
        addrs: &[SocketAddr],
        delta: Duration,
        clock: Box<dyn Clock>,
    ) -> Result<Self, RuntimeError> {
        let n = addrs.len();
        let t = ca_net::max_faults(n);
        let runtime = tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()?;
        let (event_tx, event_rx) = std_mpsc::channel::<Event>();

        let streams = runtime.block_on(establish_clique(me, addrs))?;

        let mut writers: Vec<Option<tokio_mpsc::UnboundedSender<Frame>>> =
            (0..n).map(|_| None).collect();
        for (peer, stream) in streams {
            let (mut read_half, mut write_half) = stream.into_split();
            let (tx, mut rx) = tokio_mpsc::unbounded_channel::<Frame>();
            writers[peer] = Some(tx);

            // Writer task: frame + length-prefix every outgoing message.
            runtime.spawn(async move {
                while let Some(frame) = rx.recv().await {
                    let body = frame.encode_to_vec();
                    let mut buf = (body.len() as u32).to_be_bytes().to_vec();
                    buf.extend_from_slice(&body);
                    if write_half.write_all(&buf).await.is_err() {
                        break;
                    }
                }
                let _ = write_half.shutdown().await;
            });

            // Reader task: decode frames, forward as events.
            let event_tx = event_tx.clone();
            runtime.spawn(async move {
                loop {
                    let mut len_buf = [0u8; 4];
                    if read_half.read_exact(&mut len_buf).await.is_err() {
                        break;
                    }
                    // Validate the claimed length BEFORE sizing the buffer:
                    // a byzantine peer announcing a 4 GiB frame is dropped
                    // without allocating anything.
                    let Ok(len) = crate::frame::validate_frame_len(u32::from_be_bytes(len_buf))
                    else {
                        break;
                    };
                    let mut body = vec![0u8; len];
                    if read_half.read_exact(&mut body).await.is_err() {
                        break;
                    }
                    let event = match Frame::decode_from_slice(&body) {
                        Ok(Frame::Msg { round, payload }) => Event::Msg {
                            from: peer,
                            round,
                            payload: Bytes::from(payload),
                        },
                        Ok(Frame::Eor { round }) => Event::Eor { from: peer, round },
                        Ok(Frame::Bye) | Err(_) => break,
                        Ok(Frame::Hello { .. }) => continue,
                    };
                    if event_tx.send(event).is_err() {
                        break;
                    }
                }
                let _ = event_tx.send(Event::Gone { from: peer });
            });
        }

        Ok(Self {
            n,
            t,
            me,
            delta,
            round: 0,
            pending: Vec::new(),
            scopes: Vec::new(),
            writers,
            events: event_rx,
            future_msgs: BTreeMap::new(),
            clock,
            eor: vec![0; n],
            gone: {
                let mut g = vec![false; n];
                g[me.index()] = true; // never wait on ourselves
                g
            },
            sink: Arc::new(NullSink),
            round_latency_us: Histogram::new(),
            _runtime: runtime,
        })
    }

    /// Attaches a trace sink. Unlike the simulator (which interleaves all
    /// parties into one stream), a TCP party records only its own
    /// timeline; pair one [`ca_trace::JsonlSink`] per party (see
    /// `TcpCluster::with_trace_dir`).
    pub fn set_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Barrier latency observed by this party's `next_round` calls, in
    /// microseconds.
    pub fn round_latency_us(&self) -> &Histogram {
        &self.round_latency_us
    }

    fn peer_done(&self, peer: usize, round: u64) -> bool {
        self.gone[peer] || self.eor[peer] >= round
    }

    fn scope_path(&self) -> String {
        if self.scopes.is_empty() {
            ROOT_SCOPE.to_owned()
        } else {
            self.scopes.join("/")
        }
    }

    fn emit(&self, event: TraceEvent) {
        self.sink.record(&Record {
            party: Some(self.me.index() as u64),
            round: self.round,
            scope: self.scope_path(),
            event,
        });
    }
}

impl Comm for TcpParty {
    fn n(&self) -> usize {
        self.n
    }

    fn t(&self) -> usize {
        self.t
    }

    fn me(&self) -> PartyId {
        self.me
    }

    fn send_bytes(&mut self, to: PartyId, payload: Bytes) {
        assert!(to.index() < self.n, "send to nonexistent {to}");
        self.pending.push((to, payload));
    }

    fn next_round(&mut self) -> Inbox {
        self.round += 1;
        let round = self.round;
        let tracing = self.sink.enabled();
        if tracing {
            self.emit(TraceEvent::RoundStart);
        }
        let wait_start = self.clock.now();
        let mut inbox = Inbox::with_parties(self.n);

        // Flush sends (self-delivery is local).
        for (to, payload) in std::mem::take(&mut self.pending) {
            if tracing && to != self.me {
                self.emit(TraceEvent::Send {
                    to: to.index() as u64,
                    bytes: payload.len() as u64,
                });
            }
            if to == self.me {
                inbox.push(self.me, payload);
            } else if let Some(tx) = &self.writers[to.index()] {
                let _ = tx.send(Frame::Msg {
                    round,
                    payload: payload.to_vec(),
                });
            }
        }
        for tx in self.writers.iter().flatten() {
            let _ = tx.send(Frame::Eor { round });
        }

        // Adopt any messages that arrived early for this round.
        if let Some(early) = self.future_msgs.remove(&round) {
            for (from, payload) in early {
                inbox.push(PartyId(from), payload);
            }
        }

        // Wait for all live peers' markers, at most Δ.
        let deadline = self.clock.now().saturating_add(self.delta);
        while (0..self.n).any(|p| !self.peer_done(p, round)) {
            let now = self.clock.now();
            let Some(budget) = deadline.checked_sub(now).filter(|d| !d.is_zero()) else {
                break;
            };
            match self.events.recv_timeout(budget) {
                Ok(Event::Msg {
                    from,
                    round: msg_round,
                    payload,
                }) => {
                    if msg_round == round {
                        inbox.push(PartyId(from), payload);
                    } else if msg_round > round {
                        self.future_msgs
                            .entry(msg_round)
                            .or_default()
                            .push((from, payload));
                    }
                    // Late messages (msg_round < round) missed their Δ: drop.
                }
                Ok(Event::Eor { from, round: r }) => {
                    self.eor[from] = self.eor[from].max(r);
                }
                Ok(Event::Gone { from }) => {
                    self.gone[from] = true;
                }
                Err(std_mpsc::RecvTimeoutError::Timeout) => break,
                Err(std_mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let waited = self.clock.now().saturating_sub(wait_start);
        self.round_latency_us
            .record(u64::try_from(waited.as_micros()).unwrap_or(u64::MAX));
        if tracing {
            for from in 0..self.n {
                let sizes: Vec<u64> = inbox
                    .raw_from(PartyId(from))
                    .iter()
                    .map(|raw| raw.len() as u64)
                    .collect();
                for bytes in sizes {
                    self.emit(TraceEvent::Deliver {
                        from: from as u64,
                        bytes,
                    });
                }
            }
            self.emit(TraceEvent::RoundEnd);
        }
        inbox
    }

    fn push_scope(&mut self, name: &str) {
        self.scopes.push(name.to_owned());
        if self.sink.enabled() {
            self.emit(TraceEvent::ScopeEnter {
                name: name.to_owned(),
            });
        }
    }

    fn pop_scope(&mut self) {
        let popped = self.scopes.pop();
        if self.sink.enabled() {
            if let Some(name) = popped {
                self.emit(TraceEvent::ScopeExit { name });
            }
        }
    }

    fn trace_enabled(&self) -> bool {
        self.sink.enabled()
    }

    fn trace(&mut self, event: ca_trace::Event) {
        if self.sink.enabled() {
            self.emit(event);
        }
    }
}

impl Drop for TcpParty {
    fn drop(&mut self) {
        for tx in self.writers.iter().flatten() {
            let _ = tx.send(Frame::Bye);
        }
        self.sink.flush();
    }
}

/// Establishes one TCP stream per peer: lower-indexed parties accept,
/// higher-indexed parties dial (so each pair has exactly one stream).
async fn establish_clique(
    me: PartyId,
    addrs: &[SocketAddr],
) -> Result<Vec<(usize, TcpStream)>, RuntimeError> {
    let n = addrs.len();
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    // ca-lint: allow(unbounded-alloc) — capacity is the locally configured party count
    let mut streams: Vec<(usize, TcpStream)> = Vec::with_capacity(n.saturating_sub(1));

    // Dial everyone below us (with retry while they come up).
    for (peer, addr) in addrs.iter().enumerate().take(me.index()) {
        let stream = loop {
            match TcpStream::connect(*addr).await {
                Ok(s) => break s,
                Err(_) => tokio::time::sleep(Duration::from_millis(20)).await,
            }
        };
        stream.set_nodelay(true).ok();
        let mut stream = stream;
        let hello = Frame::Hello {
            from: me.index() as u32,
        }
        .encode_to_vec();
        let mut buf = (hello.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&hello);
        stream.write_all(&buf).await?;
        streams.push((peer, stream));
    }

    // Accept everyone above us.
    for _ in me.index() + 1..n {
        let (mut stream, _) = listener.accept().await?;
        stream.set_nodelay(true).ok();
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf).await?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > 1024 {
            return Err(RuntimeError::BadHandshake);
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).await?;
        match Frame::decode_from_slice(&body) {
            Ok(Frame::Hello { from }) if (from as usize) < n => {
                streams.push((from as usize, stream));
            }
            _ => return Err(RuntimeError::BadHandshake),
        }
    }

    Ok(streams)
}
